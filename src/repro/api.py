"""The stable public API of the reproduction: ``import repro.api``.

Everything a script, notebook, benchmark or external harness needs lives
behind this one module, so internal layout (``repro.experiments.*``,
``repro.service.*``) can keep moving without breaking callers:

* :func:`load_spec` — a :class:`ScenarioSpec` from a dict, JSON text, a
  file path or a preset name (or pass one through unchanged).
* :func:`run` — execute one scenario (sharded automatically when its spec
  asks for it), with optional live progress snapshots.
* :func:`run_document` — execute and return the canonical
  schema-versioned result document instead of the raw result object.
* :func:`sweep` — fan independent cells over worker processes under the
  ``REPRO_CORE_BUDGET`` arbiter (:class:`~repro.experiments.runner.
  SweepRunner` semantics: deterministic, spawn-safe, ordered results).
* :func:`serve` — boot the long-lived scenario service (`docs/service.md`).

plus the document helpers (:func:`result_document`, :func:`dump_document`,
:func:`check_document`, :func:`result_schema`, :data:`SCHEMA_VERSION`) that
define the machine-readable result contract shared by ``repro scenario
--json``, the run archive and the service.

Example::

    import repro.api as api

    spec = api.load_spec("coupled-core")
    result = api.run(spec, progress=print)
    print(api.dump_document(api.result_document(result)))
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Union

from repro.experiments.options import (RuntimeOptions, apply_runtime_options)
from repro.experiments.presets import make_preset, preset_names
from repro.experiments.results import (SCHEMA_VERSION, check_document,
                                       dump_document, result_document,
                                       result_schema)
from repro.experiments.runner import SweepRunner, core_budget
from repro.experiments.scenario import ScenarioResult, run_scenario
from repro.experiments.spec import ScenarioSpec

__all__ = [
    "SCHEMA_VERSION",
    "RuntimeOptions",
    "ScenarioResult",
    "ScenarioSpec",
    "apply_runtime_options",
    "check_document",
    "core_budget",
    "dump_document",
    "load_spec",
    "make_preset",
    "preset_names",
    "result_document",
    "result_schema",
    "run",
    "run_document",
    "serve",
    "sweep",
]

SpecLike = Union[ScenarioSpec, dict, str, "os.PathLike[str]"]


def load_spec(source: SpecLike) -> ScenarioSpec:
    """Resolve anything spec-shaped into a validated :class:`ScenarioSpec`.

    Accepts, in order of recognition: a ScenarioSpec (returned as-is
    after validation), a dict (``ScenarioSpec.from_dict``), a preset name
    (``repro.api.preset_names()`` lists them), a path to a JSON spec file,
    or JSON text itself.
    """
    if isinstance(source, ScenarioSpec):
        return source.validate()
    if isinstance(source, dict):
        return ScenarioSpec.from_dict(source).validate()
    if isinstance(source, os.PathLike):
        source = os.fspath(source)
    if not isinstance(source, str):
        raise TypeError("load_spec takes a ScenarioSpec, dict, preset name, "
                        f"path or JSON text; got {type(source).__name__}")
    if source in preset_names():
        return make_preset(source)
    if os.path.exists(source):
        with open(source, "r", encoding="utf-8") as handle:
            return ScenarioSpec.from_json(handle.read()).validate()
    stripped = source.lstrip()
    if stripped.startswith("{"):
        return ScenarioSpec.from_json(source).validate()
    raise ValueError(
        f"cannot resolve spec source {source!r}: not a preset "
        f"(available: {preset_names()}), not an existing file, and not "
        "JSON text")


def run(spec: SpecLike, *, options: Optional[RuntimeOptions] = None,
        progress: Optional[Callable[[dict], None]] = None,
        progress_interval_s: float = 0.25) -> ScenarioResult:
    """Run one scenario and return its :class:`ScenarioResult`.

    ``options`` applies the shared runtime overrides (engine, shards,
    workers, shard windows) through the same code path as the CLI flags
    and the service's request overrides.  ``progress`` receives live
    snapshot dicts (per-flow rates on the single event loop, per-window
    barrier progress for sharded runs).
    """
    resolved = apply_runtime_options(load_spec(spec), options)
    return run_scenario(resolved, progress=progress,
                        progress_interval_s=progress_interval_s)


def run_document(spec: SpecLike, *,
                 options: Optional[RuntimeOptions] = None) -> dict:
    """Run one scenario and return the canonical result document."""
    return result_document(run(spec, options=options))


def sweep(cell_fn: Callable, cells, *, workers: Optional[int] = 1,
          master_seed: Optional[int] = None,
          progress: Optional[Callable[[int, int], None]] = None) -> list:
    """Run independent sweep cells, optionally across worker processes.

    A thin facade over :class:`~repro.experiments.runner.SweepRunner`:
    ``cell_fn`` must be a module-level (picklable) callable, results come
    back in input order, and the worker count is clamped by the host's
    core budget.
    """
    return SweepRunner(workers=workers, master_seed=master_seed,
                       progress=progress).map(cell_fn, cells)


def serve(host: str = "127.0.0.1", port: int = 8757, *,
          runs_dir: Optional[str] = None,
          defaults: Optional[RuntimeOptions] = None, max_runs: int = 1,
          verbose: bool = False, announce=None) -> None:
    """Boot the scenario service and block until interrupted.

    Imported lazily so ``repro.api`` stays importable in environments that
    never serve (the service itself is stdlib-only either way).
    """
    from repro.service.server import serve as _serve

    _serve(host=host, port=port, runs_dir=runs_dir, defaults=defaults,
           max_runs=max_runs, verbose=verbose, announce=announce)
