"""Named component registries: the extension points of the simulator.

Every pluggable component family — congestion-control algorithms, in-RAN
markers, channel profiles, MAC schedulers, workload generators and scenario
presets — is published in a :class:`Registry`.  Components register
themselves at definition time with the :meth:`Registry.register` decorator::

    @CC_SENDERS.register("prague", is_l4s=True)
    class PragueSender(Sender):
        ...

and are looked up by name wherever experiment configs, CLI flags or JSON
scenario specs select them::

    sender_cls = CC_SENDERS.get("prague")
    CC_SENDERS.flag("prague", "is_l4s")     # -> True
    CC_SENDERS.names()                      # CLI ``choices=``

Capability flags (``is_l4s``, ``is_udp``, ...) live in the registry metadata
instead of parallel frozensets, so adding an algorithm is a single decorated
class definition — the factories, the CLI and the spec validator all pick it
up automatically.

Registries are deliberately import-light: this module depends on nothing
inside :mod:`repro`, and a registry only knows names, objects and metadata.
Modules that *define* components import the registry; modules that *consume*
components import the defining modules (usually via the façade factories in
``repro.cc.factory``, ``repro.core.factory`` and ``repro.channel.profiles``)
so registration has happened by lookup time.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, TypeVar

T = TypeVar("T")


class UnknownComponentError(KeyError, ValueError):
    """Lookup of a name no component registered under.

    Subclasses both :class:`KeyError` and :class:`ValueError` so call sites
    written against the historical factories (dict-backed ``KeyError`` for
    algorithms/markers, ``ValueError`` for channel profiles) keep working
    unchanged.
    """

    def __init__(self, kind: str, name: str, choices: list[str]) -> None:
        self.kind = kind
        self.name = name
        self.choices = choices
        super().__init__(
            f"unknown {kind} {name!r}; choose from {sorted(choices)}")

    def __str__(self) -> str:  # KeyError.__str__ repr()s the message
        return self.args[0]

    def __reduce__(self):
        # BaseException pickles via ``args``, which holds the formatted
        # message, not the constructor signature; rebuild from the parts so
        # the error survives the worker -> coordinator hop of a sweep.
        return (UnknownComponentError, (self.kind, self.name, self.choices))


class Registry:
    """A case-insensitive name -> component mapping with metadata.

    Args:
        kind: human-readable component family name ("congestion control",
            "marker", ...), used in error messages.

    Components are any Python object — classes, factory callables, plain
    functions.  Each primary name may carry aliases (which resolve to the
    same entry) and arbitrary keyword metadata.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Any] = {}
        self._metadata: dict[str, dict[str, Any]] = {}
        self._aliases: dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, *aliases: str,
                 **metadata: Any) -> Callable[[T], T]:
        """Decorator: register the decorated object under ``name``.

        Example::

            @MARKERS.register("none", "off", "baseline")
            def _build_noop(sim, **_):
                return NoopMarker()
        """
        def decorator(obj: T) -> T:
            self.add(name, obj, *aliases, **metadata)
            return obj
        return decorator

    def add(self, name: str, obj: Any, *aliases: str,
            **metadata: Any) -> None:
        """Imperatively register ``obj`` under ``name`` (plus aliases)."""
        key = self._canonical(name)
        if key in self._entries or key in self._aliases:
            raise ValueError(f"duplicate {self.kind} registration {name!r}")
        self._entries[key] = obj
        self._metadata[key] = dict(metadata)
        for alias in aliases:
            alias_key = self._canonical(alias)
            if alias_key in self._entries or alias_key in self._aliases:
                raise ValueError(
                    f"duplicate {self.kind} registration {alias!r}")
            self._aliases[alias_key] = key

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    @staticmethod
    def _canonical(name: str) -> str:
        return str(name).strip().lower()

    def resolve(self, name: str) -> str:
        """The primary name ``name`` maps to (aliases resolved).

        Raises :class:`UnknownComponentError` for unregistered names.
        """
        key = self._canonical(name)
        key = self._aliases.get(key, key)
        if key not in self._entries:
            raise UnknownComponentError(self.kind, name, self.names())
        return key

    def get(self, name: str) -> Any:
        """The component registered under ``name`` (or one of its aliases)."""
        return self._entries[self.resolve(name)]

    def metadata(self, name: str) -> dict[str, Any]:
        """A copy of the metadata attached at registration time."""
        return dict(self._metadata[self.resolve(name)])

    def flag(self, name: str, flag: str, default: Any = False) -> Any:
        """One metadata value, defaulting when the key was never set."""
        return self._metadata[self.resolve(name)].get(flag, default)

    def names(self, include_aliases: bool = False) -> list[str]:
        """Sorted registered names — ready for ``argparse`` ``choices=``."""
        names = set(self._entries)
        if include_aliases:
            names |= set(self._aliases)
        return sorted(names)

    def names_where(self, flag: str, value: Any = True) -> list[str]:
        """Primary names whose metadata ``flag`` equals ``value``."""
        return sorted(name for name, meta in self._metadata.items()
                      if meta.get(flag) == value)

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
        except UnknownComponentError:
            return False
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> list[tuple[str, Any]]:
        """(primary name, component) pairs, sorted by name."""
        return [(name, self._entries[name]) for name in sorted(self._entries)]

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {self.names()})"


# --------------------------------------------------------------------------- #
# The simulator's component families.
# --------------------------------------------------------------------------- #

#: Congestion-control sender classes.  Metadata: ``is_l4s`` (traffic is
#: classified into the L4S service and sets ECT(1)), ``is_udp`` (no TCP ACK
#: stream to short-circuit).  Registered in ``repro.cc.*`` at class
#: definition; the matching receiver is built by ``repro.cc.factory``.
CC_SENDERS = Registry("congestion control")

#: In-RAN marker builders ``(sim, *, l4span_config=None) -> RanMarker``.
#: Registered next to each marker implementation in ``repro.core.*`` /
#: ``repro.ran.marker``.
MARKERS = Registry("marker")

#: Channel-profile builders
#: ``(rng, *, mean_snr_db, carrier_ghz, ue_index) -> ChannelModel``.
#: Registered in ``repro.channel.profiles``.
CHANNEL_PROFILES = Registry("channel profile")

#: MAC scheduler policies (``repro.ran.mac.SchedulerPolicy`` members).
SCHEDULERS = Registry("scheduler")

#: Workload generators returning ``list[FlowSpec]``.  Registered in
#: ``repro.workloads.*``.
WORKLOADS = Registry("workload")

#: Named scenario presets ``() -> ScenarioSpec`` (``repro.experiments.presets``).
SCENARIO_PRESETS = Registry("scenario preset")
