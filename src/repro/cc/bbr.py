"""BBR (v1): model-based congestion control that probes bandwidth and RTT.

The model keeps windowed estimates of the bottleneck bandwidth (maximum
recent delivery rate) and the minimum RTT, paces at ``pacing_gain * btl_bw``
and caps the data in flight at ``cwnd_gain * BDP``.  BBR v1 ignores both ECN
marks and isolated losses, which is why the paper's appendix finds its median
behaviour largely unchanged under L4Span.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import WindowSender
from repro.net.ecn import ECN
from repro.registry import CC_SENDERS
from repro.units import ms


@CC_SENDERS.register("bbr")
class BbrSender(WindowSender):
    """Simplified BBR: bandwidth/RTT probing with an in-flight cap.

    The implementation reuses the ACK-clocked machinery of
    :class:`WindowSender`; pacing is approximated by capping the in-flight
    data at ``cwnd_gain * BDP`` where the BDP is recomputed from the model on
    every ACK, and by cycling ``pacing_gain`` through the standard
    ``[1.25, 0.75, 1, 1, 1, 1, 1, 1]`` schedule once per estimated RTT.
    """

    name = "bbr"
    ect_codepoint = ECN.ECT0
    uses_accecn = False

    PACING_GAIN_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    CWND_GAIN = 2.0
    STARTUP_GAIN = 2.885
    BW_WINDOW_ROUNDS = 10
    MIN_RTT_WINDOW_S = 10.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._delivered_bytes = 0
        self._delivery_samples: list[tuple[float, float]] = []
        self._bw_samples: list[float] = []
        self.btl_bw = 0.0
        self.min_rtt: Optional[float] = None
        self._min_rtt_stamp = 0.0
        self._cycle_index = 0
        self._cycle_stamp = 0.0
        self._in_startup = True
        self._full_bw = 0.0
        self._full_bw_rounds = 0

    # ------------------------------------------------------------------ #
    def _window_limit(self) -> float:
        if self.btl_bw <= 0 or self.min_rtt is None:
            return self.cwnd
        bdp = self.btl_bw * self.min_rtt
        gain = self.STARTUP_GAIN if self._in_startup else self.CWND_GAIN
        return max(self.MIN_CWND_SEGMENTS * self.mss, gain * bdp)

    @property
    def pacing_gain(self) -> float:
        """The current gain in the probe-bandwidth cycle."""
        if self._in_startup:
            return self.STARTUP_GAIN
        return self.PACING_GAIN_CYCLE[self._cycle_index]

    def _pacing_rate(self):
        if self.btl_bw > 0:
            return max(self.pacing_gain * self.btl_bw, 2.0 * self.mss / 0.05)
        return super()._pacing_rate()

    # ------------------------------------------------------------------ #
    def on_ack(self, newly_acked: int, ce_bytes: int, ce_seen: bool,
               rtt_sample: Optional[float]) -> None:
        now = self._sim.now
        if newly_acked > 0:
            self._delivered_bytes += newly_acked
            self._update_bandwidth_model(now)
        if rtt_sample is not None:
            if (self.min_rtt is None or rtt_sample < self.min_rtt
                    or now - self._min_rtt_stamp > self.MIN_RTT_WINDOW_S):
                self.min_rtt = rtt_sample
                self._min_rtt_stamp = now
        self._advance_cycle(now)
        # Keep the nominal cwnd pointing at the model's window so that the
        # generic machinery (stats, RTO scaling) sees a sensible value.
        self.cwnd = self._window_limit()

    def _update_bandwidth_model(self, now: float) -> None:
        self._delivery_samples.append((now, self._delivered_bytes))
        window = max(self.min_rtt or 0.1, 0.05)
        window_start = now - window
        while (len(self._delivery_samples) > 2
               and self._delivery_samples[0][0] < window_start):
            self._delivery_samples.pop(0)
        t0, d0 = self._delivery_samples[0]
        elapsed = now - t0
        if elapsed < 0.5 * window:
            # Not enough observation time for a trustworthy rate sample;
            # a couple of closely-spaced ACKs would wildly over-estimate.
            return
        sample_bw = (self._delivered_bytes - d0) / elapsed
        self._bw_samples.append(sample_bw)
        if len(self._bw_samples) > 30:
            self._bw_samples.pop(0)
        self.btl_bw = max(self._bw_samples)
        if self._in_startup:
            if self.btl_bw > self._full_bw * 1.25:
                self._full_bw = self.btl_bw
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
                if self._full_bw_rounds >= 3:
                    self._in_startup = False

    def _advance_cycle(self, now: float) -> None:
        rtt = self.min_rtt if self.min_rtt is not None else ms(50)
        if now - self._cycle_stamp >= rtt:
            self._cycle_stamp = now
            self._cycle_index = (self._cycle_index + 1) % len(
                self.PACING_GAIN_CYCLE)

    def on_loss(self) -> None:
        # BBR v1 does not reduce its model on isolated losses.
        self.stats.loss_events += 0

    def on_timeout(self) -> None:
        self._bw_samples.clear()
        self.btl_bw *= 0.5
