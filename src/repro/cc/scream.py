"""SCReAM: self-clocked rate adaptation for conversational video (RFC 8298).

The sender produces video frames at a fixed frame rate, packetises them and
adapts the *target bitrate* from periodic receiver feedback: the CE-mark
fraction (L4S mode) and the estimated queueing delay both push the rate down,
while clean feedback lets it ramp back up.  This captures the behaviour the
paper evaluates in §6.2.3 -- with L4Span marking in the RAN, SCReAM backs off
before the RLC queue grows, cutting RTT roughly 3x while keeping its rate.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import RateSender
from repro.net.ecn import ECN
from repro.net.packet import Packet
from repro.registry import CC_SENDERS
from repro.sim.engine import Simulator
from repro.units import mbps, ms


@CC_SENDERS.register("scream", is_l4s=True, is_udp=True, receiver="scream")
class ScreamSender(RateSender):
    """Rate-based L4S video sender driven by RTCP-style feedback."""

    name = "scream"
    ect_codepoint = ECN.ECT1
    uses_accecn = True

    #: Queue-delay target above which the rate is reduced (SCReAM default 60 ms).
    QDELAY_TARGET = ms(60)
    ALPHA_GAIN = 1.0 / 16.0

    def __init__(self, sim: Simulator, flow_id: int, five_tuple, path,
                 mss: int = 1200, flow_bytes: Optional[int] = None,
                 frame_rate: float = 30.0,
                 initial_rate: float = mbps(1.0),
                 min_rate: float = mbps(0.3),
                 max_rate: float = mbps(12.0)) -> None:
        super().__init__(sim, flow_id, five_tuple, path, mss=mss,
                         flow_bytes=flow_bytes, initial_rate=initial_rate,
                         min_rate=min_rate, max_rate=max_rate, protocol="udp")
        self.frame_rate = frame_rate
        self.alpha = 0.0
        self.base_owd: Optional[float] = None
        self._last_ce_bytes = 0
        self._last_received_bytes = 0
        self._last_feedback_time: Optional[float] = None

    # ------------------------------------------------------------------ #
    def _decorate_packet(self, packet: Packet) -> None:
        packet.payload_info["app"] = "scream"
        packet.payload_info["frame_interval"] = 1.0 / self.frame_rate

    # ------------------------------------------------------------------ #
    def receive(self, packet: Packet) -> None:
        if not packet.is_ack or not self.running:
            return
        now = self._sim.now
        rtt = None
        if "data_sent_time" in packet.payload_info:
            rtt = now - packet.payload_info["data_sent_time"]
            self._record_rtt(rtt)
        ce_bytes = packet.accecn.ce_bytes if packet.accecn is not None else 0
        received = packet.payload_info.get("received_bytes",
                                           self._last_received_bytes)
        delta_ce = max(0, ce_bytes - self._last_ce_bytes)
        delta_bytes = max(1, received - self._last_received_bytes)
        self._last_ce_bytes = ce_bytes
        self._last_received_bytes = received
        mark_fraction = min(1.0, delta_ce / delta_bytes)
        self.alpha = ((1.0 - self.ALPHA_GAIN) * self.alpha
                      + self.ALPHA_GAIN * mark_fraction)
        self.stats.acked_bytes = received
        self._adapt_rate(mark_fraction, rtt, now)

    def _adapt_rate(self, mark_fraction: float, rtt: Optional[float],
                    now: float) -> None:
        queue_delay = 0.0
        if rtt is not None:
            if self.base_owd is None or rtt < self.base_owd:
                self.base_owd = rtt
            queue_delay = max(0.0, rtt - self.base_owd)
        if mark_fraction > 0:
            self.stats.congestion_events += 1
            self.set_rate(self.rate * (1.0 - self.alpha / 2.0))
        elif queue_delay > self.QDELAY_TARGET:
            self.set_rate(self.rate * max(0.85,
                                          self.QDELAY_TARGET / queue_delay))
        else:
            interval = (now - self._last_feedback_time
                        if self._last_feedback_time is not None else 0.03)
            # Additive ramp: about 5% of the max rate per second of clean feedback.
            self.set_rate(self.rate + 0.05 * self.max_rate * interval)
        self._last_feedback_time = now
