"""Congestion-control senders and receivers.

Packet-level models of the congestion controllers the paper evaluates:

* window-based TCP senders -- :class:`~repro.cc.prague.PragueSender` (L4S),
  :class:`~repro.cc.cubic.CubicSender`, :class:`~repro.cc.reno.RenoSender`
  (classic), :class:`~repro.cc.bbr.BbrSender` and
  :class:`~repro.cc.bbrv2.Bbr2Sender` (rate-probing, the latter L4S-aware);
* application-level, rate-based senders for interactive video --
  :class:`~repro.cc.scream.ScreamSender` and
  :class:`~repro.cc.udp_prague.UdpPragueSender`;
* the matching client-side receivers that generate ACKs with classic-ECN or
  AccECN feedback (:mod:`repro.cc.receiver`).

``make_sender`` / ``make_receiver`` (:mod:`repro.cc.factory`) build a sender
by name, which is how the experiment harnesses select algorithms.
"""

from repro.cc.base import FlowStats, RateSender, Sender, WindowSender
from repro.cc.receiver import ScreamReceiver, TcpReceiver, UdpFeedbackReceiver
from repro.cc.prague import PragueSender
from repro.cc.cubic import CubicSender
from repro.cc.reno import RenoSender
from repro.cc.bbr import BbrSender
from repro.cc.bbrv2 import Bbr2Sender
from repro.cc.scream import ScreamSender
from repro.cc.udp_prague import UdpPragueSender
from repro.cc.factory import (CC_REGISTRY, is_l4s_algorithm, make_receiver,
                              make_sender)

__all__ = [
    "FlowStats",
    "Sender",
    "WindowSender",
    "RateSender",
    "TcpReceiver",
    "UdpFeedbackReceiver",
    "ScreamReceiver",
    "PragueSender",
    "CubicSender",
    "RenoSender",
    "BbrSender",
    "Bbr2Sender",
    "ScreamSender",
    "UdpPragueSender",
    "CC_REGISTRY",
    "make_sender",
    "make_receiver",
    "is_l4s_algorithm",
]
