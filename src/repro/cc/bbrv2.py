"""BBRv2: BBR with DCTCP/L4S-style reaction to ECN marks.

BBRv2 keeps BBR's bandwidth/RTT model but bounds the data in flight by
``inflight_hi``, which it reduces multiplicatively when the per-round CE-mark
fraction exceeds a small threshold.  The sender negotiates AccECN and sets
ECT(1), so L4Span treats its flows as L4S (paper §6.1).
"""

from __future__ import annotations

from typing import Optional

from repro.cc.bbr import BbrSender
from repro.net.ecn import ECN
from repro.registry import CC_SENDERS


@CC_SENDERS.register("bbr2", "bbrv2", is_l4s=True)
class Bbr2Sender(BbrSender):
    """BBRv2 with ECN-triggered in-flight bounding."""

    name = "bbr2"
    ect_codepoint = ECN.ECT1
    uses_accecn = True

    #: CE fraction above which the round is treated as congested.
    ECN_THRESHOLD = 0.05
    #: Multiplicative back-off applied to ``inflight_hi`` on a congested round.
    BETA_ECN = 0.3
    ALPHA_GAIN = 1.0 / 16.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.alpha = 0.0
        self.inflight_hi: Optional[float] = None
        self._round_acked = 0
        self._round_ce = 0

    # ------------------------------------------------------------------ #
    def _window_limit(self) -> float:
        limit = super()._window_limit()
        if self.inflight_hi is not None:
            limit = min(limit, self.inflight_hi)
        return max(limit, self.MIN_CWND_SEGMENTS * self.mss)

    def on_ack(self, newly_acked: int, ce_bytes: int, ce_seen: bool,
               rtt_sample: Optional[float]) -> None:
        self._round_acked += newly_acked
        self._round_ce += ce_bytes
        super().on_ack(newly_acked, ce_bytes, ce_seen, rtt_sample)

    def on_round_end(self) -> None:
        acked = max(self._round_acked, 1)
        fraction = min(1.0, self._round_ce / acked)
        self.alpha = ((1.0 - self.ALPHA_GAIN) * self.alpha
                      + self.ALPHA_GAIN * fraction)
        if fraction > self.ECN_THRESHOLD:
            self.stats.congestion_events += 1
            reference = self.inflight_hi if self.inflight_hi is not None \
                else max(self.inflight, self.cwnd)
            reduction = max(self.BETA_ECN * self.alpha, 0.02)
            self.inflight_hi = max(reference * (1.0 - reduction),
                                   self.MIN_CWND_SEGMENTS * self.mss)
        elif self.inflight_hi is not None:
            # Probe upwards again when marks subside.
            self.inflight_hi *= 1.02
        self._round_acked = 0
        self._round_ce = 0

    def on_loss(self) -> None:
        reference = self.inflight_hi if self.inflight_hi is not None \
            else self.inflight
        self.inflight_hi = max(reference * 0.7,
                               self.MIN_CWND_SEGMENTS * self.mss)
