"""Factory for congestion-control senders and their matching receivers.

Experiment code selects algorithms by name ("prague", "cubic", ...), exactly
as the paper's evaluation tables do.  ``make_sender`` instantiates the sender
and ``make_receiver`` builds the appropriate client-side receiver (TCP with
classic or AccECN feedback, per-packet UDP feedback, or SCReAM's periodic
RTCP-style feedback).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cc.base import Sender
from repro.cc.bbr import BbrSender
from repro.cc.bbrv2 import Bbr2Sender
from repro.cc.cubic import CubicSender
from repro.cc.prague import PragueSender
from repro.cc.receiver import ScreamReceiver, TcpReceiver, UdpFeedbackReceiver
from repro.cc.reno import RenoSender
from repro.cc.scream import ScreamSender
from repro.cc.udp_prague import UdpPragueSender
from repro.net.addresses import FiveTuple
from repro.net.base import PacketSink
from repro.net.packet import Packet
from repro.sim.engine import Simulator

#: All senders selectable by name.
CC_REGISTRY: dict[str, type[Sender]] = {
    "prague": PragueSender,
    "cubic": CubicSender,
    "reno": RenoSender,
    "bbr": BbrSender,
    "bbr2": Bbr2Sender,
    "bbrv2": Bbr2Sender,
    "scream": ScreamSender,
    "udp_prague": UdpPragueSender,
}

#: Algorithms whose traffic is classified as L4S (sets ECT(1)).
L4S_ALGORITHMS = frozenset({"prague", "bbr2", "bbrv2", "scream", "udp_prague"})

#: Algorithms that run over UDP (no TCP ACK stream to short-circuit).
UDP_ALGORITHMS = frozenset({"scream", "udp_prague"})


def is_l4s_algorithm(name: str) -> bool:
    """True when the named algorithm belongs to the L4S service."""
    return name.lower() in L4S_ALGORITHMS


def is_udp_algorithm(name: str) -> bool:
    """True when the named algorithm runs over UDP."""
    return name.lower() in UDP_ALGORITHMS


def make_sender(name: str, sim: Simulator, flow_id: int,
                five_tuple: FiveTuple, path: PacketSink,
                flow_bytes: Optional[int] = None, **kwargs) -> Sender:
    """Instantiate the sender for algorithm ``name``."""
    key = name.lower()
    if key not in CC_REGISTRY:
        raise KeyError(f"unknown congestion control {name!r}; "
                       f"choose from {sorted(CC_REGISTRY)}")
    cls = CC_REGISTRY[key]
    return cls(sim, flow_id, five_tuple, path, flow_bytes=flow_bytes, **kwargs)


def make_receiver(name: str, sim: Simulator, flow_id: int,
                  send_feedback: Callable[[Packet], None],
                  owd_callback: Optional[Callable[[float, Packet], None]] = None):
    """Instantiate the matching receiver for algorithm ``name``."""
    key = name.lower()
    if key not in CC_REGISTRY:
        raise KeyError(f"unknown congestion control {name!r}")
    if key == "scream":
        return ScreamReceiver(sim, flow_id, send_feedback,
                              owd_callback=owd_callback)
    if key == "udp_prague":
        return UdpFeedbackReceiver(sim, flow_id, send_feedback,
                                   owd_callback=owd_callback)
    accecn = CC_REGISTRY[key].uses_accecn
    return TcpReceiver(sim, flow_id, send_feedback, accecn=accecn,
                       owd_callback=owd_callback)
