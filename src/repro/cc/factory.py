"""Factory for congestion-control senders and their matching receivers.

Experiment code selects algorithms by name ("prague", "cubic", ...), exactly
as the paper's evaluation tables do.  The algorithms themselves live in the
:data:`repro.registry.CC_SENDERS` registry — each sender class registers
itself (with its capability flags) at definition time, and this module merely
imports them all so registration has happened, then answers lookups.

``make_sender`` instantiates the sender and ``make_receiver`` builds the
appropriate client-side receiver (TCP with classic or AccECN feedback,
per-packet UDP feedback, or SCReAM's periodic RTCP-style feedback), selected
by the ``receiver`` metadata flag of the registered sender.
"""

from __future__ import annotations

from typing import Callable, Optional

# Importing the sender modules triggers their registration.
import repro.cc.bbr      # noqa: F401
import repro.cc.bbrv2    # noqa: F401
import repro.cc.cubic    # noqa: F401
import repro.cc.prague   # noqa: F401
import repro.cc.reno     # noqa: F401
import repro.cc.scream   # noqa: F401
import repro.cc.udp_prague  # noqa: F401
from repro.cc.base import Sender
from repro.cc.receiver import ScreamReceiver, TcpReceiver, UdpFeedbackReceiver
from repro.net.addresses import FiveTuple
from repro.net.base import PacketSink
from repro.net.packet import Packet
from repro.registry import CC_SENDERS
from repro.sim.engine import Simulator

#: Backwards-compatible alias: membership tests (``"prague" in CC_REGISTRY``)
#: and name listings keep working against the registry object.
CC_REGISTRY = CC_SENDERS

#: Receiver kinds selectable through the ``receiver`` registry flag.
_RECEIVERS = {
    "scream": ScreamReceiver,
    "udp": UdpFeedbackReceiver,
}


def algorithm_names() -> list[str]:
    """Registered algorithm names (CLI ``choices=``, spec validation)."""
    return CC_SENDERS.names()


def is_l4s_algorithm(name: str) -> bool:
    """True when the named algorithm belongs to the L4S service."""
    return bool(CC_SENDERS.flag(name, "is_l4s"))


def is_udp_algorithm(name: str) -> bool:
    """True when the named algorithm runs over UDP."""
    return bool(CC_SENDERS.flag(name, "is_udp"))


def make_sender(name: str, sim: Simulator, flow_id: int,
                five_tuple: FiveTuple, path: PacketSink,
                flow_bytes: Optional[int] = None, **kwargs) -> Sender:
    """Instantiate the sender for algorithm ``name``."""
    cls = CC_SENDERS.get(name)
    return cls(sim, flow_id, five_tuple, path, flow_bytes=flow_bytes, **kwargs)


def make_receiver(name: str, sim: Simulator, flow_id: int,
                  send_feedback: Callable[[Packet], None],
                  owd_callback: Optional[Callable[[float, Packet], None]] = None):
    """Instantiate the matching receiver for algorithm ``name``."""
    kind = CC_SENDERS.flag(name, "receiver", default="tcp")
    receiver_cls = _RECEIVERS.get(kind)
    if receiver_cls is not None:
        return receiver_cls(sim, flow_id, send_feedback,
                            owd_callback=owd_callback)
    accecn = CC_SENDERS.get(name).uses_accecn
    return TcpReceiver(sim, flow_id, send_feedback, accecn=accecn,
                       owd_callback=owd_callback)
