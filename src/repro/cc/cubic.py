"""CUBIC (RFC 9438): the dominant classic loss/ECN-based TCP.

CUBIC reacts to a congestion signal (packet loss or a classic-ECN echo) by
cutting the window to ``beta * cwnd`` and then grows it along the cubic
function ``W(t) = C (t - K)^3 + W_max``.  It treats CE feedback exactly like
loss, which is why L4Span must not aim for a shallow queue for classic flows
(paper §4.2.2).
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import WindowSender
from repro.net.ecn import ECN
from repro.registry import CC_SENDERS


@CC_SENDERS.register("cubic")
class CubicSender(WindowSender):
    """Classic-ECN CUBIC sender."""

    name = "cubic"
    ect_codepoint = ECN.ECT0
    uses_accecn = False

    BETA = 0.7
    C = 0.4  # MSS per second^3, the standard CUBIC constant
    ENABLE_HYSTART = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.w_max = 0.0
        self._epoch_start: Optional[float] = None
        self._k = 0.0
        self._ce_reaction_until = 0.0

    # ------------------------------------------------------------------ #
    def _enter_congestion_avoidance(self, w_max_segments: float) -> None:
        self.w_max = w_max_segments
        self._epoch_start = None

    def _cubic_target(self, now: float) -> float:
        """Target window in segments according to the cubic function."""
        if self._epoch_start is None:
            self._epoch_start = now
            current_segments = self.cwnd / self.mss
            wmax = max(self.w_max, current_segments)
            self._k = ((wmax * (1.0 - self.BETA)) / self.C) ** (1.0 / 3.0)
        t = now - self._epoch_start
        wmax = max(self.w_max, self.MIN_CWND_SEGMENTS)
        return self.C * (t - self._k) ** 3 + wmax

    # ------------------------------------------------------------------ #
    def on_ack(self, newly_acked: int, ce_bytes: int, ce_seen: bool,
               rtt_sample: Optional[float]) -> None:
        now = self._sim.now
        if ce_seen and now >= self._ce_reaction_until:
            self._congestion_response()
            return
        if newly_acked <= 0:
            return
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked
            return
        target_segments = self._cubic_target(now)
        current_segments = self.cwnd / self.mss
        if target_segments > current_segments:
            increment = (target_segments - current_segments) / current_segments
            self.cwnd += increment * self.mss * (newly_acked / self.mss)
        else:
            # TCP-friendly region: at least Reno's growth.
            self.cwnd += 0.2 * self.mss * newly_acked / self.cwnd

    def _congestion_response(self) -> None:
        """React to an ECN congestion-experienced echo (once per RTT)."""
        self.stats.congestion_events += 1
        self._enter_congestion_avoidance(self.cwnd / self.mss)
        self.cwnd = max(self.cwnd * self.BETA,
                        self.MIN_CWND_SEGMENTS * self.mss)
        self.ssthresh = self.cwnd
        self.signal_cwr()
        rtt = self.srtt if self.srtt is not None else 0.05
        self._ce_reaction_until = self._sim.now + rtt

    def on_loss(self) -> None:
        self.stats.congestion_events += 1
        self._enter_congestion_avoidance(self.cwnd / self.mss)
        self.cwnd = max(self.cwnd * self.BETA,
                        self.MIN_CWND_SEGMENTS * self.mss)
        self.ssthresh = self.cwnd

    def on_timeout(self) -> None:
        self._enter_congestion_avoidance(self.cwnd / self.mss)
