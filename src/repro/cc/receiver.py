"""Client-side receivers: reassembly, ECN feedback and ACK generation.

Receivers live on the UE (or directly behind the wired client in the
motivation topology).  They consume downlink data packets and emit feedback
packets through a caller-supplied ``send_feedback`` callable -- on a UE this
is :meth:`repro.ran.ue.UeContext.send_uplink`, so feedback experiences the
uplink path and passes through the gNB where L4Span may rewrite it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.ecn import ECN
from repro.net.packet import AccEcnCounters, Packet, make_ack_packet
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.units import ms


class TcpReceiver:
    """A TCP receiver generating one ACK per received data segment.

    Args:
        sim: simulator.
        flow_id: flow this receiver terminates.
        send_feedback: callable taking the ACK packet to transmit uplink.
        accecn: when True the receiver reports AccECN counters; otherwise it
            uses the classic RFC 3168 ECE/CWR echo.
        owd_callback: optional callable invoked with each data packet's
            one-way delay (seconds), used by the metrics collectors.
    """

    def __init__(self, sim: Simulator, flow_id: int,
                 send_feedback: Callable[[Packet], None],
                 accecn: bool = False,
                 owd_callback: Optional[Callable[[float, Packet], None]] = None
                 ) -> None:
        self._sim = sim
        self.flow_id = flow_id
        self._send_feedback = send_feedback
        self.accecn_enabled = accecn
        self._owd_callback = owd_callback
        self.rcv_nxt = 0
        self._out_of_order: list[tuple[int, int]] = []
        self.counters = AccEcnCounters()
        self.ece_latched = False
        self.received_packets = 0
        self.received_bytes = 0
        self.ce_packets_seen = 0

    # ------------------------------------------------------------------ #
    # Handover state transfer
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict:
        """Snapshot the transport state a handover must carry to the target.

        The snapshot is complete: importing it into a freshly constructed
        receiver reproduces this receiver exactly, which is what lets a
        handed-over flow's receiver be rebuilt on another shard without the
        sender noticing (cumulative ACK point and AccECN counters survive).
        """
        return {"rcv_nxt": self.rcv_nxt,
                "out_of_order": list(self._out_of_order),
                "counters": self.counters.copy(),
                "ece_latched": self.ece_latched,
                "received_packets": self.received_packets,
                "received_bytes": self.received_bytes,
                "ce_packets_seen": self.ce_packets_seen}

    def import_state(self, state: dict) -> None:
        """Adopt a peer receiver's exported state (handover arrival)."""
        self.rcv_nxt = state["rcv_nxt"]
        self._out_of_order = list(state["out_of_order"])
        self.counters = state["counters"].copy()
        self.ece_latched = state["ece_latched"]
        self.received_packets = state["received_packets"]
        self.received_bytes = state["received_bytes"]
        self.ce_packets_seen = state["ce_packets_seen"]

    # ------------------------------------------------------------------ #
    def receive(self, packet: Packet) -> None:
        if packet.is_ack:
            return
        now = self._sim.now
        self.received_packets += 1
        self.received_bytes += packet.payload_bytes
        self._account_ecn(packet)
        self._reassemble(packet)
        if self._owd_callback is not None:
            self._owd_callback(now - packet.sent_time, packet)
        ack = make_ack_packet(
            packet, ack_seq=self.rcv_nxt, now=now,
            ece=self.ece_latched if not self.accecn_enabled else False,
            accecn=self.counters if self.accecn_enabled else None)
        self._send_feedback(ack)

    # ------------------------------------------------------------------ #
    def _account_ecn(self, packet: Packet) -> None:
        if packet.ecn == ECN.CE:
            self.ce_packets_seen += 1
            if not self.accecn_enabled:
                self.ece_latched = True
        self.counters.add_packet(packet.size, packet.ecn)
        if packet.cwr and not self.accecn_enabled:
            self.ece_latched = False

    def _reassemble(self, packet: Packet) -> None:
        start, end = packet.seq, packet.end_seq
        if end <= self.rcv_nxt:
            return
        if start > self.rcv_nxt:
            self._out_of_order.append((start, end))
            return
        self.rcv_nxt = end
        # Merge any buffered segments now contiguous with the cumulative point.
        merged = True
        while merged:
            merged = False
            for segment in sorted(self._out_of_order):
                seg_start, seg_end = segment
                if seg_start <= self.rcv_nxt < seg_end:
                    self.rcv_nxt = seg_end
                    self._out_of_order.remove(segment)
                    merged = True
                    break
                if seg_end <= self.rcv_nxt:
                    self._out_of_order.remove(segment)
                    merged = True
                    break


class UdpFeedbackReceiver:
    """A UDP receiver that echoes per-packet feedback in the payload.

    Used by UDP Prague: every received datagram triggers a feedback packet
    carrying the receiver's running CE/ECT byte counters (the UDP analogue of
    AccECN), which the rate-based sender differences.
    """

    def __init__(self, sim: Simulator, flow_id: int,
                 send_feedback: Callable[[Packet], None],
                 owd_callback: Optional[Callable[[float, Packet], None]] = None
                 ) -> None:
        self._sim = sim
        self.flow_id = flow_id
        self._send_feedback = send_feedback
        self._owd_callback = owd_callback
        self.counters = AccEcnCounters()
        self.received_packets = 0
        self.received_bytes = 0
        self.highest_seq = 0

    def export_state(self) -> dict:
        """Snapshot the feedback state a handover carries to the target."""
        return {"counters": self.counters.copy(),
                "received_packets": self.received_packets,
                "received_bytes": self.received_bytes,
                "highest_seq": self.highest_seq}

    def import_state(self, state: dict) -> None:
        """Adopt a peer receiver's exported state (handover arrival)."""
        self.counters = state["counters"].copy()
        self.received_packets = state["received_packets"]
        self.received_bytes = state["received_bytes"]
        self.highest_seq = state["highest_seq"]

    def receive(self, packet: Packet) -> None:
        if packet.is_ack:
            return
        now = self._sim.now
        self.received_packets += 1
        self.received_bytes += packet.payload_bytes
        self.counters.add_packet(packet.size, packet.ecn)
        self.highest_seq = max(self.highest_seq, packet.end_seq)
        if self._owd_callback is not None:
            self._owd_callback(now - packet.sent_time, packet)
        feedback = make_ack_packet(packet, ack_seq=self.highest_seq, now=now,
                                   accecn=self.counters)
        feedback.payload_info["udp_feedback"] = True
        self._send_feedback(feedback)


class ScreamReceiver:
    """SCReAM's receiver: periodic RTCP-style feedback over the RTP session.

    Feedback is emitted every ``feedback_interval`` (only when new media
    arrived) and carries the cumulative CE byte counter, the number of bytes
    received and an echo of the newest packet's send timestamp for RTT
    estimation.
    """

    def __init__(self, sim: Simulator, flow_id: int,
                 send_feedback: Callable[[Packet], None],
                 feedback_interval: float = ms(30),
                 owd_callback: Optional[Callable[[float, Packet], None]] = None
                 ) -> None:
        self._sim = sim
        self.flow_id = flow_id
        self._send_feedback = send_feedback
        self.feedback_interval = feedback_interval
        self._owd_callback = owd_callback
        self.counters = AccEcnCounters()
        self.received_packets = 0
        self.received_bytes = 0
        self.highest_seq = 0
        self._last_packet: Optional[Packet] = None
        self._new_data = False
        self._process = PeriodicProcess(sim, feedback_interval,
                                        self._emit_feedback,
                                        name=f"scream-fb-{flow_id}")

    def export_state(self) -> dict:
        """Snapshot the feedback state a handover carries to the target.

        The periodic feedback process itself is *not* exported: a receiver
        rebuilt at handover time starts a fresh feedback clock, identically
        in the single loop and on a shard.
        """
        return {"counters": self.counters.copy(),
                "received_packets": self.received_packets,
                "received_bytes": self.received_bytes,
                "highest_seq": self.highest_seq,
                "last_packet": self._last_packet,
                "new_data": self._new_data}

    def import_state(self, state: dict) -> None:
        """Adopt a peer receiver's exported state (handover arrival)."""
        self.counters = state["counters"].copy()
        self.received_packets = state["received_packets"]
        self.received_bytes = state["received_bytes"]
        self.highest_seq = state["highest_seq"]
        self._last_packet = state["last_packet"]
        self._new_data = state["new_data"]

    def receive(self, packet: Packet) -> None:
        if packet.is_ack:
            return
        now = self._sim.now
        self.received_packets += 1
        self.received_bytes += packet.payload_bytes
        self.counters.add_packet(packet.size, packet.ecn)
        self.highest_seq = max(self.highest_seq, packet.end_seq)
        self._last_packet = packet
        self._new_data = True
        if self._owd_callback is not None:
            self._owd_callback(now - packet.sent_time, packet)

    def _emit_feedback(self) -> None:
        if not self._new_data or self._last_packet is None:
            return
        self._new_data = False
        feedback = make_ack_packet(self._last_packet, ack_seq=self.highest_seq,
                                   now=self._sim.now, accecn=self.counters)
        feedback.payload_info["scream_feedback"] = True
        feedback.payload_info["received_bytes"] = self.received_bytes
        self._send_feedback(feedback)

    def stop(self) -> None:
        """Stop the periodic feedback process."""
        self._process.stop()
