"""UDP Prague: the L4S reference rate-based controller for interactive apps.

The receiver echoes its running CE/ECT byte counters inside the UDP payload
of every feedback datagram; the sender differences them per round trip and
applies the Prague law to its sending *rate*: one multiplicative decrease
``rate <- rate * (1 - alpha / 2)`` per congested round, additive increase
otherwise.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import RateSender
from repro.net.ecn import ECN
from repro.net.packet import Packet
from repro.registry import CC_SENDERS
from repro.sim.engine import Simulator
from repro.units import mbps


@CC_SENDERS.register("udp_prague", is_l4s=True, is_udp=True, receiver="udp")
class UdpPragueSender(RateSender):
    """Rate-based Prague over UDP."""

    name = "udp_prague"
    ect_codepoint = ECN.ECT1
    uses_accecn = True

    ALPHA_GAIN = 1.0 / 16.0

    def __init__(self, sim: Simulator, flow_id: int, five_tuple, path,
                 mss: int = 1200, flow_bytes: Optional[int] = None,
                 initial_rate: float = mbps(1.0),
                 min_rate: float = mbps(0.15),
                 max_rate: float = mbps(20.0)) -> None:
        super().__init__(sim, flow_id, five_tuple, path, mss=mss,
                         flow_bytes=flow_bytes, initial_rate=initial_rate,
                         min_rate=min_rate, max_rate=max_rate, protocol="udp")
        self.alpha = 0.0
        self._last_ce_bytes = 0
        self._last_acked_bytes = 0
        self._round_start = 0.0
        self._round_ce = 0
        self._round_acked = 0
        self._srtt: Optional[float] = None

    # ------------------------------------------------------------------ #
    def _decorate_packet(self, packet: Packet) -> None:
        packet.payload_info["app"] = "udp_prague"

    def receive(self, packet: Packet) -> None:
        if not packet.is_ack or not self.running:
            return
        now = self._sim.now
        if "data_sent_time" in packet.payload_info:
            rtt = now - packet.payload_info["data_sent_time"]
            self._record_rtt(rtt)
            self._srtt = rtt if self._srtt is None else (
                0.875 * self._srtt + 0.125 * rtt)
        ce_bytes = packet.accecn.ce_bytes if packet.accecn is not None else 0
        acked = packet.ack_seq
        self._round_ce += max(0, ce_bytes - self._last_ce_bytes)
        self._round_acked += max(0, acked - self._last_acked_bytes)
        self._last_ce_bytes = max(self._last_ce_bytes, ce_bytes)
        self._last_acked_bytes = max(self._last_acked_bytes, acked)
        self.stats.acked_bytes = self._last_acked_bytes
        rtt_estimate = self._srtt if self._srtt is not None else 0.05
        if now - self._round_start >= rtt_estimate:
            self._end_round(rtt_estimate)
            self._round_start = now

    def _end_round(self, rtt: float) -> None:
        acked = max(self._round_acked, 1)
        fraction = min(1.0, self._round_ce / acked)
        self.alpha = ((1.0 - self.ALPHA_GAIN) * self.alpha
                      + self.ALPHA_GAIN * fraction)
        if self._round_ce > 0:
            self.stats.congestion_events += 1
            self.set_rate(self.rate * (1.0 - self.alpha / 2.0))
        else:
            # Additive increase of one MSS per RTT, expressed as a rate.
            self.set_rate(self.rate + self.mss / max(rtt, 1e-3))
        self._round_ce = 0
        self._round_acked = 0
