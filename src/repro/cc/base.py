"""Common machinery for congestion-control senders.

Two families of senders exist:

* :class:`WindowSender` -- ACK-clocked, a congestion window in bytes, classic
  or AccECN feedback, duplicate-ACK fast retransmit and an RTO backstop.  The
  TCP algorithms (Prague, CUBIC, Reno, BBRv2's window cap) derive from it and
  customise the window-update hooks.
* :class:`RateSender` -- paced transmission at an explicit rate, used by the
  interactive/video algorithms (SCReAM, UDP Prague) and by BBR's
  bandwidth-probing model.

Both share :class:`Sender`, which owns flow identity, the forward path and
the statistics every experiment reads out.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

from repro.metrics.collectors import SampleReservoir
from repro.net.addresses import FiveTuple
from repro.net.base import PacketSink
from repro.net.ecn import ECN
from repro.net.packet import DEFAULT_MSS, HEADER_BYTES, Packet, make_data_packet
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.units import ms

#: Reservoir capacities for the per-flow sample streams.  RTT samples feed
#: experiment medians/boxes, so their cap is generous enough that every
#: CI-scale run stays below it (bit-identical to unbounded); cwnd/rate traces
#: are debugging aids and get a tighter bound.  One sample arrives per ACK,
#: so an unbounded list grows without limit in long-lived runs.
RTT_SAMPLE_CAP = 1 << 18
TRACE_SAMPLE_CAP = 1 << 16


@dataclass
class FlowStats:
    """Counters and samples accumulated by a sender over its lifetime.

    The sample streams are :class:`~repro.metrics.collectors.SampleReservoir`
    lists: bounded, uniformly representative, and exactly equal to the raw
    stream until their capacity is reached.
    """

    sent_packets: int = 0
    sent_bytes: int = 0
    retransmitted_packets: int = 0
    acked_bytes: int = 0
    ce_feedback_bytes: int = 0
    congestion_events: int = 0
    loss_events: int = 0
    timeouts: int = 0
    start_time: float = 0.0
    completion_time: Optional[float] = None
    rtt_samples: list[float] = field(
        default_factory=lambda: SampleReservoir(RTT_SAMPLE_CAP))
    cwnd_samples: list[tuple[float, float]] = field(
        default_factory=lambda: SampleReservoir(TRACE_SAMPLE_CAP))
    rate_samples: list[tuple[float, float]] = field(
        default_factory=lambda: SampleReservoir(TRACE_SAMPLE_CAP))

    @property
    def mean_rtt(self) -> Optional[float]:
        """Mean of the collected RTT samples, or None when there are none."""
        if not self.rtt_samples:
            return None
        return sum(self.rtt_samples) / len(self.rtt_samples)

    def goodput_bytes_per_s(self, now: float) -> float:
        """Acked bytes divided by elapsed flow lifetime."""
        end = self.completion_time if self.completion_time is not None else now
        elapsed = max(end - self.start_time, 1e-9)
        return self.acked_bytes / elapsed


class Sender(abc.ABC):
    """Base class for every content-server sender.

    Args:
        sim: simulator.
        flow_id: unique flow identifier.
        five_tuple: downlink five-tuple of the flow.
        path: first hop of the forward (downlink) path.
        mss: maximum segment payload size in bytes.
        flow_bytes: total bytes to transfer, or None for an unlimited
            (long-lived) flow.
    """

    #: The ECN codepoint this sender sets on its data packets.
    ect_codepoint: ECN = ECN.NOT_ECT
    #: True when the sender negotiates AccECN feedback.
    uses_accecn: bool = False
    #: Human-readable algorithm name (overridden by subclasses).
    name: str = "base"

    # Senders sit on the per-ACK hot path; slots keep their core state out
    # of instance dicts.  Algorithm subclasses stay dict-backed (their extra
    # state is small and tests monkeypatch methods on instances).
    __slots__ = ("_sim", "flow_id", "five_tuple", "path", "mss", "flow_bytes",
                 "stats", "running")

    def __init__(self, sim: Simulator, flow_id: int, five_tuple: FiveTuple,
                 path: PacketSink, mss: int = DEFAULT_MSS,
                 flow_bytes: Optional[int] = None) -> None:
        self._sim = sim
        self.flow_id = flow_id
        self.five_tuple = five_tuple
        self.path = path
        self.mss = mss
        self.flow_bytes = flow_bytes
        self.stats = FlowStats()
        self.running = False

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def start(self) -> None:
        """Begin transmitting."""

    @abc.abstractmethod
    def receive(self, packet: Packet) -> None:
        """Handle a feedback packet (ACK) arriving over the return path."""

    def stop(self) -> None:
        """Stop transmitting (the flow may be restarted only by a new sender)."""
        self.running = False

    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> bool:
        """True once a finite flow has delivered all of its bytes."""
        return self.stats.completion_time is not None

    def _record_rtt(self, sample: float) -> None:
        if sample > 0:
            self.stats.rtt_samples.append(sample)


class WindowSender(Sender):
    """ACK-clocked sender with a congestion window, fast retransmit and RTO."""

    INITIAL_WINDOW_SEGMENTS = 10
    MIN_CWND_SEGMENTS = 2
    DUPACK_THRESHOLD = 3
    #: Exit slow start when the RTT rises noticeably above its floor
    #: (HyStart delay-increase detection, on by default in Linux CUBIC).
    ENABLE_HYSTART = False
    HYSTART_MIN_DELAY_INCREASE = 0.004

    __slots__ = ("cwnd", "ssthresh", "snd_una", "snd_nxt", "srtt", "rttvar",
                 "rto", "_dupacks", "_last_ack_seq", "_rto_event",
                 "_rto_deadline", "_rto_event_time", "_cwr_pending",
                 "_ce_in_round",
                 "_round_end_seq", "_last_accecn_ce_bytes",
                 "_last_accecn_ce_packets", "_recovery_until",
                 "_in_fast_recovery", "_pacing_timer", "_next_send_time",
                 "_min_rtt_seen", "_round_min_rtt")

    def __init__(self, sim: Simulator, flow_id: int, five_tuple: FiveTuple,
                 path: PacketSink, mss: int = DEFAULT_MSS,
                 flow_bytes: Optional[int] = None) -> None:
        super().__init__(sim, flow_id, five_tuple, path, mss, flow_bytes)
        self.cwnd = float(self.INITIAL_WINDOW_SEGMENTS * mss)
        self.ssthresh = float("inf")
        self.snd_una = 0
        self.snd_nxt = 0
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = 1.0
        self._dupacks = 0
        self._last_ack_seq = -1
        self._rto_event: Optional[Event] = None
        self._rto_deadline: Optional[float] = None
        self._rto_event_time = 0.0
        self._cwr_pending = False
        self._ce_in_round = False
        self._round_end_seq = 0
        self._last_accecn_ce_bytes = 0
        self._last_accecn_ce_packets = 0
        self._recovery_until = 0
        self._in_fast_recovery = False
        self._pacing_timer: Optional[Event] = None
        self._next_send_time = 0.0
        self._min_rtt_seen: Optional[float] = None
        self._round_min_rtt: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self.running = True
        self.stats.start_time = self._sim.now
        self._round_end_seq = 0
        self._try_send()
        self._arm_rto()

    def stop(self) -> None:
        super().stop()
        self._rto_deadline = None
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None
        if self._pacing_timer is not None:
            self._pacing_timer.cancel()
            self._pacing_timer = None

    # ------------------------------------------------------------------ #
    # Sending
    # ------------------------------------------------------------------ #
    @property
    def inflight(self) -> int:
        """Bytes sent but not yet cumulatively acknowledged."""
        return self.snd_nxt - self.snd_una

    def _bytes_remaining(self) -> Optional[int]:
        if self.flow_bytes is None:
            return None
        return max(0, self.flow_bytes - self.snd_nxt)

    def _window_limit(self) -> float:
        """The effective window; subclasses may cap it further."""
        return self.cwnd

    def _pacing_rate(self) -> Optional[float]:
        """Pacing rate in bytes/s, or None to send unpaced.

        Modern senders (Prague in particular, per the Prague requirements)
        pace their segments across the RTT instead of bursting a whole
        window; the default policy mirrors Linux: twice the cwnd-rate in slow
        start, 1.2x in congestion avoidance.  Subclasses (BBR) override this
        with their model-based pacing rate.
        """
        if self.srtt is None or self.srtt <= 0 or self.cwnd <= 0:
            return None
        gain = 2.0 if self.cwnd < self.ssthresh else 1.2
        return gain * self.cwnd / self.srtt

    def _try_send(self) -> None:
        if not self.running or self._pacing_timer is not None:
            return
        self._send_loop()

    def _send_loop(self) -> None:
        self._pacing_timer = None
        if not self.running:
            return
        now = self._sim.now
        mss = self.mss
        flow_bytes = self.flow_bytes
        sent = False
        while True:
            if flow_bytes is not None and flow_bytes - self.snd_nxt <= 0:
                break
            if self.snd_nxt - self.snd_una + mss > self._window_limit():
                break
            rate = self._pacing_rate()
            if rate is not None and rate > 0 and self._next_send_time > now + 1e-9:
                self._pacing_timer = self._sim.schedule(
                    self._next_send_time - now, self._send_loop)
                break
            payload = mss
            if flow_bytes is not None:
                remaining = flow_bytes - self.snd_nxt
                if remaining < payload:
                    payload = remaining
            self._send_segment(self.snd_nxt, payload)
            self.snd_nxt += payload
            sent = True
            if rate is not None and rate > 0:
                self._next_send_time = max(self._next_send_time, now) \
                    + payload / rate
        if sent and self._rto_deadline is None:
            # A pacing-deferred burst fired after the pipe was empty (no
            # deadline was armed when the ACK drained it): the new in-flight
            # data must still be covered by a retransmission timer.
            self._arm_rto()

    def _send_segment(self, seq: int, payload: int,
                      retransmission: bool = False) -> None:
        packet = make_data_packet(self.flow_id, self.five_tuple, seq, payload,
                                  self.ect_codepoint, self._sim.now,
                                  retransmission=retransmission)
        if self._cwr_pending and not retransmission:
            packet.cwr = True
            self._cwr_pending = False
        self.stats.sent_packets += 1
        self.stats.sent_bytes += packet.size
        if retransmission:
            self.stats.retransmitted_packets += 1
        self.path.receive(packet)

    # ------------------------------------------------------------------ #
    # ACK processing
    # ------------------------------------------------------------------ #
    def receive(self, packet: Packet) -> None:
        """Per-ACK processing shared by every windowed algorithm.

        This runs once per delivered data packet -- the single hottest
        congestion-control callback -- so the feedback extraction is inlined
        and the RTO timer is refreshed lazily (deadline bump, no per-ACK
        event churn) instead of cancel+reschedule.
        """
        if not packet.is_ack or not self.running:
            return
        now = self._sim.now
        stats = self.stats
        rtt_sample = packet.payload_info.get("data_sent_time")
        if rtt_sample is not None:
            rtt_sample = now - rtt_sample
            if rtt_sample > 0:
                stats.rtt_samples.append(rtt_sample)
            self._update_rto(rtt_sample)
            self._hystart_check(rtt_sample)
        ack_seq = packet.ack_seq
        newly_acked = ack_seq - self.snd_una
        ce_bytes_delta, ce_seen = self._extract_ecn_feedback(packet)
        if newly_acked > 0:
            self.snd_una = ack_seq
            stats.acked_bytes += newly_acked
            self._dupacks = 0
            if self._in_fast_recovery and ack_seq >= self._recovery_until:
                self._in_fast_recovery = False
        else:
            newly_acked = 0
            self._count_dupack(packet)
        if ce_seen:
            self._ce_in_round = True
            if ce_bytes_delta > 0:
                stats.ce_feedback_bytes += ce_bytes_delta
        self.on_ack(newly_acked, ce_bytes_delta, ce_seen, rtt_sample)
        if self.snd_una >= self._round_end_seq:
            self._hystart_round_check()
            self.on_round_end()
            self._ce_in_round = False
            self._round_end_seq = self.snd_nxt
        stats.cwnd_samples.append((now, self.cwnd))
        self._check_completion()
        # Send before arming: if this ACK emptied the pipe, the deadline must
        # cover the burst _try_send is about to transmit, not be cleared for
        # an idle window (which would leave lost fresh data with no timer).
        self._try_send()
        self._arm_rto()

    def _extract_ecn_feedback(self, packet: Packet) -> tuple[int, bool]:
        """Return (newly CE-marked bytes, any congestion signal seen)."""
        if self.uses_accecn and packet.accecn is not None:
            accecn = packet.accecn
            delta_bytes = accecn.ce_bytes - self._last_accecn_ce_bytes
            delta_packets = accecn.ce_packets - self._last_accecn_ce_packets
            if delta_bytes > 0:
                self._last_accecn_ce_bytes = accecn.ce_bytes
            if delta_packets > 0:
                self._last_accecn_ce_packets = accecn.ce_packets
            return max(0, delta_bytes), delta_packets > 0 or delta_bytes > 0
        if packet.ece:
            return self.mss, True
        return 0, False

    def _hystart_check(self, rtt_sample: float) -> None:
        """Track the RTT floor and the current round's minimum for HyStart."""
        if self._min_rtt_seen is None or rtt_sample < self._min_rtt_seen:
            self._min_rtt_seen = rtt_sample
        if self._round_min_rtt is None or rtt_sample < self._round_min_rtt:
            self._round_min_rtt = rtt_sample

    def _hystart_round_check(self) -> None:
        """HyStart: exit slow start once a whole round ran above the RTT floor.

        The per-round *minimum* is compared against the flow's floor so that
        isolated HARQ retransmissions or uplink-grant jitter (common on a 5G
        link even without queueing) do not trigger a premature exit.
        """
        if (not self.ENABLE_HYSTART or self.cwnd >= self.ssthresh
                or self._round_min_rtt is None or self._min_rtt_seen is None):
            self._round_min_rtt = None
            return
        threshold = self._min_rtt_seen + max(self.HYSTART_MIN_DELAY_INCREASE,
                                             self._min_rtt_seen / 8.0)
        if self._round_min_rtt > threshold:
            self.ssthresh = self.cwnd
        self._round_min_rtt = None

    def _count_dupack(self, packet: Packet) -> None:
        if packet.ack_seq != self._last_ack_seq:
            self._last_ack_seq = packet.ack_seq
            self._dupacks = 1
            return
        self._dupacks += 1
        if self._dupacks == self.DUPACK_THRESHOLD and not self._in_fast_recovery:
            self._fast_retransmit()

    def _fast_retransmit(self) -> None:
        self._in_fast_recovery = True
        self._recovery_until = self.snd_nxt
        self.stats.loss_events += 1
        self.on_loss()
        payload = self.mss
        remaining = (self.flow_bytes - self.snd_una
                     if self.flow_bytes is not None else None)
        if remaining is not None:
            payload = min(payload, max(1, remaining))
        self._send_segment(self.snd_una, payload, retransmission=True)

    # ------------------------------------------------------------------ #
    # Retransmission timeout
    # ------------------------------------------------------------------ #
    def _update_rto(self, rtt_sample: float) -> None:
        if self.srtt is None:
            self.srtt = rtt_sample
            self.rttvar = rtt_sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt_sample)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt_sample
        self.rto = max(ms(200), self.srtt + 4 * self.rttvar)

    def _arm_rto(self) -> None:
        """Refresh the retransmission deadline.

        Called on every ACK, so in the common case it must not touch the
        event heap: the deadline is just a float, and a single standing timer
        event checks it when it fires, rescheduling itself if ACKs have
        pushed the deadline out in the meantime (the classic lazy-timer
        pattern).  Only when the deadline moves *earlier* than the standing
        event's horizon (the RTO estimate shrank, e.g. the first real RTT
        sample or recovery after exponential backoff) is the event
        rescheduled, so the timeout always fires at the true deadline.
        """
        if not self.running or self.inflight <= 0:
            self._rto_deadline = None
            return
        rto = self.rto
        if rto < 0.2:
            rto = 0.2
        deadline = self._sim.now + rto
        self._rto_deadline = deadline
        if self._rto_event is None:
            self._rto_event = self._sim.schedule(rto, self._rto_timer)
            self._rto_event_time = deadline
        elif deadline < self._rto_event_time:
            self._rto_event.cancel()
            self._rto_event = self._sim.schedule(rto, self._rto_timer)
            self._rto_event_time = deadline

    def _rto_timer(self) -> None:
        self._rto_event = None
        deadline = self._rto_deadline
        if deadline is None or not self.running or self.inflight <= 0:
            return
        now = self._sim.now
        if now < deadline:
            # ACKs moved the deadline since this event was scheduled.
            self._rto_event = self._sim.schedule(deadline - now,
                                                 self._rto_timer)
            self._rto_event_time = deadline
            return
        self._on_rto()

    def _on_rto(self) -> None:
        if not self.running or self.inflight <= 0:
            return
        self.stats.timeouts += 1
        self.ssthresh = max(self.inflight / 2.0,
                            self.MIN_CWND_SEGMENTS * self.mss)
        self.cwnd = float(self.mss)
        self.snd_nxt = self.snd_una
        self._in_fast_recovery = False
        self.on_timeout()
        self.rto = min(self.rto * 2, 10.0)
        self._send_segment(self.snd_una,
                           min(self.mss, self._bytes_remaining() or self.mss),
                           retransmission=True)
        self.snd_nxt = self.snd_una + min(
            self.mss, self._bytes_remaining() or self.mss)
        self._arm_rto()

    # ------------------------------------------------------------------ #
    # Completion
    # ------------------------------------------------------------------ #
    def _check_completion(self) -> None:
        if (self.flow_bytes is not None
                and self.stats.completion_time is None
                and self.snd_una >= self.flow_bytes):
            self.stats.completion_time = self._sim.now
            self.running = False
            self._rto_deadline = None
            if self._rto_event is not None:
                self._rto_event.cancel()
                self._rto_event = None

    # ------------------------------------------------------------------ #
    # Hooks for algorithm subclasses
    # ------------------------------------------------------------------ #
    def on_ack(self, newly_acked: int, ce_bytes: int, ce_seen: bool,
               rtt_sample: Optional[float]) -> None:
        """Per-ACK window update."""

    def on_round_end(self) -> None:
        """Called once per round-trip (when ``snd_una`` passes the round marker)."""

    def on_loss(self) -> None:
        """Called on a fast-retransmit loss event."""

    def on_timeout(self) -> None:
        """Called on a retransmission timeout (after the generic state reset)."""

    # ------------------------------------------------------------------ #
    # Helpers shared by classic-ECN algorithms
    # ------------------------------------------------------------------ #
    def signal_cwr(self) -> None:
        """Arrange for the next data packet to carry the CWR flag."""
        self._cwr_pending = True


class RateSender(Sender):
    """Paced sender transmitting at an explicit rate (bytes per second)."""

    __slots__ = ("rate", "min_rate", "max_rate", "protocol", "next_seq",
                 "_send_event")

    def __init__(self, sim: Simulator, flow_id: int, five_tuple: FiveTuple,
                 path: PacketSink, mss: int = DEFAULT_MSS,
                 flow_bytes: Optional[int] = None,
                 initial_rate: float = 125_000.0,
                 min_rate: float = 12_500.0,
                 max_rate: float = 12_500_000.0,
                 protocol: str = "udp") -> None:
        super().__init__(sim, flow_id, five_tuple, path, mss, flow_bytes)
        self.rate = initial_rate
        self.min_rate = min_rate
        self.max_rate = max_rate
        self.protocol = protocol
        self.next_seq = 0
        self._send_event: Optional[Event] = None

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self.running = True
        self.stats.start_time = self._sim.now
        self._schedule_next_send(0.0)

    def stop(self) -> None:
        super().stop()
        if self._send_event is not None:
            self._send_event.cancel()
            self._send_event = None

    def set_rate(self, rate: float) -> None:
        """Clamp and apply a new sending rate."""
        self.rate = min(self.max_rate, max(self.min_rate, rate))
        self.stats.rate_samples.append((self._sim.now, self.rate))

    # ------------------------------------------------------------------ #
    def _schedule_next_send(self, delay: float) -> None:
        if not self.running:
            return
        self._send_event = self._sim.schedule(delay, self._send_next)

    def _send_next(self) -> None:
        if not self.running:
            return
        remaining = (None if self.flow_bytes is None
                     else max(0, self.flow_bytes - self.next_seq))
        if remaining is not None and remaining <= 0:
            if self.stats.completion_time is None:
                self.stats.completion_time = self._sim.now
            self.running = False
            return
        payload = self.mss if remaining is None else min(self.mss, remaining)
        packet = make_data_packet(self.flow_id, self.five_tuple, self.next_seq,
                                  payload, self.ect_codepoint, self._sim.now,
                                  protocol=self.protocol)
        self._decorate_packet(packet)
        self.next_seq += payload
        self.stats.sent_packets += 1
        self.stats.sent_bytes += packet.size
        self.path.receive(packet)
        interval = (payload + HEADER_BYTES) / max(self.rate, 1.0)
        self._schedule_next_send(interval)

    def _decorate_packet(self, packet: Packet) -> None:
        """Subclasses may add application payload metadata to data packets."""

    # ------------------------------------------------------------------ #
    def receive(self, packet: Packet) -> None:
        """Rate senders interpret feedback in subclasses."""
