"""TCP Prague: the reference L4S scalable congestion controller.

Prague keeps a DCTCP-style EWMA ``alpha`` of the fraction of bytes marked CE
per round trip and, on rounds that saw any CE feedback, applies one
multiplicative decrease ``cwnd <- cwnd * (1 - alpha / 2)`` while continuing
additive increase on every acknowledgement (paper §2).  The result is the
shallow sawtooth around the marking threshold that L4Span relies on.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import WindowSender
from repro.net.ecn import ECN
from repro.registry import CC_SENDERS


@CC_SENDERS.register("prague", is_l4s=True)
class PragueSender(WindowSender):
    """L4S sender with AccECN feedback and scalable window response."""

    name = "prague"
    ect_codepoint = ECN.ECT1
    uses_accecn = True

    #: EWMA gain for the marking-fraction estimate (DCTCP's g).
    ALPHA_GAIN = 1.0 / 16.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.alpha = 0.0
        self._round_acked_bytes = 0
        self._round_ce_bytes = 0
        self._md_applied_this_round = False

    # ------------------------------------------------------------------ #
    def on_ack(self, newly_acked: int, ce_bytes: int, ce_seen: bool,
               rtt_sample: Optional[float]) -> None:
        self._round_acked_bytes += newly_acked
        self._round_ce_bytes += ce_bytes
        if newly_acked <= 0:
            return
        if self.cwnd < self.ssthresh and not ce_seen:
            # Slow start: grow by the acknowledged bytes.
            self.cwnd += newly_acked
            return
        # Additive increase of one MSS per RTT, resumed immediately after MD.
        self.cwnd += self.mss * newly_acked / self.cwnd

    def on_round_end(self) -> None:
        acked = max(self._round_acked_bytes, 1)
        fraction = min(1.0, self._round_ce_bytes / acked)
        self.alpha = ((1.0 - self.ALPHA_GAIN) * self.alpha
                      + self.ALPHA_GAIN * fraction)
        if self._round_ce_bytes > 0:
            self.stats.congestion_events += 1
            self.ssthresh = max(self.cwnd * (1.0 - self.alpha / 2.0),
                                self.MIN_CWND_SEGMENTS * self.mss)
            self.cwnd = self.ssthresh
        self._round_acked_bytes = 0
        self._round_ce_bytes = 0

    def on_loss(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, self.MIN_CWND_SEGMENTS * self.mss)
        self.cwnd = self.ssthresh

    def on_timeout(self) -> None:
        self.alpha = 1.0
