"""TCP Reno / NewReno: the textbook AIMD classic controller (Appendix B)."""

from __future__ import annotations

from typing import Optional

from repro.cc.base import WindowSender
from repro.net.ecn import ECN
from repro.registry import CC_SENDERS


@CC_SENDERS.register("reno")
class RenoSender(WindowSender):
    """Classic-ECN Reno sender: AI of one MSS per RTT, MD of one half."""

    name = "reno"
    ect_codepoint = ECN.ECT0
    uses_accecn = False

    BETA = 0.5
    ENABLE_HYSTART = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._ce_reaction_until = 0.0

    def on_ack(self, newly_acked: int, ce_bytes: int, ce_seen: bool,
               rtt_sample: Optional[float]) -> None:
        now = self._sim.now
        if ce_seen and now >= self._ce_reaction_until:
            self._congestion_response()
            return
        if newly_acked <= 0:
            return
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked
        else:
            self.cwnd += self.mss * newly_acked / self.cwnd

    def _congestion_response(self) -> None:
        self.stats.congestion_events += 1
        self.cwnd = max(self.cwnd * self.BETA,
                        self.MIN_CWND_SEGMENTS * self.mss)
        self.ssthresh = self.cwnd
        self.signal_cwr()
        rtt = self.srtt if self.srtt is not None else 0.05
        self._ce_reaction_until = self._sim.now + rtt

    def on_loss(self) -> None:
        self.stats.congestion_events += 1
        self.cwnd = max(self.cwnd * self.BETA,
                        self.MIN_CWND_SEGMENTS * self.mss)
        self.ssthresh = self.cwnd
