"""The L4Span layer: RAN-aware ECN marking in the CU-UP (paper §4).

``L4SpanLayer`` implements the :class:`repro.ran.marker.RanMarker` protocol
and is attached to a :class:`repro.ran.gnb.GNodeB`.  It reacts to the three
events of the paper's pseudocode (Appendix A):

* **downlink datagram** -- classify the flow by its ECN codepoint, record the
  packet in the per-bearer profile table, and make a marking decision using
  the class-specific probability (Eq. 1 / Eq. 2 / the coupled rule).  For UDP
  flows (or when short-circuiting is disabled) the mark is applied to the
  packet's IP ECN field; for TCP flows with short-circuiting the mark is only
  *book-kept* so it can be injected into the next uplink ACK.
* **RAN feedback** -- update the profile table from the F1-U delivery-status
  report, refresh the egress-rate estimate and the sojourn prediction.
* **uplink packet** -- for TCP ACKs, rewrite the AccECN counters or the
  ECE flag from the book-kept marks, short-circuiting the radio leg of the
  feedback loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import L4SpanConfig
from repro.core.egress import EgressRateEstimator
from repro.core.flowstate import FlowRecord
from repro.core.marking import (classic_mark_probability,
                                coupled_l4s_probability, l4s_mark_probability)
from repro.core.profile_table import DrbProfile
from repro.core.sojourn import SojournPredictor, SojournPrediction
from repro.net.addresses import FiveTuple
from repro.net.checksum import (mark_ce_with_checksum, tcp_rewrite_words,
                                update_checksums_after_ack_rewrite)
from repro.net.ecn import ECN, FlowClass
from repro.net.packet import Packet
from repro.ran.f1u import DeliveryStatus
from repro.ran.identifiers import DrbId, DrbKey, UeId
from repro.registry import MARKERS
from repro.sim.engine import Simulator
from repro.sim.randomness import chance


@dataclass
class DrbState:
    """Per-bearer state kept by the layer."""

    key: DrbKey
    profile: DrbProfile
    estimator: EgressRateEstimator
    prediction: SojournPrediction = field(
        default_factory=lambda: SojournPrediction(0.0, 0, 0.0, 0.0))
    classes_seen: set = field(default_factory=set)
    feedback_count: int = 0
    marks_l4s: int = 0
    marks_classic: int = 0
    #: Cached generator of the bearer's marking stream -- the per-packet
    #: marking decision must not rebuild/hash the stream name every time.
    mark_rng: object = None

    @property
    def is_shared(self) -> bool:
        """True when both L4S and classic flows map onto this bearer."""
        return (FlowClass.L4S in self.classes_seen
                and FlowClass.CLASSIC in self.classes_seen)


class L4SpanLayer:
    """The in-RAN congestion-signalling layer."""

    name = "l4span"

    def __init__(self, sim: Simulator, config: Optional[L4SpanConfig] = None,
                 mss: int = 1440) -> None:
        self._sim = sim
        self.config = config if config is not None else L4SpanConfig()
        self.mss = mss
        self.predictor = SojournPredictor()
        self._drbs: dict[DrbKey, DrbState] = {}
        self._flows: dict[FiveTuple, FlowRecord] = {}
        self._last_purge = 0.0
        # Attach tag per UE ("#a1" after its first handover): qualifies the
        # marking stream of bearers created after a UE arrives here, so the
        # draw sequence matches between single-loop and sharded runs.
        self._ue_stream_tags: dict[UeId, str] = {}
        # Aggregate statistics.
        self.downlink_packets = 0
        self.uplink_packets = 0
        self.feedback_messages = 0
        self.marked_packets = 0
        self.shortcircuited_acks = 0
        # Aggregate background-population arrivals/service observed through
        # the on_background_aggregate hook (dense-cell scenarios).
        self.background_arrival_bytes = 0.0
        self.background_served_bytes = 0.0
        # Processing-time samples (seconds) per event type, for Fig. 21.
        self.processing_times: dict[str, list[float]] = {
            "downlink": [], "uplink": [], "feedback": []}

    # ------------------------------------------------------------------ #
    # State accessors
    # ------------------------------------------------------------------ #
    def set_ue_stream_tag(self, ue_id: UeId, tag: str) -> None:
        """Qualify future marking streams of ``ue_id`` (handover arrival)."""
        self._ue_stream_tags[ue_id] = tag

    def drb_state(self, ue_id: UeId, drb_id: DrbId) -> DrbState:
        """Get or create the per-bearer state."""
        key = DrbKey(ue_id, drb_id)
        state = self._drbs.get(key)
        if state is None:
            tag = self._ue_stream_tags.get(ue_id, "")
            state = DrbState(key=key,
                             profile=DrbProfile(self.config.profile_horizon),
                             estimator=EgressRateEstimator(
                                 self.config.estimation_window),
                             mark_rng=self._sim.random.stream(
                                 f"l4span-mark-{key}{tag}"))
            self._drbs[key] = state
        return state

    def flow_record(self, five_tuple: FiveTuple) -> Optional[FlowRecord]:
        """Look up the state of a flow by its downlink five-tuple."""
        return self._flows.get(five_tuple)

    @property
    def flows(self) -> dict[FiveTuple, FlowRecord]:
        """All flows the layer has observed."""
        return self._flows

    @property
    def drb_states(self) -> dict[DrbKey, DrbState]:
        """All per-bearer states."""
        return self._drbs

    # ------------------------------------------------------------------ #
    # Event 1: downlink datagram from the 5G core
    # ------------------------------------------------------------------ #
    def on_downlink_packet(self, packet: Packet, ue_id: UeId, drb_id: DrbId,
                           now: float) -> None:
        start = time.perf_counter() if self.config.measure_processing else 0.0
        self.downlink_packets += 1
        state = self.drb_state(ue_id, drb_id)
        flow = self._get_or_create_flow(packet, ue_id, drb_id, now)
        state.classes_seen.add(flow.flow_class)
        if packet.cwr and not flow.uses_accecn:
            flow.ece_latched = False
        state.profile.add_packet(packet.size, now)
        flow.record_downlink(packet.size, now)
        self._maybe_mark(packet, state, flow, now)
        if now - self._last_purge > self.config.profile_horizon:
            self._last_purge = now
            for drb in self._drbs.values():
                drb.profile.purge(now)
        if self.config.measure_processing:
            self.processing_times["downlink"].append(
                time.perf_counter() - start)

    def _get_or_create_flow(self, packet: Packet, ue_id: UeId, drb_id: DrbId,
                            now: float) -> FlowRecord:
        flow = self._flows.get(packet.five_tuple)
        if flow is None:
            flow = FlowRecord(five_tuple=packet.five_tuple, ue_id=ue_id,
                              drb_id=drb_id, flow_class=packet.flow_class,
                              protocol=packet.protocol,
                              uses_accecn=packet.protocol == "tcp"
                              and packet.flow_class == FlowClass.L4S)
            self._flows[packet.five_tuple] = flow
        return flow

    # ------------------------------------------------------------------ #
    # Marking decision
    # ------------------------------------------------------------------ #
    def mark_probability(self, state: DrbState, flow: FlowRecord) -> float:
        """The current marking probability for a packet of ``flow`` on ``state``.

        Following the paper's event structure (Appendix A), the bearer's
        marking state is derived from the queue snapshot taken at the last
        F1-U feedback -- i.e. right after the RLC drained what it could --
        rather than from the instantaneous queue at packet arrival, so short
        ACK-clocked bursts do not inflate the predicted sojourn time.
        """
        prediction = state.prediction
        queued = prediction.queued_bytes
        rate = prediction.rate
        error = prediction.error_std
        if flow.flow_class == FlowClass.NON_ECN and not self.config.drop_non_ecn:
            return 0.0
        predicted_sojourn = prediction.sojourn if rate > 0 else 0.0
        if flow.flow_class == FlowClass.L4S:
            if state.is_shared:
                p_classic = self._classic_probability(state, flow,
                                                      predicted_sojourn, rate)
                return coupled_l4s_probability(p_classic,
                                               self.config.classic_beta)
            if rate <= 0:
                return 0.0
            return l4s_mark_probability(queued, rate, error,
                                        self.config.sojourn_threshold)
        return self._classic_probability(state, flow, predicted_sojourn, rate)

    def _classic_probability(self, state: DrbState, flow: FlowRecord,
                             predicted_sojourn: float, rate: float) -> float:
        if rate <= 0:
            return 0.0
        # Do not press the brake while the bearer's buffer is essentially
        # empty: the design goal for classic flows is to prevent bufferbloat
        # *while maintaining an adequately filled buffer* (§4.2.2); marking a
        # starved flow would only entrench the under-utilisation, because the
        # measured egress rate of an idle bearer is its (low) arrival rate.
        if state.prediction.queued_bytes < 2 * self.mss:
            return 0.0
        if flow.initial_rtt is not None:
            rtt = flow.initial_rtt + predicted_sojourn
        elif flow.protocol != "tcp":
            rtt = 2.0 * max(predicted_sojourn, self.config.sojourn_threshold)
        else:
            # TCP flow whose handshake RTT has not been observed yet: wait for
            # the first uplink ACK rather than guessing a too-small RTT.
            return 0.0
        return classic_mark_probability(self.mss, rtt, rate,
                                        self.config.classic_beta)

    def _maybe_mark(self, packet: Packet, state: DrbState, flow: FlowRecord,
                    now: float) -> None:
        probability = self.mark_probability(state, flow)
        if probability <= 0 or not chance(state.mark_rng, probability):
            flow.record_unmarked(packet.size)
            return
        self.marked_packets += 1
        if flow.flow_class == FlowClass.L4S:
            state.marks_l4s += 1
        else:
            state.marks_classic += 1
        flow.record_mark(packet.size,
                         ecn_capable_l4s=flow.flow_class == FlowClass.L4S)
        apply_to_downlink = (flow.protocol != "tcp"
                             or not self.config.enable_shortcircuit)
        if apply_to_downlink:
            if packet.ecn == ECN.NOT_ECT and self.config.drop_non_ecn:
                packet.payload_info["l4span_drop"] = True
            else:
                mark_ce_with_checksum(packet, by=self.name)

    # ------------------------------------------------------------------ #
    # Event 2: F1-U delivery-status feedback
    # ------------------------------------------------------------------ #
    def on_ran_feedback(self, status: DeliveryStatus, now: float) -> None:
        start = time.perf_counter() if self.config.measure_processing else 0.0
        self.feedback_messages += 1
        state = self.drb_state(status.ue_id, status.drb_id)
        state.feedback_count += 1
        newly = state.profile.on_feedback(status.highest_txed_sn,
                                          status.highest_delivered_sn,
                                          status.timestamp)
        estimate = state.estimator.observe_transmissions(newly)
        state.prediction = self.predictor.predict(state.profile.queued_bytes,
                                                  estimate)
        if self.config.measure_processing:
            self.processing_times["feedback"].append(
                time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # Event 3: uplink packet (feedback short-circuiting)
    # ------------------------------------------------------------------ #
    def on_uplink_packet(self, packet: Packet, now: float) -> None:
        start = time.perf_counter() if self.config.measure_processing else 0.0
        self.uplink_packets += 1
        if packet.is_ack and packet.protocol == "tcp":
            downlink_tuple = packet.five_tuple.reversed()
            flow = self._flows.get(downlink_tuple)
            if flow is not None:
                flow.observe_uplink(now)
                if self.config.enable_shortcircuit:
                    self._shortcircuit_ack(packet, flow)
        if self.config.measure_processing:
            self.processing_times["uplink"].append(
                time.perf_counter() - start)

    def _shortcircuit_ack(self, packet: Packet, flow: FlowRecord) -> None:
        # The pre-rewrite words are captured only on the branches that are
        # about to mutate, so ACKs that need no rewrite pay nothing here.
        old_words = None
        if flow.uses_accecn and packet.accecn is not None:
            old_words = tcp_rewrite_words(packet)
            packet.accecn.ce_packets = flow.tentative.ce_packets
            packet.accecn.ce_bytes = flow.tentative.ce_bytes
            packet.accecn.ect1_bytes = flow.tentative.ect1_bytes
            packet.accecn.ect0_bytes = flow.tentative.ect0_bytes
        elif not flow.uses_accecn:
            if flow.ece_latched and not packet.ece:
                old_words = tcp_rewrite_words(packet)
                packet.ece = True
        if old_words is not None:
            # RFC 1624 incremental update from the words just rewritten; the
            # IP header is untouched so its checksum is never recomputed.
            update_checksums_after_ack_rewrite(packet, old_words)
            flow.shortcircuited_acks += 1
            self.shortcircuited_acks += 1

    # ------------------------------------------------------------------ #
    # Aggregate background load (dense-cell population kernel)
    # ------------------------------------------------------------------ #
    def on_background_aggregate(self, arrival_bytes: float,
                                served_bytes: float, backlog_bytes: float,
                                now: float) -> None:
        """Observe one batched step of the cell's background population.

        The population's contention effect reaches the marker through the
        shared MAC (reduced foreground service shifts the measured egress
        rates and sojourn predictions the marking laws react to); this hook
        only book-keeps the aggregate arrival process for cell-level
        telemetry.
        """
        self.background_arrival_bytes += arrival_bytes
        self.background_served_bytes += served_bytes

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        """Aggregate counters, useful in experiment reports and tests."""
        return {
            "downlink_packets": self.downlink_packets,
            "uplink_packets": self.uplink_packets,
            "feedback_messages": self.feedback_messages,
            "marked_packets": self.marked_packets,
            "shortcircuited_acks": self.shortcircuited_acks,
            "flows": len(self._flows),
            "drbs": len(self._drbs),
            "background_arrival_bytes": self.background_arrival_bytes,
            "background_served_bytes": self.background_served_bytes,
        }


@MARKERS.register("l4span", is_l4span=True)
def _build_l4span_layer(sim: Simulator,
                        l4span_config: Optional[L4SpanConfig] = None
                        ) -> L4SpanLayer:
    """The paper's marking layer, honouring the scenario's L4Span config."""
    return L4SpanLayer(sim, config=l4span_config)
