"""The three marking probabilities of L4Span (paper §4.2).

* **L4S-only DRB** (Eq. 1): mark with the probability that the *actual* egress
  rate fails the sojourn-time target, modelling the rate-estimation error as a
  zero-mean Gaussian whose width adapts to the channel volatility.  With zero
  error the rule collapses to DualPi2's step threshold.
* **Classic-only DRB** (Eq. 2): mark with the probability that makes the
  steady-state TCP throughput model match the bearer's egress rate, so the
  classic sender neither bloats the buffer nor starves it.
* **Shared DRB** (§4.2.3): keep the classic probability and couple the L4S
  probability as ``p_L4S = alpha * sqrt(p_classic)`` with ``alpha`` chosen so
  both flows obtain the same throughput at equal RTT (``alpha = 2 / K``).
"""

from __future__ import annotations

import math


def _standard_normal_cdf(x: float) -> float:
    """CDF of the standard normal distribution."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def l4s_mark_probability(queued_bytes: float, rate_estimate: float,
                         rate_error_std: float,
                         sojourn_threshold: float) -> float:
    """Eq. 1: probability of marking an L4S packet.

    Args:
        queued_bytes: bytes standing in the bearer's RLC queue (N_queue).
        rate_estimate: smoothed egress-rate estimate r_hat (bytes/s).
        rate_error_std: standard deviation of the estimate e_hat (bytes/s).
        sojourn_threshold: the target sojourn time tau_s (seconds).

    Returns:
        The marking probability in [0, 1].  With a vanishing error estimate
        the rule degenerates to a step at ``predicted sojourn == tau_s``
        (DualPi2's behaviour); a larger error softens the edge so a volatile
        channel is not over- or under-marked.
    """
    if queued_bytes <= 0:
        return 0.0
    if sojourn_threshold <= 0:
        return 1.0
    required_rate = queued_bytes / sojourn_threshold
    if rate_estimate <= 0:
        return 1.0
    if rate_error_std <= 0:
        return 1.0 if required_rate >= rate_estimate else 0.0
    return _standard_normal_cdf((required_rate - rate_estimate) / rate_error_std)


def tcp_model_constant(beta: float = 0.5) -> float:
    """The constant K of the classic TCP throughput model.

    ``K = (1 + beta) / 2 * sqrt(2 / (1 - beta^2))`` which evaluates to the
    familiar ``sqrt(3/2) ~= 1.22`` for Reno's ``beta = 0.5``.
    """
    if not 0.0 < beta < 1.0:
        raise ValueError("beta must be in (0, 1)")
    return (1.0 + beta) / 2.0 * math.sqrt(2.0 / (1.0 - beta * beta))


def classic_mark_probability(mss: float, rtt: float, rate_estimate: float,
                             beta: float = 0.5) -> float:
    """Eq. 2: marking probability that rate-matches a classic TCP sender.

    Args:
        mss: maximum segment size in bytes.
        rtt: the RTT estimate (initial handshake RTT plus predicted sojourn).
        rate_estimate: predicted bearer egress rate (bytes/s).
        beta: multiplicative-decrease factor of the classic sender.
    """
    if rate_estimate <= 0 or rtt <= 0:
        return 0.0
    k = tcp_model_constant(beta)
    probability = (mss * k / (rtt * rate_estimate)) ** 2
    return min(1.0, max(0.0, probability))


def coupled_l4s_probability(p_classic: float, beta: float = 0.5) -> float:
    """§4.2.3: the L4S probability coupled to the classic one on a shared DRB.

    Balancing ``r_L4S = 2 MSS / (RTT p_L4S)`` against
    ``r_classic = MSS K / (RTT sqrt(p_classic))`` at equal RTT gives
    ``p_L4S = (2 / K) * sqrt(p_classic)``.
    """
    if p_classic <= 0:
        return 0.0
    alpha = 2.0 / tcp_model_constant(beta)
    return min(1.0, alpha * math.sqrt(p_classic))
