"""L4Span: the paper's primary contribution, plus its in-RAN baselines.

* :class:`~repro.core.l4span.L4SpanLayer` -- the marking layer attached to
  the CU-UP: packet profile table, egress-rate / sojourn-time prediction,
  class-aware ECN marking and uplink feedback short-circuiting.
* :class:`~repro.core.tcran.TcRanMarker` -- the TC-RAN baseline (CoDel /
  ECN-CoDel with fixed thresholds inside the RAN).
* :class:`~repro.core.ran_dualpi2.RanDualPi2Marker` -- the "DualPi2 dropped
  into the RAN" baseline of §6.3.1 (hard sojourn threshold, PI² for classic).
* :func:`~repro.core.factory.make_marker` -- build any of the above by name.
"""

from repro.core.config import L4SpanConfig
from repro.core.profile_table import DrbProfile, ProfileEntry
from repro.core.egress import EgressRateEstimator, RateEstimate
from repro.core.sojourn import SojournPredictor
from repro.core.marking import (classic_mark_probability, coupled_l4s_probability,
                                l4s_mark_probability, tcp_model_constant)
from repro.core.flowstate import FlowRecord
from repro.core.l4span import L4SpanLayer
from repro.core.tcran import TcRanMarker
from repro.core.ran_dualpi2 import RanDualPi2Marker
from repro.core.factory import make_marker

__all__ = [
    "L4SpanConfig",
    "DrbProfile",
    "ProfileEntry",
    "EgressRateEstimator",
    "RateEstimate",
    "SojournPredictor",
    "l4s_mark_probability",
    "classic_mark_probability",
    "coupled_l4s_probability",
    "tcp_model_constant",
    "FlowRecord",
    "L4SpanLayer",
    "TcRanMarker",
    "RanDualPi2Marker",
    "make_marker",
]
