"""TC-RAN baseline: CoDel / ECN-CoDel inside the RAN with fixed thresholds.

TC-RAN (Irazabal & Nikaein) places a Linux-style qdisc between the SDAP and
PDCP layers and marks or drops packets when the measured sojourn time exceeds
a fixed CoDel target.  The reproduction drives the same CoDel control law with
the sojourn times *measured* from F1-U feedback (transmit minus ingress time)
and marks downlink packets directly -- no egress-rate adaptation and no
feedback short-circuiting, which is exactly what the paper's comparison
(Fig. 12) exercises: similar delay for Prague but lower utilisation, and
under-utilisation for CUBIC because of the fixed 5 ms target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.profile_table import DrbProfile
from repro.net.checksum import mark_ce_with_checksum
from repro.net.ecn import ECN
from repro.net.packet import Packet
from repro.ran.f1u import DeliveryStatus
from repro.ran.identifiers import DrbId, DrbKey, UeId
from repro.registry import MARKERS
from repro.sim.engine import Simulator
from repro.units import ms


@dataclass
class _CodelDrbState:
    """CoDel control-law state for one bearer."""

    profile: DrbProfile = field(default_factory=DrbProfile)
    recent_sojourn: float = 0.0
    first_above_time: Optional[float] = None
    marking: bool = False
    count: int = 0
    next_mark_time: float = 0.0
    marks: int = 0


class TcRanMarker:
    """CoDel-with-marking between SDAP and PDCP."""

    name = "tcran"

    def __init__(self, sim: Simulator, target: float = ms(5),
                 interval: float = ms(100)) -> None:
        self._sim = sim
        self.target = target
        self.interval = interval
        self._drbs: dict[DrbKey, _CodelDrbState] = {}
        self.downlink_packets = 0
        self.uplink_packets = 0
        self.feedback_messages = 0
        self.marked_packets = 0

    # ------------------------------------------------------------------ #
    def _state(self, ue_id: UeId, drb_id: DrbId) -> _CodelDrbState:
        key = DrbKey(ue_id, drb_id)
        state = self._drbs.get(key)
        if state is None:
            state = _CodelDrbState()
            self._drbs[key] = state
        return state

    # ------------------------------------------------------------------ #
    def on_downlink_packet(self, packet: Packet, ue_id: UeId, drb_id: DrbId,
                           now: float) -> None:
        self.downlink_packets += 1
        state = self._state(ue_id, drb_id)
        state.profile.add_packet(packet.size, now)
        if not state.marking:
            return
        if now < state.next_mark_time:
            return
        if packet.ecn == ECN.NOT_ECT:
            return
        mark_ce_with_checksum(packet, by=self.name)
        state.marks += 1
        self.marked_packets += 1
        state.count += 1
        state.next_mark_time = now + self.interval / math.sqrt(max(1, state.count))

    def on_ran_feedback(self, status: DeliveryStatus, now: float) -> None:
        self.feedback_messages += 1
        state = self._state(status.ue_id, status.drb_id)
        newly = state.profile.on_feedback(status.highest_txed_sn,
                                          status.highest_delivered_sn,
                                          status.timestamp)
        for entry in newly:
            delay = entry.queueing_delay()
            if delay is not None:
                state.recent_sojourn = delay
        state.profile.purge(now)
        self._update_control_law(state, now)

    def _update_control_law(self, state: _CodelDrbState, now: float) -> None:
        if state.recent_sojourn < self.target:
            state.first_above_time = None
            if state.marking:
                state.marking = False
            return
        if state.first_above_time is None:
            state.first_above_time = now + self.interval
            return
        if now >= state.first_above_time and not state.marking:
            state.marking = True
            state.count = max(1, state.count - 2) if state.count > 2 else 1
            state.next_mark_time = now

    def on_uplink_packet(self, packet: Packet, now: float) -> None:
        self.uplink_packets += 1


@MARKERS.register("tcran")
def _build_tcran_marker(sim: Simulator, l4span_config=None) -> TcRanMarker:
    """TC-RAN: CoDel-style hard-threshold marking at the CU."""
    return TcRanMarker(sim)
