"""Build in-RAN markers by name, the way experiment configs select them."""

from __future__ import annotations

from typing import Optional

from repro.core.config import L4SpanConfig
from repro.core.l4span import L4SpanLayer
from repro.core.ran_dualpi2 import RanDualPi2Marker
from repro.core.tcran import TcRanMarker
from repro.ran.marker import NoopMarker, RanMarker
from repro.sim.engine import Simulator
from repro.units import ms

#: Marker names understood by :func:`make_marker`.
MARKER_NAMES = ("none", "l4span", "tcran", "ran_dualpi2", "ran_dualpi2_10ms")


def make_marker(name: str, sim: Simulator,
                l4span_config: Optional[L4SpanConfig] = None) -> RanMarker:
    """Instantiate a marker: "none", "l4span", "tcran" or "ran_dualpi2[_10ms]"."""
    key = (name or "none").lower()
    if key in ("none", "off", "baseline"):
        return NoopMarker()
    if key == "l4span":
        return L4SpanLayer(sim, config=l4span_config)
    if key == "tcran":
        return TcRanMarker(sim)
    if key == "ran_dualpi2":
        return RanDualPi2Marker(sim, l4s_threshold=ms(1))
    if key == "ran_dualpi2_10ms":
        return RanDualPi2Marker(sim, l4s_threshold=ms(10))
    raise KeyError(f"unknown marker {name!r}; choose from {MARKER_NAMES}")
