"""Build in-RAN markers by name, the way experiment configs select them.

The marker builders themselves are registered in
:data:`repro.registry.MARKERS`, each next to its implementation
(``repro.ran.marker`` for the no-op baseline, ``repro.core.l4span`` /
``tcran`` / ``ran_dualpi2`` for the real strategies).  This module imports
them all so registration has happened, and keeps the historical
``make_marker`` entry point.
"""

from __future__ import annotations

from typing import Optional

# Importing the marker modules triggers their registration.
import repro.core.l4span       # noqa: F401
import repro.core.ran_dualpi2  # noqa: F401
import repro.core.tcran        # noqa: F401
import repro.ran.marker        # noqa: F401
from repro.core.config import L4SpanConfig
from repro.ran.marker import RanMarker
from repro.registry import MARKERS
from repro.sim.engine import Simulator


def marker_names() -> list[str]:
    """Registered marker names (CLI ``choices=``, spec validation)."""
    return MARKERS.names()


#: Marker names understood by :func:`make_marker` (kept for compatibility).
MARKER_NAMES = tuple(MARKERS.names())


def make_marker(name: str, sim: Simulator,
                l4span_config: Optional[L4SpanConfig] = None) -> RanMarker:
    """Instantiate the marker registered under ``name`` ("none" when empty)."""
    builder = MARKERS.get(name or "none")
    return builder(sim, l4span_config=l4span_config)
