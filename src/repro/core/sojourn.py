"""Sojourn-time prediction for the standing RLC queue (paper Eq. 5).

Given the smoothed egress-rate estimate and the bytes currently standing in
the queue, the predicted sojourn time of a packet entering now is simply
``N_queue / r_hat``.  The module also provides the cost model of estimation
errors discussed around Fig. 6: the extra RTT caused by over-estimating the
egress rate and the throughput lost by under-estimating it, both of which the
error-aware marking rule is designed to balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.egress import RateEstimate


@dataclass(frozen=True)
class SojournPrediction:
    """A sojourn-time prediction together with the inputs that produced it."""

    sojourn: float
    queued_bytes: int
    rate: float
    error_std: float

    @property
    def is_confident(self) -> bool:
        """True when the rate estimate had little variance."""
        return self.rate > 0 and self.error_std < 0.1 * self.rate


class SojournPredictor:
    """Turns (queued bytes, rate estimate) into a sojourn-time prediction."""

    #: Sojourn reported when the rate estimate is still zero but data is queued.
    UNKNOWN_RATE_SOJOURN = 1.0

    def predict(self, queued_bytes: int,
                estimate: Optional[RateEstimate]) -> SojournPrediction:
        """Predict the sojourn time of the current standing queue."""
        if queued_bytes <= 0:
            rate = estimate.smoothed_rate if estimate is not None else 0.0
            err = estimate.error_std if estimate is not None else 0.0
            return SojournPrediction(0.0, 0, rate, err)
        if estimate is None or estimate.smoothed_rate <= 0:
            return SojournPrediction(self.UNKNOWN_RATE_SOJOURN, queued_bytes,
                                     0.0, 0.0)
        sojourn = queued_bytes / estimate.smoothed_rate
        return SojournPrediction(sojourn, queued_bytes,
                                 estimate.smoothed_rate, estimate.error_std)


def rtt_cost_of_overestimate(rt_prop: float, true_rate: float,
                             estimated_rate: float) -> float:
    """Extra RTT incurred when the egress rate is over-estimated (Fig. 6).

    ``RT_p * (r_hat - r_e) / r_e`` for ``r_hat > r_e``, zero otherwise.
    """
    if true_rate <= 0 or estimated_rate <= true_rate:
        return 0.0
    return rt_prop * (estimated_rate - true_rate) / true_rate


def throughput_cost_of_underestimate(rt_prop: float, sojourn_target: float,
                                     true_rate: float,
                                     estimated_rate: float) -> float:
    """Throughput lost when the egress rate is under-estimated (Fig. 6).

    ``(RT_p + tau_s) * (r_e - r_hat) / RT_p`` for ``r_hat < r_e``, zero
    otherwise.  Units: bytes per second.
    """
    if rt_prop <= 0 or estimated_rate >= true_rate:
        return 0.0
    return (rt_prop + sojourn_target) * (true_rate - estimated_rate) / rt_prop
