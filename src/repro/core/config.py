"""Configuration of the L4Span layer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import ms


@dataclass
class L4SpanConfig:
    """Tunable parameters of :class:`~repro.core.l4span.L4SpanLayer`.

    Attributes:
        sojourn_threshold: the queuing-delay target tau_s for L4S flows.  The
            paper selects 10 ms (Fig. 19) because the 5G MAC needs an
            adequately filled buffer for resource scheduling.
        coherence_time: the pre-set channel coherence time (24.9 ms, measured
            at 3.5 GHz and 70 km/h by Wang et al.); the estimation window is
            half of it.
        enable_shortcircuit: rewrite uplink TCP ACK feedback at the gNB
            instead of waiting for the marked packet to cross the radio link.
        classic_beta: multiplicative-decrease factor assumed by the classic
            throughput model (0.5 for Reno; CUBIC's 0.7 gives a slightly
            different constant K).
        mark_udp_downlink: mark the IP ECN field of UDP/QUIC packets
            (the fallback when feedback cannot be short-circuited).
        drop_non_ecn: emulate dropping for Not-ECT flows instead of marking
            (disabled by default; the evaluation uses ECN-capable senders).
        measure_processing: record wall-clock processing time of each handler
            invocation (used by the Fig. 21 / Table 1 harnesses).
        profile_horizon: seconds of completed profile-table entries retained
            before purging, bounding memory use.
    """

    sojourn_threshold: float = ms(10)
    coherence_time: float = ms(24.9)
    enable_shortcircuit: bool = True
    classic_beta: float = 0.5
    mark_udp_downlink: bool = True
    drop_non_ecn: bool = False
    measure_processing: bool = False
    profile_horizon: float = 2.0

    @property
    def estimation_window(self) -> float:
        """The egress-rate estimation window: half the coherence time."""
        return self.coherence_time / 2.0
