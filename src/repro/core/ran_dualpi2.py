"""The "DualPi2 in the RAN" baseline of the marking-behaviour microbenchmark.

Section 6.3.1 re-implements the wired DualPi2 strategy at the same place
L4Span sits, to show that a hard sojourn-time threshold (1 ms or 10 ms) on the
*measured* queue delay cannot track a volatile wireless egress rate and causes
severe under-utilisation.  This marker reproduces that baseline:

* L4S packets are marked whenever the measured standing-queue sojourn exceeds
  the threshold (DualPi2's L-queue step), plus the coupled probability;
* classic packets are marked with ``p' ** 2`` where ``p'`` is a PI controller
  tracking the measured sojourn against the classic 15 ms target.

Marking is applied to downlink packets (no short-circuiting, no error-aware
softening), exactly like a wired DualPi2 dropped into the CU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aqm.dualpi2 import DualPi2Core
from repro.core.profile_table import DrbProfile
from repro.net.checksum import mark_ce_with_checksum
from repro.net.ecn import ECN, FlowClass
from repro.net.packet import Packet
from repro.ran.f1u import DeliveryStatus
from repro.ran.identifiers import DrbId, DrbKey, UeId
from repro.registry import MARKERS
from repro.sim.engine import Simulator
from repro.sim.randomness import chance
from repro.units import ms


@dataclass
class _DualPi2DrbState:
    """Per-bearer state of the in-RAN DualPi2 baseline."""

    profile: DrbProfile = field(default_factory=DrbProfile)
    core: DualPi2Core = field(default_factory=DualPi2Core)
    last_update: float = 0.0
    marks: int = 0
    rng: object = None  # cached marking stream; set by RanDualPi2Marker._state


class RanDualPi2Marker:
    """Wired DualPi2 semantics applied at the CU, for the §6.3.1 ablation."""

    name = "ran_dualpi2"

    def __init__(self, sim: Simulator, l4s_threshold: float = ms(1),
                 classic_target: float = ms(15)) -> None:
        self._sim = sim
        self.l4s_threshold = l4s_threshold
        self.classic_target = classic_target
        self._drbs: dict[DrbKey, _DualPi2DrbState] = {}
        self._ue_stream_tags: dict[UeId, str] = {}
        self.downlink_packets = 0
        self.uplink_packets = 0
        self.feedback_messages = 0
        self.marked_packets = 0

    def set_ue_stream_tag(self, ue_id: UeId, tag: str) -> None:
        """Qualify future marking streams of ``ue_id`` (handover arrival)."""
        self._ue_stream_tags[ue_id] = tag

    # ------------------------------------------------------------------ #
    def _state(self, ue_id: UeId, drb_id: DrbId) -> _DualPi2DrbState:
        key = DrbKey(ue_id, drb_id)
        state = self._drbs.get(key)
        if state is None:
            state = _DualPi2DrbState()
            state.core.l4s_threshold = self.l4s_threshold
            state.core.target = self.classic_target
            state.rng = self._sim.random.stream(
                f"ran-dualpi2-{ue_id}-{drb_id}"
                f"{self._ue_stream_tags.get(ue_id, '')}")
            self._drbs[key] = state
        return state

    # ------------------------------------------------------------------ #
    def on_downlink_packet(self, packet: Packet, ue_id: UeId, drb_id: DrbId,
                           now: float) -> None:
        self.downlink_packets += 1
        state = self._state(ue_id, drb_id)
        state.profile.add_packet(packet.size, now)
        if packet.ecn == ECN.NOT_ECT:
            return
        sojourn = state.profile.head_sojourn(now)
        if packet.flow_class == FlowClass.L4S:
            probability = state.core.l4s_mark_probability(sojourn)
        else:
            probability = state.core.p_classic
        if chance(state.rng, probability):
            mark_ce_with_checksum(packet, by=self.name)
            state.marks += 1
            self.marked_packets += 1

    def on_ran_feedback(self, status: DeliveryStatus, now: float) -> None:
        self.feedback_messages += 1
        state = self._state(status.ue_id, status.drb_id)
        state.profile.on_feedback(status.highest_txed_sn,
                                  status.highest_delivered_sn,
                                  status.timestamp)
        state.profile.purge(now)
        # Advance the PI controller at its nominal cadence using the measured
        # head sojourn as the classic queue-delay signal.
        if now - state.last_update >= state.core.tupdate:
            state.core.update(state.profile.head_sojourn(now))
            state.last_update = now

    def on_uplink_packet(self, packet: Packet, now: float) -> None:
        self.uplink_packets += 1


@MARKERS.register("ran_dualpi2")
def _build_ran_dualpi2(sim: Simulator, l4span_config=None) -> RanDualPi2Marker:
    """DualPi2 moved into the RAN, with its stock 1 ms L4S step threshold."""
    return RanDualPi2Marker(sim, l4s_threshold=ms(1))


@MARKERS.register("ran_dualpi2_10ms")
def _build_ran_dualpi2_10ms(sim: Simulator,
                            l4span_config=None) -> RanDualPi2Marker:
    """RAN DualPi2 with the threshold lifted to L4Span's 10 ms tau_s."""
    return RanDualPi2Marker(sim, l4s_threshold=ms(10))
