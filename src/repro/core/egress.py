"""Egress-rate estimation from F1-U transmit reports (paper Eq. 3 and 4).

Whenever the RLC reports new transmissions, the estimator computes the
*instantaneous* egress rate over the trailing ``tau_c``-long window ending at
the newest transmit timestamp (Eq. 3), then smooths it by averaging the
instantaneous samples inside another ``tau_c`` window (Eq. 4).  Every byte
contributing to the smoothed estimate was therefore transmitted within
``2 * tau_c`` -- one channel coherence time -- during which the channel is
considered stable.  The standard deviation of the instantaneous samples in
the window is the error estimate ``e_hat`` used by the L4S marking rule.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.profile_table import ProfileEntry


class WindowedMeanVariance:
    """Streaming mean/variance over a sliding window (Welford add/remove).

    Maintains the running mean and the centred sum of squares ``M2`` under
    both insertion and removal, so the smoothing pass over the
    instantaneous-rate window costs O(1) per update instead of the two
    O(window) ``sum()`` scans it replaces -- at feedback rates the scans
    were the estimator's dominant cost.  Welford's centred recurrences are
    used (rather than a raw sum-of-squares) for numerical robustness at
    rate magnitudes around 1e7 bytes/s.
    """

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Insert ``value`` into the window."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def remove(self, value: float) -> None:
        """Remove a ``value`` previously inserted (inverse Welford step)."""
        if self.count <= 1:
            self.count = 0
            self.mean = 0.0
            self._m2 = 0.0
            return
        old_mean = self.mean
        self.count -= 1
        self.mean = old_mean + (old_mean - value) / self.count
        self._m2 -= (value - old_mean) * (value - self.mean)

    def variance(self) -> float:
        """Population variance of the window (0 for fewer than two values)."""
        if self.count < 2:
            return 0.0
        # Removal can leave M2 a hair below zero through float cancellation.
        return max(self._m2, 0.0) / self.count

    def std(self) -> float:
        """Population standard deviation of the window."""
        return math.sqrt(self.variance())


@dataclass(frozen=True)
class RateEstimate:
    """The output of one estimator update."""

    timestamp: float
    smoothed_rate: float       # r_hat_e, bytes per second
    instantaneous_rate: float  # r^T_k, bytes per second
    error_std: float           # e_hat, bytes per second
    samples_in_window: int

    @property
    def is_valid(self) -> bool:
        """True once at least one transmission has been observed."""
        return self.samples_in_window > 0


class EgressRateEstimator:
    """Sliding-window dequeue-rate estimator for one bearer.

    Args:
        window: the estimation window ``tau_c / 2`` is *not* applied here --
            the window passed in should already be the paper's
            ``tau_c``-long averaging window (the layer passes
            ``config.estimation_window``... see note) .

    Note:
        The paper uses a window of half the pre-set coherence time for the
        instantaneous rate (Eq. 3) and a second window of the same length for
        smoothing (Eq. 4); the constructor takes that single length.
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._transmissions: deque[tuple[float, int]] = deque()
        #: Running byte total of ``_transmissions`` -- sizes are integers, so
        #: the sum is exact and the per-update window re-scan the estimator
        #: used to do (its dominant cost at feedback rates) is unnecessary.
        self._window_bytes = 0
        # Instantaneous-rate history with a running Welford accumulator, so
        # the smoothed mean and error std are O(1) per update instead of a
        # full-window ``sum()`` pass for each.
        self._inst_times: deque[float] = deque()
        self._inst_rates: deque[float] = deque()
        self._inst_stats = WindowedMeanVariance()
        self._last_estimate: Optional[RateEstimate] = None

    # ------------------------------------------------------------------ #
    def observe_transmissions(self, entries: Iterable[ProfileEntry]
                              ) -> Optional[RateEstimate]:
        """Feed newly transmitted profile entries; returns the new estimate.

        Returns None when the update carried no new transmissions.
        """
        newest_time: Optional[float] = None
        transmissions = self._transmissions
        for entry in entries:
            if entry.transmitted_time is None:
                continue
            transmissions.append((entry.transmitted_time, entry.size))
            self._window_bytes += entry.size
            newest_time = entry.transmitted_time
        if newest_time is None:
            return self._last_estimate
        return self._update(newest_time)

    def _update(self, now: float) -> RateEstimate:
        self._expire(now)
        instantaneous = self._window_bytes / self.window
        inst_times = self._inst_times
        inst_rates = self._inst_rates
        stats = self._inst_stats
        inst_times.append(now)
        inst_rates.append(instantaneous)
        stats.add(instantaneous)
        cutoff = now - self.window
        while inst_times[0] <= cutoff:
            inst_times.popleft()
            stats.remove(inst_rates.popleft())
        estimate = RateEstimate(timestamp=now, smoothed_rate=stats.mean,
                                instantaneous_rate=instantaneous,
                                error_std=stats.std(),
                                samples_in_window=stats.count)
        self._last_estimate = estimate
        return estimate

    def _expire(self, now: float) -> None:
        """Drop transmissions outside the trailing window (exact running sum)."""
        cutoff = now - self.window
        transmissions = self._transmissions
        while transmissions and transmissions[0][0] <= cutoff:
            self._window_bytes -= transmissions.popleft()[1]

    # ------------------------------------------------------------------ #
    @property
    def last_estimate(self) -> Optional[RateEstimate]:
        """The most recent estimate, or None before any transmission."""
        return self._last_estimate

    def rate_or_default(self, default: float = 0.0) -> float:
        """Smoothed rate of the last estimate, or ``default``."""
        if self._last_estimate is None:
            return default
        return self._last_estimate.smoothed_rate

    def error_std_or_default(self, default: float = 0.0) -> float:
        """Error standard deviation of the last estimate, or ``default``."""
        if self._last_estimate is None:
            return default
        return self._last_estimate.error_std
