"""The packet profile table (paper §4.3.2, Fig. 5).

L4Span tracks every downlink packet of a bearer through three timestamps:

* **ingress** -- when the packet entered the CU-UP L4Span layer;
* **transmitted** -- when the RLC reported (over F1-U) that the packet was
  handed to MAC/PHY;
* **delivered** -- when the RLC reported UE delivery (RLC AM only).

Because the F1-U delivery-status report carries only the *highest*
transmitted / delivered PDCP sequence numbers, a report at time *t* marks
every not-yet-transmitted entry with SN <= highest as transmitted at *t*
(respectively delivered).  The standing queue is exactly the set of entries
with no transmitted timestamp; its byte total is the ``N_queue`` used by the
marking equations.

The table mirrors PDCP's sequence numbering by assigning SNs in arrival
order, which is valid because the CU submits packets to PDCP in the same
order it showed them to L4Span.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional


@dataclass
class ProfileEntry:
    """Per-packet record in the profile table."""

    sn: int
    size: int
    ingress_time: float
    transmitted_time: Optional[float] = None
    delivered_time: Optional[float] = None

    @property
    def queued(self) -> bool:
        """True while the packet is still waiting in the RLC."""
        return self.transmitted_time is None

    def queueing_delay(self) -> Optional[float]:
        """Measured queueing (sojourn) delay, once transmitted."""
        if self.transmitted_time is None:
            return None
        return self.transmitted_time - self.ingress_time

    def retransmission_delay(self) -> Optional[float]:
        """Delay between transmission and UE delivery (RLC AM only)."""
        if self.transmitted_time is None or self.delivered_time is None:
            return None
        return self.delivered_time - self.transmitted_time


class DrbProfile:
    """Profile table of a single (UE, DRB) bearer."""

    def __init__(self, horizon: float = 2.0) -> None:
        self._entries: "OrderedDict[int, ProfileEntry]" = OrderedDict()
        self._next_sn = 0
        self.horizon = horizon
        self.highest_txed_sn: Optional[int] = None
        self.highest_delivered_sn: Optional[int] = None
        self._queued_bytes = 0
        self.total_packets = 0
        self.total_bytes = 0

    # ------------------------------------------------------------------ #
    # Ingress
    # ------------------------------------------------------------------ #
    def add_packet(self, size: int, now: float) -> int:
        """Record a packet entering the bearer; returns its (mirrored) SN."""
        sn = self._next_sn
        self._next_sn += 1
        self._entries[sn] = ProfileEntry(sn=sn, size=size, ingress_time=now)
        self._queued_bytes += size
        self.total_packets += 1
        self.total_bytes += size
        return sn

    # ------------------------------------------------------------------ #
    # F1-U feedback
    # ------------------------------------------------------------------ #
    def on_feedback(self, highest_txed_sn: Optional[int],
                    highest_delivered_sn: Optional[int],
                    timestamp: float) -> list[ProfileEntry]:
        """Apply a delivery-status report.

        Returns the entries newly marked as transmitted (in SN order), which
        the egress-rate estimator consumes.
        """
        newly_transmitted: list[ProfileEntry] = []
        if highest_txed_sn is not None:
            start = 0 if self.highest_txed_sn is None else self.highest_txed_sn + 1
            for sn in range(start, highest_txed_sn + 1):
                entry = self._entries.get(sn)
                if entry is None or entry.transmitted_time is not None:
                    continue
                entry.transmitted_time = timestamp
                self._queued_bytes -= entry.size
                newly_transmitted.append(entry)
            if (self.highest_txed_sn is None
                    or highest_txed_sn > self.highest_txed_sn):
                self.highest_txed_sn = highest_txed_sn
        if highest_delivered_sn is not None:
            start = (0 if self.highest_delivered_sn is None
                     else self.highest_delivered_sn + 1)
            for sn in range(start, highest_delivered_sn + 1):
                entry = self._entries.get(sn)
                if entry is not None and entry.delivered_time is None:
                    entry.delivered_time = timestamp
            if (self.highest_delivered_sn is None
                    or highest_delivered_sn > self.highest_delivered_sn):
                self.highest_delivered_sn = highest_delivered_sn
        return newly_transmitted

    # ------------------------------------------------------------------ #
    # Queue state
    # ------------------------------------------------------------------ #
    @property
    def queued_bytes(self) -> int:
        """Bytes of the standing queue (entries not yet transmitted)."""
        return max(0, self._queued_bytes)

    @property
    def queued_packets(self) -> int:
        """Number of packets still waiting for transmission."""
        if self.highest_txed_sn is None:
            return len(self._entries)
        return max(0, self._next_sn - (self.highest_txed_sn + 1))

    def oldest_queued_entry(self) -> Optional[ProfileEntry]:
        """The head of the standing queue (oldest untransmitted entry).

        Because a delivery-status report marks every SN up to the highest
        transmitted one, the standing queue is exactly the contiguous SN range
        above ``highest_txed_sn``; the head is therefore a direct lookup.
        """
        head_sn = 0 if self.highest_txed_sn is None else self.highest_txed_sn + 1
        return self._entries.get(head_sn)

    def head_sojourn(self, now: float) -> float:
        """Measured sojourn time of the standing-queue head (0 when empty)."""
        head = self.oldest_queued_entry()
        if head is None:
            return 0.0
        return max(0.0, now - head.ingress_time)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def purge(self, now: float) -> int:
        """Drop transmitted entries older than the retention horizon.

        Returns the number of purged entries.
        """
        cutoff = now - self.horizon
        purged = 0
        for sn in list(self._entries):
            entry = self._entries[sn]
            if entry.queued:
                break
            if entry.transmitted_time is not None and entry.transmitted_time < cutoff:
                del self._entries[sn]
                purged += 1
            else:
                break
        return purged

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ProfileEntry]:
        return iter(self._entries.values())

    def entry(self, sn: int) -> Optional[ProfileEntry]:
        """Look up one entry by sequence number."""
        return self._entries.get(sn)

    def measured_queueing_delays(self) -> list[float]:
        """Queueing delays of every transmitted entry still retained."""
        return [e.queueing_delay() for e in self._entries.values()
                if e.queueing_delay() is not None]
