"""Per-flow state kept by the L4Span layer.

L4Span maintains, for every five-tuple it has seen, the bearer it maps to,
its service class, an initial RTT estimate (from the interval between the
first forward packets of the flow) and -- when feedback short-circuiting is
active -- the tentative AccECN counters / classic ECE latch that will be
written into uplink ACKs instead of marking downlink packets over the radio
link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.addresses import FiveTuple
from repro.net.ecn import FlowClass
from repro.net.packet import AccEcnCounters
from repro.ran.identifiers import DrbId, UeId


@dataclass
class FlowRecord:
    """Everything L4Span remembers about one flow."""

    five_tuple: FiveTuple
    ue_id: UeId
    drb_id: DrbId
    flow_class: FlowClass
    protocol: str = "tcp"
    uses_accecn: bool = False
    first_downlink_time: Optional[float] = None
    initial_rtt: Optional[float] = None
    #: Tentative marking book-keeping for feedback short-circuiting.
    tentative: AccEcnCounters = field(default_factory=AccEcnCounters)
    ece_latched: bool = False
    downlink_packets: int = 0
    downlink_bytes: int = 0
    marked_packets: int = 0
    marked_bytes: int = 0
    shortcircuited_acks: int = 0

    # ------------------------------------------------------------------ #
    def record_downlink(self, size: int, now: float) -> None:
        """Account a downlink packet of this flow."""
        self.downlink_packets += 1
        self.downlink_bytes += size
        if self.first_downlink_time is None:
            self.first_downlink_time = now

    def record_mark(self, size: int, ecn_capable_l4s: bool) -> None:
        """Account a marking decision (tentative or applied)."""
        self.marked_packets += 1
        self.marked_bytes += size
        self.tentative.ce_packets += 1
        self.tentative.ce_bytes += size
        if not self.uses_accecn:
            self.ece_latched = True

    def record_unmarked(self, size: int) -> None:
        """Account a packet the layer decided not to mark."""
        if self.flow_class == FlowClass.L4S:
            self.tentative.ect1_bytes += size
        else:
            self.tentative.ect0_bytes += size

    def observe_uplink(self, now: float) -> None:
        """Update the initial-RTT estimate from the first uplink packet seen."""
        if self.initial_rtt is None and self.first_downlink_time is not None:
            self.initial_rtt = max(1e-4, now - self.first_downlink_time)

    @property
    def mark_fraction(self) -> float:
        """Fraction of this flow's downlink packets that were marked."""
        if self.downlink_packets == 0:
            return 0.0
        return self.marked_packets / self.downlink_packets
