"""Shared guarded numpy import.

numpy is a declared dependency, but pure-python scenarios (the default
``python`` engine backend with no background population) never need it, so
the vectorized subsystems import it through this module instead of failing
at import time on a broken install.  Every kernel that genuinely requires
numpy calls :func:`require_numpy` with its feature name and gets one
consistent, actionable error message.

Users: :class:`repro.ran.background.BackgroundPopulation`, the ``numpy``
engine backend (:mod:`repro.sim.backends`) and its channel block cache
(:mod:`repro.channel.blockcache`).
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on broken installs
    np = None  # type: ignore[assignment]


def numpy_available() -> bool:
    """True when numpy imported successfully."""
    return np is not None


def require_numpy(feature: str, hint: str = ""):
    """Return the numpy module, or raise one actionable RuntimeError.

    Args:
        feature: what needs numpy, e.g. ``"the background-population
            kernel"`` -- leads the error message.
        hint: optional feature-specific way out, appended to the message.
    """
    if np is None:
        message = (f"{feature} requires numpy (a declared dependency -- "
                   f"`pip install numpy`)")
        if hint:
            message += f"; {hint}"
        raise RuntimeError(message)
    return np
