"""L4Span reproduction library.

This package reproduces the system described in "L4Span: Spanning Congestion
Signaling over NextG Networks for Interactive Applications" (CoNEXT 2025) as a
pure-Python, discrete-event simulation:

* :mod:`repro.sim` -- the discrete-event engine.
* :mod:`repro.net` -- packets, headers, ECN codepoints, links and queues.
* :mod:`repro.aqm` -- wired AQM algorithms (CoDel, DualPi2, ...).
* :mod:`repro.channel` -- radio channel models with coherence-time structure.
* :mod:`repro.ran` -- the 5G RAN substrate (SDAP/PDCP/RLC/MAC, F1-U feedback).
* :mod:`repro.cc` -- congestion-control senders (Prague, CUBIC, BBRv2, ...).
* :mod:`repro.core` -- the L4Span layer itself and its in-RAN baselines.
* :mod:`repro.workloads`, :mod:`repro.metrics`, :mod:`repro.experiments` --
  traffic generators, measurement collectors and the per-figure harnesses.

Quickstart (the stable public surface is :mod:`repro.api`)::

    import repro.api as api

    result = api.run(api.ScenarioSpec(num_ues=4, duration_s=5.0,
                                      cc_name="prague", l4span=True))
    print(result.summary())
"""

from repro.version import __version__

__all__ = ["__version__"]
