"""Unit conversion helpers.

All simulation times are plain ``float`` seconds and all data sizes are
``int`` bytes.  These helpers exist so that experiment code can speak the
paper's units (milliseconds, megabits per second) without sprinkling magic
constants.
"""

from __future__ import annotations

BYTES_PER_KILOBYTE = 1_000
BYTES_PER_MEGABYTE = 1_000_000
BITS_PER_BYTE = 8


def ms(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds / 1e3


def us(microseconds: float) -> float:
    """Convert microseconds to seconds."""
    return microseconds / 1e6


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1e3


def seconds_to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * 1e6


def mbps(megabits_per_second: float) -> float:
    """Convert Mbit/s to bytes per second."""
    return megabits_per_second * 1e6 / BITS_PER_BYTE


def kbps(kilobits_per_second: float) -> float:
    """Convert kbit/s to bytes per second."""
    return kilobits_per_second * 1e3 / BITS_PER_BYTE


def to_mbps(bytes_per_second: float) -> float:
    """Convert bytes per second to Mbit/s."""
    return bytes_per_second * BITS_PER_BYTE / 1e6


def to_kbps(bytes_per_second: float) -> float:
    """Convert bytes per second to kbit/s."""
    return bytes_per_second * BITS_PER_BYTE / 1e3


def kib(kibibytes: float) -> int:
    """Convert KiB to bytes."""
    return int(kibibytes * 1024)


def transmission_time(size_bytes: int, rate_bytes_per_s: float) -> float:
    """Serialisation delay of ``size_bytes`` at ``rate_bytes_per_s``.

    Returns ``float('inf')`` when the rate is zero, which callers treat as
    "cannot transmit right now".
    """
    if rate_bytes_per_s <= 0:
        return float("inf")
    return size_bytes / rate_bytes_per_s
