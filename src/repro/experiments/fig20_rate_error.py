"""Fig. 20 -- egress-rate estimation error CDF.

Concurrent downloads under static, pedestrian and vehicular channels; the
L4Span layer's smoothed egress-rate estimate is compared against the ground
truth (the RLC's transmitted-byte counter differenced over the sampling
interval), and the distribution of relative errors is reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import run_scenario
from repro.experiments.spec import ScenarioSpec
from repro.metrics.stats import cdf_points, percentile, summarize


@dataclass
class RateErrorConfig:
    """Scaled-down estimation-error experiment."""

    channels: tuple = ("static", "pedestrian", "vehicular")
    num_ues: int = 4
    cc_name: str = "prague"
    duration_s: float = 6.0
    seed: int = 47


def _run_cell(cell: dict) -> dict:
    """Spawn-safe adapter: one per-channel spec-dict grid cell."""
    spec = ScenarioSpec.from_dict(cell)
    result = run_scenario(spec)
    errors = result.rate_estimation_errors
    return {
        "channel": spec.channel_profile,
        "error_summary": summarize(errors),
        "median_abs_error_pct": percentile([abs(e) for e in errors], 50)
        if errors else float("nan"),
        "error_cdf": cdf_points(errors, max_points=50),
    }


def run_fig20(config: Optional[RateErrorConfig] = None, workers: int = 1,
              progress: Optional[Callable[[int, int], None]] = None
              ) -> list[dict]:
    """Run the estimation-error grid; one row per channel condition."""
    config = config if config is not None else RateErrorConfig()
    cells = [ScenarioSpec(
                 num_ues=config.num_ues, duration_s=config.duration_s,
                 cc_name=config.cc_name, marker="l4span",
                 channel_profile=channel, rate_probe=True,
                 seed=config.seed).to_dict()
             for channel in config.channels]
    runner = SweepRunner(workers=workers, progress=progress)
    return runner.map(_run_cell, cells)
