"""Fig. 2 -- motivation: CUBIC and Prague in wired, plain-5G and 5G+L4Span.

Produces, for each of the three network configurations, the RTT / throughput
(and, for the 5G cases, RLC queue) behaviour of a Prague flow and a CUBIC
flow.  The 5G runs include the paper's bottleneck shift: a wired middlebox is
throttled below the RAN capacity for the middle third of the run and restored
afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.api import ScenarioResult, ScenarioSpec, run
from repro.experiments.wired import (WiredScenarioConfig, WiredScenarioResult,
                                     run_wired_scenario)
from repro.metrics.stats import summarize
from repro.workloads.flows import FlowSpec


@dataclass
class Fig2Config:
    """Scaled-down defaults for the motivation experiment."""

    duration_s: float = 8.0
    wan_rtt_ms: float = 38.0
    bottleneck_shift: bool = True
    shift_start_frac: float = 1.0 / 3.0
    shift_end_frac: float = 2.0 / 3.0
    throttled_mbps: float = 15.0
    unthrottled_mbps: float = 200.0
    seed: int = 7


@dataclass
class Fig2Result:
    """The three panels of Fig. 2."""

    wired: WiredScenarioResult
    plain_5g: ScenarioResult
    l4span_5g: ScenarioResult

    def rows(self) -> list[dict]:
        """Tabular summary: one row per (panel, algorithm)."""
        rows = []
        for flow in self.wired.flows:
            rows.append({"panel": "wired+dualpi2", "cc": flow.cc_name,
                         "rtt_ms": summarize(flow.rtt_samples).get("median",
                                             float("nan")) * 1e3,
                         "throughput_mbps": flow.goodput_mbps})
        for panel, result in (("5g", self.plain_5g), ("5g+l4span",
                                                      self.l4span_5g)):
            for flow in result.flows:
                rows.append({
                    "panel": panel,
                    "cc": flow.cc_name,
                    "rtt_ms": summarize(flow.rtt_samples).get(
                        "median", float("nan")) * 1e3,
                    "throughput_mbps": flow.goodput_mbps,
                    "mean_queue_sdus": (sum(result.queue_length_samples)
                                        / len(result.queue_length_samples)
                                        if result.queue_length_samples else 0.0),
                })
        return rows


def _five_g_config(config: Fig2Config, marker: str) -> ScenarioSpec:
    flows = [FlowSpec(flow_id=0, ue_id=0, cc_name="prague", label="prague"),
             FlowSpec(flow_id=1, ue_id=0, cc_name="cubic", label="cubic")]
    schedule = []
    if config.bottleneck_shift:
        schedule = [
            (config.duration_s * config.shift_start_frac, config.throttled_mbps),
            (config.duration_s * config.shift_end_frac, config.unthrottled_mbps),
        ]
    return ScenarioSpec(
        num_ues=1, duration_s=config.duration_s, marker=marker,
        wan_rtt=config.wan_rtt_ms / 1e3, seed=config.seed,
        flows=flows,
        wired_bottleneck_mbps=config.unthrottled_mbps,
        wired_bottleneck_schedule=schedule)


def run_fig2(config: Optional[Fig2Config] = None) -> Fig2Result:
    """Run all three panels of Fig. 2 and return their results."""
    config = config if config is not None else Fig2Config()
    wired = run_wired_scenario(WiredScenarioConfig(
        cc_names=["prague", "cubic"], bottleneck_mbps=40.0,
        rtt=0.02, duration_s=min(config.duration_s, 6.0), seed=config.seed))
    plain = run(_five_g_config(config, marker="none"))
    with_l4span = run(_five_g_config(config, marker="l4span"))
    return Fig2Result(wired=wired, plain_5g=plain, l4span_5g=with_l4span)
