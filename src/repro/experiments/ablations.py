"""Ablations called out in DESIGN.md.

* ``marking_strategy_ablation`` -- §6.3.1: L4Span's error-aware marking versus
  DualPi2-in-the-RAN with a hard 1 ms or 10 ms sojourn threshold.
* ``window_sweep`` -- sensitivity of the egress-rate estimation window
  (the paper fixes it at half the 24.9 ms coherence time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.config import L4SpanConfig
from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import run_scenario
from repro.experiments.spec import ScenarioSpec
from repro.metrics.stats import box_stats
from repro.units import ms


@dataclass
class AblationConfig:
    """Common scaled-down settings for the ablation runs."""

    cc_name: str = "prague"
    num_ues: int = 1
    duration_s: float = 6.0
    channel: str = "mobile"
    seed: int = 61


def _run_marker_cell(cell: dict) -> dict:
    """Spawn-safe adapter: one marker-strategy spec-dict cell."""
    spec = ScenarioSpec.from_dict(cell)
    result = run_scenario(spec)
    owd = box_stats(result.all_owd_samples())
    return {"marker": spec.marker,
            "owd_median_ms": owd.median * 1e3,
            "throughput_mbps": result.total_goodput_mbps()}


def marking_strategy_ablation(config: Optional[AblationConfig] = None,
                              workers: int = 1,
                              progress: Optional[Callable[[int, int], None]]
                              = None) -> list[dict]:
    """Compare L4Span's marking with hard-threshold DualPi2 in the RAN."""
    config = config if config is not None else AblationConfig()
    cells = [ScenarioSpec(
                 num_ues=config.num_ues, duration_s=config.duration_s,
                 cc_name=config.cc_name, marker=marker,
                 channel_profile=config.channel, seed=config.seed).to_dict()
             for marker in ("l4span", "ran_dualpi2", "ran_dualpi2_10ms",
                            "none")]
    runner = SweepRunner(workers=workers, progress=progress)
    return runner.map(_run_marker_cell, cells)


def _run_window_cell(cell: tuple) -> dict:
    """Spawn-safe adapter: one (window_ms, spec dict) cell."""
    window_ms, spec_dict = cell
    result = run_scenario(ScenarioSpec.from_dict(spec_dict))
    owd = box_stats(result.all_owd_samples())
    return {"window_ms": window_ms,
            "owd_median_ms": owd.median * 1e3,
            "throughput_mbps": result.total_goodput_mbps()}


def window_sweep(config: Optional[AblationConfig] = None,
                 windows_ms: tuple = (3.0, 6.0, 12.45, 25.0, 50.0),
                 workers: int = 1,
                 progress: Optional[Callable[[int, int], None]] = None
                 ) -> list[dict]:
    """Sweep the egress-rate estimation window length."""
    config = config if config is not None else AblationConfig()
    cells = [(window_ms,
              ScenarioSpec(
                  num_ues=config.num_ues, duration_s=config.duration_s,
                  cc_name=config.cc_name, marker="l4span",
                  channel_profile=config.channel,
                  l4span_config=L4SpanConfig(coherence_time=ms(2 * window_ms)),
                  seed=config.seed).to_dict())
             for window_ms in windows_ms]
    runner = SweepRunner(workers=workers, progress=progress)
    return runner.map(_run_window_cell, cells)
