"""Fig. 14 -- throughput fairness among flows under L4Span.

Three UEs with staggered start/stop times share the cell; the panels are
(a) three Prague flows with the same RTT, (b) three Prague flows with
distinct RTTs, (c) two Prague flows plus a CUBIC flow, (d) two Prague flows
plus BBRv2.  The output is each flow's throughput time-series plus Jain's
fairness index over the interval when all flows are active.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.api import ScenarioResult, ScenarioSpec, run
from repro.units import ms
from repro.workloads.flows import FlowSpec


def jain_index(values: list[float]) -> float:
    """Jain's fairness index of a set of throughputs (1 = perfectly fair)."""
    values = [v for v in values if v >= 0]
    if not values or sum(values) == 0:
        return 0.0
    return (sum(values) ** 2) / (len(values) * sum(v * v for v in values))


@dataclass
class FairnessConfig:
    """Scaled-down fairness experiment."""

    duration_s: float = 9.0
    stagger_s: float = 1.5
    seed: int = 23


@dataclass
class FairnessPanel:
    """One panel of Fig. 14."""

    name: str
    cc_names: list[str]
    result: ScenarioResult
    fairness_index: float
    mean_throughputs_mbps: list[float]


def _panel_flows(cc_names: list[str], config: FairnessConfig,
                 rtts: Optional[list[float]] = None) -> list[FlowSpec]:
    flows = []
    for index, cc in enumerate(cc_names):
        flows.append(FlowSpec(
            flow_id=index, ue_id=index, cc_name=cc,
            start_time=index * config.stagger_s,
            stop_time=config.duration_s - index * config.stagger_s * 0.5,
            label=f"{cc}-{index}",
            wan_rtt=rtts[index] if rtts is not None else None))
    return flows


def _run_panel(name: str, cc_names: list[str], config: FairnessConfig,
               wan_rtts: Optional[list[float]] = None) -> FairnessPanel:
    flows = _panel_flows(cc_names, config, rtts=wan_rtts)
    scenario = ScenarioSpec(num_ues=len(cc_names),
                              duration_s=config.duration_s,
                              marker="l4span", flows=flows, seed=config.seed,
                              wan_rtt=ms(38))
    result = run(scenario)
    overlap_start = max(f.start_time for f in flows)
    overlap_end = min(f.stop_time or config.duration_s for f in flows)
    throughputs = []
    for flow in result.flows:
        series = flow.throughput_series
        in_overlap = [v for t, v in series.points()
                      if overlap_start <= t <= overlap_end]
        throughputs.append(sum(in_overlap) / len(in_overlap) * 8 / 1e6
                           if in_overlap else 0.0)
    return FairnessPanel(name=name, cc_names=list(cc_names), result=result,
                         fairness_index=jain_index(throughputs),
                         mean_throughputs_mbps=throughputs)


def run_fig14(config: Optional[FairnessConfig] = None) -> list[FairnessPanel]:
    """Run the four fairness panels."""
    config = config if config is not None else FairnessConfig()
    return [
        _run_panel("3x prague (equal RTT)", ["prague", "prague", "prague"],
                   config),
        _run_panel("3x prague (distinct RTT)", ["prague", "prague", "prague"],
                   config, wan_rtts=[ms(18), ms(38), ms(78)]),
        _run_panel("2x prague + cubic", ["prague", "cubic", "prague"], config),
        _run_panel("2x prague + bbr2", ["prague", "bbr2", "prague"], config),
    ]
