"""Named scenario presets: one-liner heterogeneous topologies.

Each preset is a function returning a ready-to-run
:class:`~repro.experiments.spec.ScenarioSpec`, registered in
:data:`repro.registry.SCENARIO_PRESETS` so the CLI can offer
``python -m repro scenario --preset NAME`` (and ``--dump-spec`` turns any
preset into a JSON file you can edit and replay with ``--spec``).

The presets exercise exactly the scenario diversity the spec layer added:
multiple cells sharing one core, mixed channel populations, mixed congestion
controllers, per-flow WAN RTTs and mixed workloads.
"""

from __future__ import annotations

from repro.experiments.spec import (CellSpec, HandoverSpec, MobilitySpec,
                                    PopulationSpec, ScenarioSpec, UeSpec)
from repro.ran.cell import CellConfig
from repro.registry import SCENARIO_PRESETS
from repro.units import ms
from repro.workloads.flows import FlowSpec


def preset_names() -> list[str]:
    """Registered preset names (CLI ``choices=``)."""
    return SCENARIO_PRESETS.names()


def make_preset(name: str) -> ScenarioSpec:
    """Build (and validate) the named preset's spec."""
    return SCENARIO_PRESETS.get(name)().validate()


@SCENARIO_PRESETS.register("congested-cell")
def congested_cell() -> ScenarioSpec:
    """Six mixed-mobility Prague UEs saturating a single cell."""
    return ScenarioSpec(
        name="congested-cell", num_ues=6, duration_s=6.0,
        channel_profile="mobile", cc_name="prague", marker="l4span", seed=7)


@SCENARIO_PRESETS.register("mixed-cc")
def mixed_cc() -> ScenarioSpec:
    """Prague, CUBIC and BBRv2 sharing the cell, one UE each."""
    return ScenarioSpec(
        name="mixed-cc", num_ues=3, duration_s=6.0, marker="l4span", seed=7,
        flows=[FlowSpec(flow_id=0, ue_id=0, cc_name="prague", label="prague"),
               FlowSpec(flow_id=1, ue_id=1, cc_name="cubic", label="cubic"),
               FlowSpec(flow_id=2, ue_id=2, cc_name="bbr2", label="bbr2")])


@SCENARIO_PRESETS.register("distinct-rtt")
def distinct_rtt() -> ScenarioSpec:
    """Three Prague flows with 18/38/78 ms WAN RTTs (Fig. 14b's setting)."""
    return ScenarioSpec(
        name="distinct-rtt", num_ues=3, duration_s=6.0, marker="l4span",
        seed=7,
        flows=[FlowSpec(flow_id=i, ue_id=i, cc_name="prague",
                        label=f"rtt-{int(rtt * 1e3)}ms", wan_rtt=rtt)
               for i, rtt in enumerate((ms(18), ms(38), ms(78)))])


@SCENARIO_PRESETS.register("two-cell-imbalance")
def two_cell_imbalance() -> ScenarioSpec:
    """A congested wide cell and a quiet narrow cell sharing one 5G core.

    Cell 0 carries three vehicular UEs; cell 1 a single static UE.  The
    quiet cell's UE should keep its low delay regardless of its neighbours.
    """
    return ScenarioSpec(
        name="two-cell-imbalance", num_ues=0, duration_s=6.0,
        marker="l4span", seed=7,
        cells=[CellSpec(cell_id=0),
               CellSpec(cell_id=1,
                        radio=CellConfig(bandwidth_mhz=10.0, num_prb=24))],
        ues=[UeSpec(ue_id=0, cell_id=0, channel_profile="vehicular"),
             UeSpec(ue_id=1, cell_id=0, channel_profile="vehicular"),
             UeSpec(ue_id=2, cell_id=0, channel_profile="vehicular"),
             UeSpec(ue_id=3, cell_id=1, channel_profile="static")])


@SCENARIO_PRESETS.register("eight-cell", "8cell")
def eight_cell() -> ScenarioSpec:
    """Eight static-channel cells sharing one core, one Prague UE each.

    The sharding showcase: cells only meet at the 5G core, so the scenario
    splits perfectly across worker processes (``--shards``), and the static
    channel makes the sharded run metric-identical to the single loop.
    """
    return ScenarioSpec(
        name="eight-cell", num_ues=0, duration_s=6.0, marker="l4span",
        channel_profile="static", seed=7,
        cells=[CellSpec(cell_id=cell) for cell in range(8)],
        ues=[UeSpec(ue_id=ue, cell_id=ue) for ue in range(8)])


@SCENARIO_PRESETS.register("handover", "ho")
def handover() -> ScenarioSpec:
    """A UE handing over mid-transfer between two cells, and back again.

    UE 0 starts in cell 0, moves to cell 1 at t=2 s and returns at t=4 s
    (the ping-pong pattern); UEs 1 and 2 provide background load in each
    cell.  Queued RLC data is Xn-forwarded across each handover and the
    20 ms interruption shows up as a per-flow delivery gap in the result's
    ``handovers`` records.  On a static channel this scenario is the
    mobility showcase for ``--shards``: the UE's serving cell and its
    content server land on different shards, so every packet of its flow
    crosses the conservative shard boundary while it is away — the windowed
    barrier protocol running for real.
    """
    return ScenarioSpec(
        name="handover", num_ues=0, duration_s=6.0, marker="l4span",
        channel_profile="static", seed=7,
        cells=[CellSpec(cell_id=0), CellSpec(cell_id=1)],
        ues=[UeSpec(ue_id=0, cell_id=0),
             UeSpec(ue_id=1, cell_id=0),
             UeSpec(ue_id=2, cell_id=1)],
        mobility=MobilitySpec(
            mode="schedule", ho_mode="forward", interruption_s=0.020,
            handovers=[HandoverSpec(time=2.0, ue_id=0, target_cell=1),
                       HandoverSpec(time=4.0, ue_id=0, target_cell=0)]))


@SCENARIO_PRESETS.register("coupled-core", "coupled")
def coupled_core() -> ScenarioSpec:
    """Four cells behind one shared wired bottleneck, with SNR mobility.

    The coupled-topology showcase for ``--shards``: every flow funnels
    through one AQM-managed middlebox (so all shards share mid-run queue
    state) while UE 0's poor radio (5 dB against a 10 dB threshold)
    triggers an SNR handover that is decided on one shard and committed on
    all of them two-phase.  Flow starts are staggered so the shared queue
    never sees a same-instant tie.  On the static channel the sharded run
    is bit-identical to the single loop — ``--shards 1``, ``2`` and ``4``
    all report the same per-flow metrics.
    """
    return ScenarioSpec(
        name="coupled-core", num_ues=0, duration_s=2.0, marker="l4span",
        channel_profile="static", seed=7,
        wired_bottleneck_mbps=60.0,
        cells=[CellSpec(cell_id=cell) for cell in range(4)],
        ues=[UeSpec(ue_id=0, cell_id=0, mean_snr_db=5.0),
             UeSpec(ue_id=1, cell_id=1),
             UeSpec(ue_id=2, cell_id=2),
             UeSpec(ue_id=3, cell_id=3)],
        flows=[FlowSpec(flow_id=i, ue_id=i, cc_name="prague",
                        label=f"coupled-{i}", start_time=0.05 * i,
                        wan_rtt=ms(18 + 10 * i))
               for i in range(4)],
        mobility=MobilitySpec(mode="snr", snr_threshold_db=10.0,
                              min_stay_s=0.5))


@SCENARIO_PRESETS.register("dense-cell")
def dense_cell() -> ScenarioSpec:
    """Two exact foreground Prague UEs sharing the cell with 1000 aggregated
    background UEs.

    The population kernel (:mod:`repro.ran.background`) advances all 1000
    background UEs as one vectorized numpy state array synchronized with the
    MAC slot loop, so the scenario simulates over a thousand UE-seconds per
    second of wall clock while the two foreground flows keep packet-exact
    L4Span marking under realistic cell load.
    """
    return ScenarioSpec(
        name="dense-cell", num_ues=2, duration_s=6.0, marker="l4span",
        channel_profile="static", seed=7,
        population=PopulationSpec(
            n_background=1000, workload="bulk",
            cc_mix={"prague": 0.3, "cubic": 0.7},
            snr_mean_db=18.0, snr_stddev_db=6.0, activity=0.25,
            churn_rate_per_s=2.0))


@SCENARIO_PRESETS.register("video-plus-bulk")
def video_plus_bulk() -> ScenarioSpec:
    """A SCReAM interactive-video flow next to two Prague bulk downloads."""
    return ScenarioSpec(
        name="video-plus-bulk", num_ues=3, duration_s=6.0, marker="l4span",
        seed=7,
        flows=[FlowSpec(flow_id=0, ue_id=0, cc_name="scream", label="video"),
               FlowSpec(flow_id=1, ue_id=1, cc_name="prague", label="bulk"),
               FlowSpec(flow_id=2, ue_id=2, cc_name="prague", label="bulk")])
