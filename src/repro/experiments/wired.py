"""The wired L4S topology of the motivation experiment (Fig. 2a).

One server, one DualPi2 router, one client: the configuration in which L4S
achieves line rate at ~1 ms queueing delay and CUBIC sits at the classic
15-20 ms target.  Used as the reference point the 5G results are contrasted
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.aqm.dualpi2 import DualPi2Router
from repro.cc.factory import make_receiver, make_sender
from repro.metrics.collectors import ThroughputCollector, TimeSeries
from repro.metrics.stats import summarize
from repro.net.addresses import FiveTuple
from repro.net.packet import Packet
from repro.net.pipe import DelayPipe
from repro.sim.engine import Simulator
from repro.units import mbps, ms, to_mbps


@dataclass
class WiredScenarioConfig:
    """A wired bottleneck shared by one flow per listed algorithm."""

    cc_names: list[str] = field(default_factory=lambda: ["prague", "cubic"])
    bottleneck_mbps: float = 40.0
    rtt: float = ms(20)
    duration_s: float = 5.0
    seed: int = 1
    use_dualpi2: bool = True


@dataclass
class WiredFlowResult:
    """Per-flow outcome of a wired run."""

    cc_name: str
    rtt_samples: list[float]
    goodput_mbps: float
    throughput_series: TimeSeries

    def rtt_summary(self) -> dict:
        return summarize(self.rtt_samples)


@dataclass
class WiredScenarioResult:
    """All flows of a wired run."""

    config: WiredScenarioConfig
    flows: list[WiredFlowResult]

    def flow(self, cc_name: str) -> WiredFlowResult:
        for flow in self.flows:
            if flow.cc_name == cc_name:
                return flow
        raise KeyError(cc_name)


class _Adapter:
    def __init__(self, fn) -> None:
        self._fn = fn

    def receive(self, packet: Packet) -> None:
        self._fn(packet)


def run_wired_scenario(config: Optional[WiredScenarioConfig] = None
                       ) -> WiredScenarioResult:
    """Run the wired-bottleneck topology and return per-flow results."""
    config = config if config is not None else WiredScenarioConfig()
    sim = Simulator(seed=config.seed)
    one_way = config.rtt / 2.0
    router = DualPi2Router(sim, rate=mbps(config.bottleneck_mbps))
    throughput = ThroughputCollector()
    receivers = {}
    senders = {}

    class _Demux:
        """Deliver router output to the right flow's receiver."""

        def receive(self, packet: Packet) -> None:
            receiver = receivers.get(packet.flow_id)
            if receiver is not None:
                receiver.receive(packet)

    delivery = DelayPipe(sim, one_way, sink=_Demux(), name="wired-deliver")
    router.sink = delivery
    for index, cc_name in enumerate(config.cc_names):
        five_tuple = FiveTuple("10.0.0.1", 443, "10.1.0.2", 50_000 + index,
                               protocol="tcp")
        forward = DelayPipe(sim, 0.0, sink=router, name=f"fwd-{index}")
        sender = make_sender(cc_name, sim, index, five_tuple, path=forward)
        reverse = DelayPipe(sim, one_way, sink=_Adapter(sender.receive),
                            name=f"rev-{index}")

        def make_cb(flow_id: int):
            def cb(owd: float, packet: Packet) -> None:
                throughput.record(flow_id, packet.size, sim.now)
            return cb

        receiver = make_receiver(cc_name, sim, index,
                                 send_feedback=reverse.receive,
                                 owd_callback=make_cb(index))
        receivers[index] = receiver
        senders[index] = sender
        sim.schedule_at(0.0, sender.start)
    sim.run(until=config.duration_s)
    router.stop()
    flows = []
    for index, cc_name in enumerate(config.cc_names):
        rate = throughput.average_rate(index, duration=config.duration_s)
        flows.append(WiredFlowResult(
            cc_name=cc_name,
            rtt_samples=list(senders[index].stats.rtt_samples),
            goodput_mbps=to_mbps(rate),
            throughput_series=throughput.series.get(index, TimeSeries())))
    return WiredScenarioResult(config=config, flows=flows)
