"""Fig. 18 -- channel-stable-period CDF versus the estimation window.

The paper captures DCIs from two commercial cells (a 600 MHz FDD cell and a
2.5 GHz TDD cell) with NR-Scope and measures how long the scheduled MCS stays
within a deviation of 5.  We generate synthetic MCS traces from the library's
fading channels configured to mimic those two cells and run the identical
stability analysis, checking that well over 90% of stable periods exceed the
12.45 ms estimation window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.coherence import fraction_longer_than, stable_periods
from repro.channel.fading import FadingChannel
from repro.metrics.stats import cdf_points


@dataclass
class CoherenceConfig:
    """Synthetic stand-ins for the two commercial cells."""

    duration_s: float = 30.0
    sample_interval_s: float = 0.002
    estimation_window_s: float = 0.01245
    seed: int = 41


def _cell_channels(config: CoherenceConfig) -> dict[str, FadingChannel]:
    rng_fdd = np.random.default_rng(config.seed)
    rng_tdd = np.random.default_rng(config.seed + 1)
    return {
        # 600 MHz FDD: long coherence time (low carrier, mostly stationary UEs).
        "fdd_600mhz": FadingChannel(mean_snr_db=18.0, std_snr_db=1.5,
                                    speed_kmh=1.5, carrier_ghz=0.6,
                                    rng=rng_fdd),
        # 2.5 GHz TDD: shorter coherence time (higher carrier, walking UEs).
        "tdd_2.5ghz": FadingChannel(mean_snr_db=16.0, std_snr_db=2.0,
                                    speed_kmh=4.0, carrier_ghz=2.5,
                                    rng=rng_tdd),
    }


def run_fig18(config: Optional[CoherenceConfig] = None) -> list[dict]:
    """Analyse the stable periods of both synthetic cells."""
    config = config if config is not None else CoherenceConfig()
    rows = []
    for name, channel in _cell_channels(config).items():
        trace = channel.mcs_trace(config.duration_s, config.sample_interval_s)
        periods = stable_periods(trace, max_deviation=5, max_period=1.0)
        rows.append({
            "cell": name,
            "coherence_time_ms": channel.coherence_time * 1e3,
            "num_periods": len(periods),
            "fraction_above_window": fraction_longer_than(
                periods, config.estimation_window_s),
            "period_cdf": cdf_points(periods, max_points=50),
        })
    return rows
