"""Runtime execution options shared by every scenario-running surface.

``--engine``, ``--shards``, ``--workers`` and ``--shard-windows`` used to be
wired ad-hoc per CLI subcommand, which is exactly how flag drift happens
(``scenario`` grew ``--shards`` while ``experiment`` only knew ``--workers``,
and a served spec had neither).  This module is the single source of truth:

* :func:`add_runtime_arguments` contributes the four flags to an argparse
  parser — ``python -m repro scenario`` (ad-hoc and ``--preset`` runs alike)
  and ``python -m repro serve`` both build their parsers from the same
  parent.
* :class:`RuntimeOptions` is the parsed form; :meth:`RuntimeOptions.
  from_mapping` builds it from a service request's ``overrides`` object, so
  a spec submitted over HTTP accepts exactly the flags the CLI does.
* :func:`apply_runtime_options` applies them to a
  :class:`~repro.experiments.spec.ScenarioSpec` — one implementation, used
  verbatim by every path, regression-tested in ``tests/test_service.py``.

Semantics: ``--engine`` selects the engine backend, ``--shards`` the shard
process count (1 disables sharding), ``--shard-windows`` the barrier window
policy, and ``--workers`` caps the worker-process count a single scenario
may use (i.e. it bounds ``--shards``; the ``experiment`` command separately
uses its sweep-grid ``--workers``, and the core-budget arbiter in
:mod:`repro.experiments.runner` still bounds the product globally).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.experiments.spec import ScenarioSpec, ShardingSpec
from repro.sim.backends import ENGINE_BACKENDS

#: Barrier window policies ``--shard-windows`` understands.
SHARD_WINDOW_POLICIES = ("adaptive", "fixed")


@dataclass(frozen=True)
class RuntimeOptions:
    """The runtime knobs every scenario-running surface accepts.

    ``None`` fields leave the spec untouched, so an empty instance is the
    identity under :func:`apply_runtime_options`.
    """

    engine: Optional[str] = None
    shards: Optional[int] = None
    workers: Optional[int] = None
    shard_windows: Optional[str] = None

    def merged_over(self, defaults: "RuntimeOptions") -> "RuntimeOptions":
        """These options, falling back to ``defaults`` for unset fields.

        The service applies request-level overrides *over* its CLI-level
        defaults through this.
        """
        return RuntimeOptions(
            engine=self.engine if self.engine is not None else defaults.engine,
            shards=self.shards if self.shards is not None else defaults.shards,
            workers=(self.workers if self.workers is not None
                     else defaults.workers),
            shard_windows=(self.shard_windows if self.shard_windows is not None
                           else defaults.shard_windows))

    def validate(self) -> "RuntimeOptions":
        """Check names and counts; return self."""
        if self.engine is not None:
            ENGINE_BACKENDS.resolve(self.engine)
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1")
        if (self.shard_windows is not None
                and self.shard_windows not in SHARD_WINDOW_POLICIES):
            raise ValueError(
                f"unknown shard-windows policy {self.shard_windows!r}; "
                f"choose from {SHARD_WINDOW_POLICIES}")
        return self

    @classmethod
    def from_mapping(cls, data: dict) -> "RuntimeOptions":
        """Build (and validate) options from a request's ``overrides`` object.

        Unknown keys and malformed values raise :class:`ValueError` — the
        service maps that to a 400 with the message, so a typo in a POST
        body fails as loudly as a typo on the command line.
        """
        if not isinstance(data, dict):
            raise ValueError("'overrides' must be a JSON object, got "
                             f"{type(data).__name__}")
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise ValueError(f"unknown override(s) {unknown}; "
                             f"valid overrides: {sorted(names)}")
        for key in ("shards", "workers"):
            value = data.get(key)
            if value is not None and (isinstance(value, bool)
                                      or not isinstance(value, int)):
                raise ValueError(f"override {key!r} must be an integer")
        for key in ("engine", "shard_windows"):
            value = data.get(key)
            if value is not None and not isinstance(value, str):
                raise ValueError(f"override {key!r} must be a string")
        return cls(**data).validate()


def add_runtime_arguments(parser) -> None:
    """Contribute the shared runtime flags to an argparse parser.

    Used as the one argparse parent for ``scenario`` and ``serve`` (and, by
    the regression tests, as proof the two cannot drift apart again).
    """
    parser.add_argument(
        "--engine", default=None,
        choices=ENGINE_BACKENDS.names(include_aliases=True),
        help="engine backend for the per-slot hot loops (default: the "
             "spec's engine.backend, or $REPRO_ENGINE, or python)")
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard a multi-cell scenario over N worker processes "
             "(1 disables; see the README's Parallelism section)")
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="cap the worker processes one scenario may use (bounds "
             "--shards; the core-budget arbiter still applies)")
    parser.add_argument(
        "--shard-windows", choices=SHARD_WINDOW_POLICIES, default=None,
        help="barrier window policy for mobility-coupled sharded runs "
             "(default: the spec's sharding.adaptive_windows, i.e. "
             "adaptive)")


def runtime_options_from_args(args) -> RuntimeOptions:
    """Collect the shared flags out of a parsed argparse namespace."""
    return RuntimeOptions(engine=args.engine, shards=args.shards,
                          workers=args.workers,
                          shard_windows=args.shard_windows)


def apply_runtime_options(spec: ScenarioSpec,
                          options: Optional[RuntimeOptions]) -> ScenarioSpec:
    """Apply runtime options to a spec; the one authoritative implementation.

    CLI flag handling, preset runs and serve-submitted ``overrides`` all
    resolve through this function, so identical options produce identical
    specs on every path.
    """
    if options is None:
        return spec
    options.validate()
    overrides: dict = {}
    sharding = spec.sharding
    sharding_changed = False
    if options.shards is not None:
        sharding = (ShardingSpec(mode="auto", shards=options.shards)
                    if options.shards > 1 else ShardingSpec(mode="off"))
        sharding_changed = True
    if options.shard_windows is not None:
        sharding = dataclasses.replace(
            sharding, adaptive_windows=options.shard_windows == "adaptive")
        sharding_changed = True
    if options.workers is not None and sharding.mode == "auto":
        # A single scenario's only process layer is its shards; the workers
        # cap bounds it (explicit maps keep their placement untouched).
        if sharding.shards is None or sharding.shards > options.workers:
            sharding = dataclasses.replace(sharding, shards=options.workers)
            sharding_changed = True
    if sharding_changed:
        overrides["sharding"] = sharding
    if options.engine is not None:
        overrides["engine"] = dataclasses.replace(spec.engine,
                                                  backend=options.engine)
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    return spec
