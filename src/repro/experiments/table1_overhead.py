"""Table 1 -- CPU and memory overhead of L4Span relative to the plain RAN.

The paper compares srsRAN's CPU/memory usage with and without L4Span in an
idle cell and in a busy (64 concurrent downloads) cell, finding under 2%
extra CPU and under 0.02% extra memory.  The analogue here is the wall-clock
cost and event count of the same simulated scenario with the marker disabled
versus enabled, plus the share of wall-clock time spent inside the L4Span
handlers themselves.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.config import L4SpanConfig
from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import build_scenario
from repro.experiments.spec import ScenarioSpec


@dataclass
class OverheadConfig:
    """Scaled-down overhead experiment."""

    busy_ues: int = 4
    cc_name: str = "prague"
    duration_s: float = 3.0
    seed: int = 59


def _run_case(spec: ScenarioSpec) -> dict:
    tracemalloc.start()
    built = build_scenario(spec)
    start = time.perf_counter()
    result = built.run()
    wall = time.perf_counter() - start
    _, peak_memory = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    handler_time = 0.0
    if hasattr(built.marker, "processing_times"):
        handler_time = sum(sum(v) for v in built.marker.processing_times.values())
    return {
        "marker": spec.marker, "ues": spec.num_ues,
        "wall_seconds": wall,
        "events": result.events_processed,
        "peak_memory_mb": peak_memory / 1e6,
        "handler_seconds": handler_time,
        "handler_share_pct": 100.0 * handler_time / wall if wall > 0 else 0.0,
    }


def _run_cell(cell: tuple) -> dict:
    """Spawn-safe adapter: one (state, spec dict) grid cell."""
    state_name, spec_dict = cell
    row = _run_case(ScenarioSpec.from_dict(spec_dict))
    row["state"] = state_name
    return row


def run_table1(config: Optional[OverheadConfig] = None, workers: int = 1,
               progress: Optional[Callable[[int, int], None]] = None
               ) -> list[dict]:
    """Run the idle/busy x with/without-L4Span grid of Table 1.

    Each cell measures its own wall clock and peak memory inside its worker
    process.  Because the *output* of this experiment is wall-clock time,
    workers are capped at the logical CPU count so cells at least never
    time-slice the same logical CPU.  Concurrent cells can still contend
    (SMT siblings, caches, thermal limits), so parallel rows are indicative;
    use ``workers=1`` when the absolute overhead numbers matter.
    """
    config = config if config is not None else OverheadConfig()
    cells = [(state_name,
              ScenarioSpec(
                  num_ues=num_ues, duration_s=config.duration_s,
                  cc_name=config.cc_name, marker=marker,
                  l4span_config=L4SpanConfig(measure_processing=True),
                  seed=config.seed).to_dict())
             for state_name, num_ues in (("idle", 1), ("busy", config.busy_ues))
             for marker in ("none", "l4span")]
    if workers is not None:
        workers = min(workers, os.cpu_count() or 1)
    runner = SweepRunner(workers=workers, progress=progress)
    return runner.map(_run_cell, cells)


def overhead_summary(rows: list[dict]) -> list[dict]:
    """Relative overhead of L4Span versus the plain RAN, per state."""
    out = []
    for state in ("idle", "busy"):
        baseline = next(r for r in rows
                        if r["state"] == state and r["marker"] == "none")
        with_l4span = next(r for r in rows
                           if r["state"] == state and r["marker"] == "l4span")
        cpu_overhead = 0.0
        if baseline["wall_seconds"] > 0:
            cpu_overhead = 100.0 * (with_l4span["wall_seconds"]
                                    - baseline["wall_seconds"]) \
                / baseline["wall_seconds"]
        memory_overhead = 0.0
        if baseline["peak_memory_mb"] > 0:
            memory_overhead = 100.0 * (with_l4span["peak_memory_mb"]
                                       - baseline["peak_memory_mb"]) \
                / baseline["peak_memory_mb"]
        out.append({"state": state,
                    "cpu_overhead_pct": cpu_overhead,
                    "memory_overhead_pct": memory_overhead,
                    "handler_share_pct": with_l4span["handler_share_pct"]})
    return out
