"""Fig. 13 -- interactive video congestion control (SCReAM and UDP Prague).

Several UEs run concurrent interactive-video downlinks under static,
pedestrian and vehicular channels; the metric is per-flow RTT and throughput
with and without L4Span.  Both algorithms run over UDP, so L4Span uses
downlink IP-ECN marking (no feedback short-circuiting), as in the paper.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.api import ScenarioSpec, run
from repro.metrics.stats import box_stats
from repro.workloads.video import interactive_video_flows


@dataclass
class InteractiveConfig:
    """Scaled-down interactive-application grid."""

    cc_names: tuple = ("scream", "udp_prague")
    channels: tuple = ("static", "pedestrian", "vehicular")
    markers: tuple = ("none", "l4span")
    num_ues: int = 4
    duration_s: float = 6.0
    seed: int = 17


def run_fig13(config: Optional[InteractiveConfig] = None) -> list[dict]:
    """Run the interactive-video grid; one row per configuration."""
    config = config if config is not None else InteractiveConfig()
    rows = []
    for cc, channel, marker in itertools.product(
            config.cc_names, config.channels, config.markers):
        flows = interactive_video_flows(config.num_ues, cc_name=cc)
        result = run(ScenarioSpec(
            num_ues=config.num_ues, duration_s=config.duration_s,
            cc_name=cc, marker=marker, channel_profile=channel,
            flows=flows, wan_rtt=0.02, seed=config.seed))
        rtt = box_stats(result.all_rtt_samples())
        per_ue = [f.goodput_mbps for f in result.flows]
        rows.append({
            "cc": cc, "channel": channel, "l4span": marker == "l4span",
            "rtt_median_ms": rtt.median * 1e3,
            "rtt_p90_ms": rtt.p90 * 1e3,
            "per_ue_tput_mbps": box_stats(per_ue).median,
        })
    return rows
