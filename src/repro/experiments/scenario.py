"""The generic 5G scenario builder used by every experiment harness.

A scenario is described declaratively by a
:class:`~repro.experiments.spec.ScenarioSpec` (``ScenarioConfig`` is the
historical alias) and wires, for each flow:

    content server (CC sender)
        -> WAN delay pipe (half the flow's WAN RTT)
        -> [optional wired middlebox whose rate can be throttled]
        -> 5G core (UPF)
        -> serving gNB CU-UP (marker: none / L4Span / TC-RAN / RAN-DualPi2)
        -> F1-U -> DU RLC queue -> MAC/PHY -> UE
        -> client receiver
        -> uplink (UE grant-cycle delay) -> gNB CU (marker sees the ACK)
        -> 5G core -> WAN delay pipe -> back to the sender

One scenario may hold several cells (gNBs) sharing the single 5G core; each
UE attaches to the cell named by its :class:`~repro.experiments.spec.UeSpec`,
with its own channel profile, SNR and RLC configuration — and may *move*
between cells mid-run when the spec's ``mobility`` block is enabled (a
:class:`~repro.ran.mobility.MobilityManager` executes the handovers and the
result carries one record per handover).  The builder runs the
discrete-event simulation for the configured duration, collecting one-way
delays, RTTs, throughput, RLC queue occupancy and the delay breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cc.base import Sender
from repro.cc.factory import is_udp_algorithm, make_receiver, make_sender
from repro.channel.profiles import make_channel
from repro.core.factory import make_marker
from repro.core.l4span import L4SpanLayer
from repro.experiments.spec import (CellSpec, ScenarioSpec, UeSpec)
from repro.metrics.collectors import (DelayBreakdownAccumulator,
                                      OwdCollector, ProgressReporter,
                                      QueueSampler, RateEstimationProbe,
                                      ThroughputCollector, TimeSeries,
                                      merge_numeric_summaries)
from repro.metrics.stats import box_stats, summarize
from repro.net.addresses import FiveTuple
from repro.net.packet import Packet
from repro.net.pipe import DelayPipe
from repro.net.router import BottleneckRouter
from repro.ran.core import CORE_PROCESSING_DELAY, FiveGCore
from repro.ran.gnb import GNodeB
from repro.ran.identifiers import RlcMode
from repro.ran.mac import resolve_scheduler
from repro.ran.mobility import MobilityManager, MobilityTopology
from repro.ran.ue import UeConfig, UeContext
from repro.sim.engine import Simulator
from repro.units import mbps, to_mbps
from repro.workloads.flows import FlowSpec

def __getattr__(name: str):
    """Deprecated module attributes (PEP 562).

    ``ScenarioConfig`` was the pre-spec name of :class:`ScenarioSpec`; the
    alias still resolves (pickled configs and old scripts keep working) but
    now warns — new code should use :mod:`repro.api` (or ``ScenarioSpec``
    directly).  Removal is noted in ``docs/service.md``.
    """
    if name == "ScenarioConfig":
        import warnings
        warnings.warn(
            "ScenarioConfig is a deprecated alias of ScenarioSpec and will "
            "be removed; use the repro.api facade (repro.api.ScenarioSpec, "
            "repro.api.run) instead", DeprecationWarning, stacklevel=2)
        return ScenarioSpec
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class FlowResult:
    """Per-flow measurements extracted after a run."""

    flow_id: int
    ue_id: int
    cc_name: str
    label: str
    owd_samples: list[float]
    rtt_samples: list[float]
    goodput_bytes_per_s: float
    completion_time: Optional[float]
    congestion_events: int
    marked_fraction: float
    throughput_series: TimeSeries

    @property
    def goodput_mbps(self) -> float:
        """Average received rate in Mbit/s."""
        return to_mbps(self.goodput_bytes_per_s)

    def owd_box(self):
        """Box statistics (median/quartiles/whiskers) of the one-way delay."""
        return box_stats(self.owd_samples)

    def rtt_box(self):
        """Box statistics of the RTT samples."""
        return box_stats(self.rtt_samples)


@dataclass
class ScenarioResult:
    """Everything an experiment harness needs after one run."""

    config: ScenarioSpec
    flows: list[FlowResult]
    queue_length_samples: list[int]
    queue_length_by_drb: dict[str, list[int]]
    delay_breakdown: dict[str, float]
    marker_summary: dict
    per_ue_throughput: dict[int, float]
    rate_estimation_errors: list[float]
    duration_s: float
    events_processed: int
    #: One dict per executed handover (``ue_id``, ``time``, ``from_cell``,
    #: ``to_cell``, forward/flush counts, ``completed_at`` and the measured
    #: per-flow ``data_gap_s``); empty without mobility.
    handovers: list = field(default_factory=list)
    #: Synchronizer statistics of a sharded run (window count, boundary
    #: exchanges, adaptive flag); empty for single-loop runs.
    sharding_stats: dict = field(default_factory=dict)
    #: Aggregate background-population counters summed over cells
    #: (``n_background``, ``arrival_bytes``, ``served_bytes``,
    #: ``backlog_bytes``, ``active_ue_seconds``); empty without a population.
    background: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def flow(self, flow_id: int) -> FlowResult:
        """Look up one flow's results."""
        for flow in self.flows:
            if flow.flow_id == flow_id:
                return flow
        raise KeyError(f"no flow {flow_id} in result")

    def flows_by_label(self, label: str) -> list[FlowResult]:
        """All flows tagged with ``label`` by the workload."""
        return [f for f in self.flows if f.label == label]

    def all_owd_samples(self) -> list[float]:
        """One-way delay samples pooled across flows."""
        merged: list[float] = []
        for flow in self.flows:
            merged.extend(flow.owd_samples)
        return merged

    def all_rtt_samples(self) -> list[float]:
        """RTT samples pooled across flows."""
        merged: list[float] = []
        for flow in self.flows:
            merged.extend(flow.rtt_samples)
        return merged

    def median_owd_ms(self) -> float:
        """Median one-way delay across all flows, in milliseconds."""
        samples = self.all_owd_samples()
        return box_stats(samples).median * 1e3 if samples else float("nan")

    def total_goodput_mbps(self) -> float:
        """Sum of all flows' average goodput in Mbit/s."""
        return sum(f.goodput_mbps for f in self.flows)

    def background_throughput_mbps(self) -> float:
        """Aggregate served rate of the background population, Mbit/s."""
        if not self.background or self.duration_s <= 0:
            return 0.0
        return to_mbps(self.background.get("served_bytes", 0.0)
                       / self.duration_s)

    def simulated_ue_seconds(self) -> float:
        """Total simulated UE-time of this run (foreground + background).

        Dividing by the wall-clock run time yields the bench metric
        *simulated-UE-seconds per second* -- the scale measure the dense-cell
        population kernel is built for.
        """
        foreground = len(self.config.resolved_ues())
        cells = len(self.config.resolved_cells())
        background = self.config.population.n_background * cells
        return (foreground + background) * self.duration_s

    def mean_per_ue_throughput_mbps(self) -> float:
        """Mean per-UE average received rate in Mbit/s."""
        if not self.per_ue_throughput:
            return 0.0
        return to_mbps(sum(self.per_ue_throughput.values())
                       / len(self.per_ue_throughput))

    def summary(self) -> dict:
        """Compact dictionary summary used by reports and the quickstart."""
        owd = summarize(self.all_owd_samples())
        rtt = summarize(self.all_rtt_samples())
        return {
            "label": self.config.label(),
            "median_owd_ms": owd.get("median", float("nan")) * 1e3
            if owd.get("count") else float("nan"),
            "p90_owd_ms": owd.get("p90", float("nan")) * 1e3
            if owd.get("count") else float("nan"),
            "median_rtt_ms": rtt.get("median", float("nan")) * 1e3
            if rtt.get("count") else float("nan"),
            "total_goodput_mbps": self.total_goodput_mbps(),
            "mean_queue_sdus": (sum(self.queue_length_samples)
                                / len(self.queue_length_samples)
                                if self.queue_length_samples else 0.0),
            "marked_packets": self.marker_summary.get("marked_packets", 0),
            "background_ues": self.background.get("n_background", 0),
            "background_goodput_mbps": self.background_throughput_mbps(),
            "events": self.events_processed,
        }


def ue_ip_address(ue_id: int) -> str:
    """The deterministic client IP a UE's flows terminate at.

    A pure function of the UE id, so the sharded runtime's boundary router
    can rebuild the address map without building the scenarios.
    """
    return f"10.45.0.{(ue_id % 250) + 2}"


class BuiltScenario:
    """A wired-up scenario ready to run (exposed for advanced tests)."""

    def __init__(self, config: ScenarioSpec) -> None:
        self.config = config.validate()
        self.sim = Simulator(seed=config.seed)
        #: The engine backend executing the per-slot hot loops (see
        #: repro.sim.backends; the spec's engine block or $REPRO_ENGINE).
        self.engine_backend = config.engine.make_backend()
        marker_name = config.resolved_marker()
        self.cell_specs: list[CellSpec] = config.resolved_cells()
        self.markers: dict[int, object] = {}
        self.gnbs: dict[int, GNodeB] = {}
        for cell_spec in self.cell_specs:
            marker = make_marker(marker_name, self.sim,
                                 l4span_config=config.l4span_config)
            name = ("gnb" if cell_spec.cell_id == 0
                    else f"gnb{cell_spec.cell_id}")
            gnb = GNodeB(self.sim, cell=cell_spec.radio,
                         scheduler_policy=resolve_scheduler(cell_spec.scheduler),
                         marker=marker, air_config=cell_spec.air, name=name,
                         engine_backend=self.engine_backend)
            self.markers[cell_spec.cell_id] = marker
            self.gnbs[cell_spec.cell_id] = gnb
        first_cell = self.cell_specs[0].cell_id
        #: The first cell's gNB / marker (the whole scenario's, when there is
        #: only one cell) — the view most harnesses and tests use.
        self.gnb = self.gnbs[first_cell]
        self.marker = self.markers[first_cell]
        self.core = FiveGCore(self.sim)
        for gnb in self.gnbs.values():
            gnb.uplink_sink = _UplinkAdapter(self.core)
        #: Per-cell aggregated background populations; empty when the spec's
        #: population block is disabled (the numpy kernel is never imported).
        self.backgrounds: dict[int, object] = {}
        if config.population.enabled:
            from repro.ran.background import BackgroundPopulation
            for cell_spec in self.cell_specs:
                gnb = self.gnbs[cell_spec.cell_id]
                population = BackgroundPopulation(
                    self.sim, cell_spec.cell_id, gnb.cell, config.population,
                    marker=self.markers[cell_spec.cell_id])
                gnb.du.mac.attach_background(population)
                self.backgrounds[cell_spec.cell_id] = population
        self.ues: dict[int, UeContext] = {}
        self.ue_specs: dict[int, UeSpec] = {ue.ue_id: ue
                                            for ue in config.resolved_ues()}
        self.senders: dict[int, Sender] = {}
        self.receivers: dict[int, object] = {}
        self.flow_specs: list[FlowSpec] = config.resolved_flows()
        self.owd = OwdCollector()
        self.throughput = ThroughputCollector(window=config.throughput_window)
        self.breakdown = DelayBreakdownAccumulator()
        self.queue_sampler = QueueSampler(self.sim, list(self.gnbs.values()),
                                          interval=config.queue_sample_interval)
        self.rate_probe: Optional[RateEstimationProbe] = None
        #: Live-metric snapshot emitter; None until ``attach_progress``.
        self.progress_reporter: Optional[ProgressReporter] = None
        self._owd_callbacks: dict[int, object] = {}
        self._build_ues()
        self._build_flows()
        #: Executes the spec's handover schedule; None without mobility.
        #: The sharded runtime builds its own manager per shard instead
        #: (sub-specs carry mobility stripped), so this stays single-loop.
        self.mobility: Optional[MobilityManager] = None
        if config.mobility.enabled:
            self.mobility = MobilityManager(
                self, mobility_topology(config), config.mobility,
                commit_lag=snr_commit_lag(config))
        if config.rate_probe and isinstance(self.marker, L4SpanLayer):
            self.rate_probe = RateEstimationProbe(self.sim, self.gnb,
                                                  self.marker)
        self._wired: Optional[BottleneckRouter] = None
        if config.wired_bottleneck_mbps is not None:
            self._insert_wired_bottleneck()

    # ------------------------------------------------------------------ #
    def _ue_ip(self, ue_id: int) -> str:
        return ue_ip_address(ue_id)

    def build_mobile_ue(self, ue_spec: UeSpec, cell_id: int,
                        stream_tag: str = "") -> UeContext:
        """Build a UE context attached to ``cell_id``'s radio environment.

        ``stream_tag`` qualifies every per-UE random stream; the initial
        attach uses ``""`` (the historical names), handover re-attachments
        use ``"#aN"`` so the draw sequences are identical between the
        single loop and any shard split.
        """
        gnb = self.gnbs[cell_id]
        channel = make_channel(
            ue_spec.channel_profile,
            rng=self.sim.random.stream(
                f"channel-ue{ue_spec.ue_id}{stream_tag}"),
            mean_snr_db=ue_spec.mean_snr_db,
            carrier_ghz=gnb.cell.carrier_ghz,
            ue_index=ue_spec.ue_id)
        rlc_mode = (RlcMode.AM if ue_spec.rlc_mode.lower() == "am"
                    else RlcMode.UM)
        ue_config = UeConfig(ue_id=ue_spec.ue_id,
                             channel_profile=ue_spec.channel_profile,
                             rlc_mode=rlc_mode,
                             rlc_queue_sdus=ue_spec.rlc_queue_sdus,
                             separate_drbs=ue_spec.separate_drbs)
        return UeContext(self.sim, ue_config, channel, stream_tag=stream_tag)

    def register_ue_route(self, ue_id: int, gnb: GNodeB) -> None:
        """(Re-)point the core's downlink route for a UE at ``gnb``."""
        self.core.register_ue_address(self._ue_ip(ue_id), gnb, ue_id)

    def invalidate_samplers(self) -> None:
        """Topology changed (handover): periodic samplers must re-scan."""
        self.queue_sampler.invalidate()

    def _build_ues(self) -> None:
        for ue_spec in self.ue_specs.values():
            ue = self.build_mobile_ue(ue_spec, ue_spec.cell_id)
            self.gnbs[ue_spec.cell_id].attach_ue(ue)
            self.register_ue_route(ue_spec.ue_id, self.gnbs[ue_spec.cell_id])
            self.ues[ue_spec.ue_id] = ue

    def _forward_entry_sink(self):
        """The component WAN pipes feed into (wired middlebox or the core)."""
        return self._wired if self._wired is not None else self.core

    def _insert_wired_bottleneck(self) -> None:
        config = self.config
        self._wired = BottleneckRouter(
            self.sim, rate=mbps(config.wired_bottleneck_mbps),
            sink=self.core, queue_bytes=1_500_000, name="wired-middlebox")
        # Re-point every already-built WAN pipe at the middlebox.
        for pipe in self._wan_pipes:
            pipe.sink = self._wired
        for start_time, rate_mbps in config.wired_bottleneck_schedule:
            self.sim.schedule_at(start_time, self._wired.set_rate,
                                 mbps(rate_mbps))

    def _build_flows(self) -> None:
        config = self.config
        self._wan_pipes: list[DelayPipe] = []
        for spec in self.flow_specs:
            wan_rtt = spec.wan_rtt if spec.wan_rtt is not None else config.wan_rtt
            one_way = wan_rtt / 2.0
            protocol = "udp" if is_udp_algorithm(spec.cc_name) else "tcp"
            five_tuple = FiveTuple(src_ip="10.0.0.1", src_port=443,
                                   dst_ip=self._ue_ip(spec.ue_id),
                                   dst_port=50_000 + spec.flow_id,
                                   protocol=protocol)
            forward = DelayPipe(self.sim, one_way, sink=self.core,
                                name=f"wan-dl-{spec.flow_id}")
            self._wan_pipes.append(forward)
            sender = make_sender(spec.cc_name, self.sim, spec.flow_id,
                                 five_tuple, path=forward,
                                 flow_bytes=spec.flow_bytes)
            self.senders[spec.flow_id] = sender
            self.attach_flow_endpoint(spec, self.ues[spec.ue_id])
            reverse = DelayPipe(self.sim, one_way, sink=_SenderAdapter(sender),
                                name=f"wan-ul-{spec.flow_id}")
            self.core.register_uplink_route(spec.flow_id, reverse)
            self.sim.schedule_at(spec.start_time, sender.start)
            if spec.stop_time is not None:
                self.sim.schedule_at(spec.stop_time, sender.stop)

    def attach_flow_endpoint(self, spec: FlowSpec, ue: UeContext):
        """Create (or re-create, on handover) a flow's client-side receiver.

        The receiver is registered on ``ue`` and recorded in
        :attr:`receivers`; its measurement callback feeds this scenario's
        collectors.  Mobility re-invokes this at every arrival -- the fresh
        receiver then adopts the transferred transport state.
        """
        owd_cb = self._owd_callbacks.get(spec.flow_id)
        if owd_cb is None:
            owd_cb = self._make_owd_callback(spec)
            self._owd_callbacks[spec.flow_id] = owd_cb
        receiver = make_receiver(spec.cc_name, self.sim, spec.flow_id,
                                 send_feedback=ue.send_uplink,
                                 owd_callback=owd_cb)
        ue.register_receiver(spec.flow_id, receiver)
        self.receivers[spec.flow_id] = receiver
        return receiver

    def _make_owd_callback(self, spec: FlowSpec):
        def callback(owd: float, packet: Packet) -> None:
            now = self.sim.now
            if now >= self.config.warmup_s:
                self.owd.record(spec.flow_id, owd, now)
                self.breakdown.record_packet(packet, now)
            self.throughput.record(spec.flow_id, packet.size, now)
        return callback

    # ------------------------------------------------------------------ #
    def _marker_for_flow(self, spec: FlowSpec):
        """The marker of the cell serving the flow's UE."""
        return self.markers[self.ue_specs[spec.ue_id].cell_id]

    def flow_mark_counts(self) -> dict[int, tuple[int, int]]:
        """Per-flow ``(marked, downlink)`` packet counts across *all* cells.

        A mobile flow leaves one :class:`FlowRecord` behind in every cell it
        visited, so its figure-level ``marked_fraction`` must merge them; the
        flow id is recovered from the record's five-tuple (``dst_port``
        encodes it), which also covers shard scenarios serving a visiting UE
        whose flow spec lives on another shard.
        """
        counts: dict[int, list[int]] = {}
        for marker in self.markers.values():
            if not isinstance(marker, L4SpanLayer):
                continue
            for five_tuple, record in marker.flows.items():
                flow_id = five_tuple.dst_port - 50_000
                entry = counts.setdefault(flow_id, [0, 0])
                entry[0] += record.marked_packets
                entry[1] += record.downlink_packets
        return {flow_id: (marked, downlink)
                for flow_id, (marked, downlink) in counts.items()}

    def marker_cell_summaries(self) -> list[tuple[int, dict]]:
        """Per-cell ``(cell_id, summary)`` pairs, in cell declaration order."""
        def one(marker) -> dict:
            if hasattr(marker, "summary"):
                return marker.summary()
            return {"marked_packets": getattr(marker, "marked_packets", 0)}
        return [(cell.cell_id, one(self.markers[cell.cell_id]))
                for cell in self.cell_specs]

    def _marker_summary(self) -> dict:
        return merge_numeric_summaries(
            [summary for _cell, summary in self.marker_cell_summaries()])

    def attach_progress(self, callback,
                        interval: float = 0.25) -> ProgressReporter:
        """Emit live per-flow metric snapshots to ``callback`` while running.

        The progress hook behind ``repro.api.run(..., progress=...)`` and
        the scenario service's event stream; see
        :class:`repro.metrics.collectors.ProgressReporter` for the snapshot
        shape.  The callback runs inside the event loop and must not block.
        """
        if self.progress_reporter is not None:
            self.progress_reporter.stop()
        self.progress_reporter = ProgressReporter(
            self.sim, self.throughput, callback, interval=interval)
        return self.progress_reporter

    def stop_collectors(self) -> None:
        """Stop periodic machinery (MAC clocks, samplers, probes)."""
        for gnb in self.gnbs.values():
            gnb.stop()
        self.queue_sampler.stop()
        if self.mobility is not None:
            self.mobility.stop()
        if self.rate_probe is not None:
            self.rate_probe.stop()
        if self.progress_reporter is not None:
            self.progress_reporter.stop()

    def run(self) -> ScenarioResult:
        """Run the simulation and collect results."""
        events = self.sim.run(until=self.config.duration_s)
        if self.progress_reporter is not None:
            # Instrumentation must be invisible in the result document:
            # identical runs with and without a progress hook report the
            # same event count (the reporter's own ticks are not workload).
            events -= self.progress_reporter.ticks
        self.stop_collectors()
        return self.collect(events)

    def collect(self, events: int) -> ScenarioResult:
        """Package the collectors' measurements into a ScenarioResult."""
        config = self.config
        flow_results: list[FlowResult] = []
        mark_counts = self.flow_mark_counts()
        for spec in self.flow_specs:
            sender = self.senders[spec.flow_id]
            owd_samples = self.owd.samples.get(spec.flow_id, [])
            duration = config.duration_s - spec.start_time
            if spec.stop_time is not None:
                duration = min(duration, spec.stop_time - spec.start_time)
            goodput = self.throughput.average_rate(
                spec.flow_id, duration=max(duration, 1e-9))
            marked, downlink = mark_counts.get(spec.flow_id, (0, 0))
            marked_fraction = marked / downlink if downlink else 0.0
            flow_results.append(FlowResult(
                flow_id=spec.flow_id, ue_id=spec.ue_id, cc_name=spec.cc_name,
                label=spec.label, owd_samples=owd_samples,
                rtt_samples=list(sender.stats.rtt_samples),
                goodput_bytes_per_s=goodput,
                completion_time=sender.stats.completion_time,
                congestion_events=sender.stats.congestion_events,
                marked_fraction=marked_fraction,
                throughput_series=self.throughput.series.get(spec.flow_id,
                                                             TimeSeries())))
        per_ue: dict[int, float] = {}
        for spec in self.flow_specs:
            per_ue.setdefault(spec.ue_id, 0.0)
            per_ue[spec.ue_id] += self.throughput.total_bytes.get(
                spec.flow_id, 0) / max(config.duration_s, 1e-9)
        handovers = []
        if self.mobility is not None:
            handovers = [dict(record) for record in self.mobility.records]
            attach_data_gaps(
                handovers, self.owd.sample_times,
                {spec.flow_id: spec.ue_id for spec in self.flow_specs})
        background: dict = {}
        if self.backgrounds:
            from repro.ran.background import merge_background_summaries
            background = merge_background_summaries(
                [population.summary()
                 for population in self.backgrounds.values()])
        return ScenarioResult(
            config=config,
            flows=flow_results,
            queue_length_samples=self.queue_sampler.all_length_samples(),
            queue_length_by_drb=dict(self.queue_sampler.length_samples),
            delay_breakdown=self.breakdown.averages(),
            marker_summary=self._marker_summary(),
            per_ue_throughput=per_ue,
            rate_estimation_errors=(self.rate_probe.errors_percent
                                    if self.rate_probe is not None else []),
            duration_s=config.duration_s,
            events_processed=events,
            handovers=handovers,
            background=background)


def min_snr_commit_lag(spec: ScenarioSpec) -> float:
    """The smallest decide-to-commit lag a shard split can honour exactly.

    One conservative lookahead (the barrier that publishes the decision to
    every shard) plus the longest WAN one-way leg (the latest-resolving
    routing lookup in flight when the decision lands) plus the core
    processing delay (a strict safety margin, so lookups at exactly the
    commit time always see the adopted itinerary first).
    """
    rtts = [flow.wan_rtt if flow.wan_rtt is not None else spec.wan_rtt
            for flow in spec.resolved_flows()]
    if not rtts:
        rtts = [spec.wan_rtt]
    lookahead = max(min(rtts) / 2.0, 1e-4)
    return lookahead + max(rtts) / 2.0 + CORE_PROCESSING_DELAY


def snr_commit_lag(spec: ScenarioSpec) -> float:
    """The decide-to-commit lag of this spec's SNR-triggered handovers.

    The spec's ``mobility.commit_lag_s`` override, or the computed safe
    minimum (:func:`min_snr_commit_lag`).  The single loop and the sharded
    runtime both resolve the lag through this function, which is what makes
    their handover timelines — and on static channels their per-flow
    metrics — identical.
    """
    if spec.mobility.commit_lag_s is not None:
        return spec.mobility.commit_lag_s
    return min_snr_commit_lag(spec)


def mobility_topology(spec: ScenarioSpec) -> MobilityTopology:
    """Resolve a spec's mobility block into the manager's full-scenario view.

    Shared by the single loop (``BuiltScenario``) and the sharded runtime
    (which builds one manager per shard from the *full* spec).
    """
    itineraries: dict[int, list[tuple[float, int]]] = {}
    ue_specs = {ue.ue_id: ue for ue in spec.resolved_ues()}
    for ue_id, ue in ue_specs.items():
        itineraries[ue_id] = [(0.0, ue.cell_id)]
    for ho in spec.mobility.handovers:
        itineraries[ho.ue_id].append((ho.time, ho.target_cell))
    flows_by_ue: dict[int, list[FlowSpec]] = {}
    for flow in spec.resolved_flows():
        flows_by_ue.setdefault(flow.ue_id, []).append(flow)
    return MobilityTopology(
        itineraries=itineraries, ue_specs=ue_specs, flows_by_ue=flows_by_ue,
        cells_order=[cell.cell_id for cell in spec.resolved_cells()])


def attach_data_gaps(handovers: list[dict],
                     owd_times_by_flow: dict[int, list[float]],
                     flow_ues: dict[int, int]) -> None:
    """Annotate handover records with the measured per-flow delivery gap.

    For each handover at time ``t`` and each flow terminating at the moved
    UE, the gap is the span between the last delivery before ``t`` and the
    first delivery at or after ``t`` -- the observable service interruption.
    Computed from the (post-warmup) one-way-delay sample times, identically
    for single-loop and merged sharded results.
    """
    for record in handovers:
        gaps: dict[int, float] = {}
        t = record["time"]
        for flow_id, ue_id in flow_ues.items():
            if ue_id != record["ue_id"]:
                continue
            times = owd_times_by_flow.get(flow_id, [])
            before = max((x for x in times if x < t), default=None)
            after = min((x for x in times if x >= t), default=None)
            if before is not None and after is not None:
                gaps[flow_id] = after - before
        record["data_gap_s"] = gaps


class _SenderAdapter:
    """Adapts a sender's ``receive`` to the PacketSink protocol."""

    def __init__(self, sender: Sender) -> None:
        self._sender = sender

    def receive(self, packet: Packet) -> None:
        self._sender.receive(packet)


class _UplinkAdapter:
    """Routes uplink packets leaving a gNB into the shared core."""

    def __init__(self, core: FiveGCore) -> None:
        self._core = core

    def receive(self, packet: Packet) -> None:
        self._core.receive_uplink(packet)


def build_scenario(config: ScenarioSpec) -> BuiltScenario:
    """Construct (but do not run) a scenario."""
    return BuiltScenario(config)


def run_scenario(config: ScenarioSpec, progress=None,
                 progress_interval_s: float = 0.25) -> ScenarioResult:
    """Build and run a scenario, returning its results.

    When the spec's ``sharding`` block asks for it (and the scenario is
    shardable), cells are distributed over worker processes by the sharded
    runtime; the merged result carries the exact single-loop report schema.

    ``progress`` (optional) receives live metric snapshots every
    ``progress_interval_s`` simulated seconds: per-flow snapshots from the
    single event loop (see :meth:`BuiltScenario.attach_progress`), coarser
    per-barrier-window snapshots from the sharded runtime (worker processes
    own the flow state mid-run).  Measured results are unaffected either
    way.
    """
    if config.sharding.enabled:
        from repro.experiments.sharded import run_scenario_sharded
        return run_scenario_sharded(config, progress=progress,
                                    progress_interval_s=progress_interval_s)
    built = build_scenario(config)
    if progress is not None:
        built.attach_progress(progress, interval=progress_interval_s)
    return built.run()


def run_scenario_dict(spec_dict: dict) -> ScenarioResult:
    """Build and run a scenario from a plain spec dict (sweep-cell form)."""
    return run_scenario(ScenarioSpec.from_dict(spec_dict))
