"""Fig. 19 -- impact of the sojourn-time threshold tau_s.

Sweep the marking threshold from 1 ms to 100 ms with varying UE counts and
report each configuration's RTT and summed rate; the paper selects 10 ms as
the point where throughput has recovered while RTT is still low.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.config import L4SpanConfig
from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import run_scenario
from repro.experiments.spec import ScenarioSpec
from repro.metrics.stats import box_stats
from repro.units import ms


@dataclass
class ThresholdSweepConfig:
    """Scaled-down threshold sweep."""

    thresholds_ms: tuple = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)
    ue_counts: tuple = (1,)
    cc_name: str = "prague"
    duration_s: float = 6.0
    seed: int = 43


def _run_cell(cell: tuple) -> dict:
    """Spawn-safe adapter: one (threshold_ms, spec dict) grid cell."""
    threshold_ms, spec_dict = cell
    spec = ScenarioSpec.from_dict(spec_dict)
    result = run_scenario(spec)
    rtt = box_stats(result.all_rtt_samples())
    return {
        "threshold_ms": threshold_ms, "ues": spec.num_ues,
        "rtt_mean_ms": rtt.mean * 1e3,
        "rate_sum_mbps": result.total_goodput_mbps(),
    }


def run_fig19(config: Optional[ThresholdSweepConfig] = None, workers: int = 1,
              progress: Optional[Callable[[int, int], None]] = None
              ) -> list[dict]:
    """Run the tau_s sweep; one row per (threshold, UE count)."""
    config = config if config is not None else ThresholdSweepConfig()
    cells = [(threshold_ms,
              ScenarioSpec(
                  num_ues=ues, duration_s=config.duration_s,
                  cc_name=config.cc_name, marker="l4span",
                  l4span_config=L4SpanConfig(
                      sojourn_threshold=ms(threshold_ms)),
                  seed=config.seed).to_dict())
             for threshold_ms, ues in itertools.product(config.thresholds_ms,
                                                        config.ue_counts)]
    runner = SweepRunner(workers=workers, progress=progress)
    return runner.map(_run_cell, cells)
