"""Fig. 21 -- L4Span per-event processing time.

Enables wall-clock instrumentation of the three L4Span handlers (downlink
packet, uplink packet, RAN feedback) during a busy multi-UE run and reports
their processing-time distributions.  Absolute numbers are Python-level (the
paper's C++ prototype finishes in 1-4 microseconds); the relevant comparison
is the relative cost of the three event types and the per-packet constancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import L4SpanConfig
from repro.api import ScenarioSpec
from repro.experiments.scenario import build_scenario
from repro.metrics.stats import cdf_points, percentile, summarize


@dataclass
class ProcessingConfig:
    """Scaled-down processing-time experiment."""

    num_ues: int = 4
    cc_name: str = "prague"
    duration_s: float = 4.0
    seed: int = 53


def run_fig21(config: Optional[ProcessingConfig] = None) -> list[dict]:
    """Measure handler processing times; one row per event type."""
    config = config if config is not None else ProcessingConfig()
    scenario = ScenarioSpec(
        num_ues=config.num_ues, duration_s=config.duration_s,
        cc_name=config.cc_name, marker="l4span",
        l4span_config=L4SpanConfig(measure_processing=True),
        seed=config.seed)
    built = build_scenario(scenario)
    built.run()
    rows = []
    for event_type, samples in built.marker.processing_times.items():
        micros = [s * 1e6 for s in samples]
        rows.append({
            "event": event_type,
            "count": len(micros),
            "median_us": percentile(micros, 50) if micros else float("nan"),
            "p97_us": percentile(micros, 97) if micros else float("nan"),
            "summary": summarize(micros),
            "cdf": cdf_points(micros, max_points=50),
        })
    return rows
