"""Experiment harnesses: one module per figure/table of the paper.

:mod:`repro.experiments.scenario` provides the generic scenario builder
(server <-> WAN <-> 5G core <-> gNB(+marker) <-> UEs <-> flows) that every
harness configures; the ``figXX_*`` modules encode each experiment's workload
and produce the rows/series the paper reports.
"""

from repro.experiments.presets import make_preset, preset_names
from repro.experiments.runner import (SweepRunner, derive_cell_seed,
                                      run_cells)
from repro.experiments.scenario import (FlowResult, ScenarioResult,
                                        build_scenario, run_scenario,
                                        run_scenario_dict)
from repro.experiments.sharded import (ShardPlan, build_shard_plan,
                                       run_scenario_sharded, split_spec)
from repro.experiments.spec import (CellSpec, ScenarioSpec, ShardingSpec,
                                    UeSpec)
from repro.experiments.wired import WiredScenarioConfig, run_wired_scenario


def __getattr__(name: str):
    """Forward the deprecated ``ScenarioConfig`` alias (with its warning).

    The alias lives behind a module ``__getattr__`` in
    :mod:`repro.experiments.scenario` so merely importing this package does
    not fire the :class:`DeprecationWarning`; only actually touching the
    name does.  Use :mod:`repro.api` (``repro.api.ScenarioSpec``) instead.
    """
    if name == "ScenarioConfig":
        from repro.experiments import scenario
        return scenario.ScenarioConfig
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ScenarioSpec",
    "CellSpec",
    "UeSpec",
    "ShardingSpec",
    "ShardPlan",
    "build_shard_plan",
    "run_scenario_sharded",
    "split_spec",
    "make_preset",
    "preset_names",
    "run_scenario_dict",
    "ScenarioConfig",
    "ScenarioResult",
    "FlowResult",
    "build_scenario",
    "run_scenario",
    "SweepRunner",
    "run_cells",
    "derive_cell_seed",
    "WiredScenarioConfig",
    "run_wired_scenario",
]
