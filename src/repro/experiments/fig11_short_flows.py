"""Fig. 11 -- short-lived flow completion time vs long-lived flow rate.

A 14 kB short flow starts while a long-lived flow of the same algorithm is
saturating the UE's bearer; the metric is the short flow's finish time (and
the long flow's retained throughput), with and without L4Span.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.api import ScenarioSpec, run
from repro.workloads.short_flows import DEFAULT_SLF_BYTES, short_long_mix


@dataclass
class ShortFlowConfig:
    """Scaled-down configuration of the SLF/LLF experiment."""

    cc_names: tuple = ("prague", "bbr2", "cubic")
    markers: tuple = ("none", "l4span")
    duration_s: float = 8.0
    slf_start: float = 4.0
    slf_bytes: int = DEFAULT_SLF_BYTES
    seed: int = 21


def run_fig11(config: Optional[ShortFlowConfig] = None) -> list[dict]:
    """Run the SLF/LLF grid; one row per (algorithm, ±L4Span)."""
    config = config if config is not None else ShortFlowConfig()
    rows = []
    for cc_name, marker in itertools.product(config.cc_names, config.markers):
        flows = short_long_mix(cc_name, slf_start=config.slf_start,
                               slf_bytes=config.slf_bytes)
        result = run(ScenarioSpec(
            num_ues=1, duration_s=config.duration_s, cc_name=cc_name,
            marker=marker, flows=flows, seed=config.seed))
        llf = result.flows_by_label("llf")[0]
        slf = result.flows_by_label("slf")[0]
        finish = None
        if slf.completion_time is not None:
            finish = slf.completion_time - config.slf_start
        rows.append({
            "cc": cc_name, "l4span": marker == "l4span",
            "slf_finish_time_ms": finish * 1e3 if finish is not None else None,
            "llf_rate_mbps": llf.goodput_mbps,
        })
    return rows
