"""Delta-debugging minimizer for failing fuzz specs.

A fuzz campaign's raw finding is a big random spec — three cells, five
flows, a middlebox schedule, mobility, a population block — of which
usually one or two ingredients actually matter.  :func:`minimize_spec`
greedily shrinks a failing spec to a local minimum: it repeatedly tries
structural reductions (drop a flow, drop a UE and its flows, drop a cell
and its UEs, zero a whole feature block, halve the duration, simplify
per-flow knobs) and keeps any candidate that still fails *the same way*.

"The same way" is decided by :func:`failure_signature`: the set of
``suite:`` prefixes :func:`repro.experiments.fuzz.check_spec` puts on its
violations.  Requiring signature overlap keeps the search from
degenerating into a *different* failure class — e.g. shrinking to one
cell trades a sharding mismatch for an "unexpected blocker" violation,
which is not the bug being minimized, so that candidate is rejected.

The search is deterministic (candidate order is fixed, the failing
predicate is expected to be a pure function of the spec) and memoizes
every candidate verdict by the spec's canonical JSON, so revisited specs
cost nothing.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, Iterator, Sequence

from repro.experiments.spec import (EngineSpec, MobilitySpec, PopulationSpec,
                                    ScenarioSpec)

__all__ = ["failure_signature", "minimize_spec"]

#: Violation strings are ``prefix: detail``; the prefix set is the
#: failure's class signature.
def failure_signature(violations: Sequence[str]) -> frozenset:
    """The set of ``suite:`` prefixes carried by ``violations``."""
    return frozenset(v.split(":", 1)[0].strip() for v in violations if v)


def _canonical(spec: ScenarioSpec) -> str:
    return json.dumps(spec.to_dict(), sort_keys=True)


def _normalized(spec: ScenarioSpec) -> ScenarioSpec:
    """Spec with its cells/UEs/flows made explicit, so passes can edit them."""
    return dataclasses.replace(
        spec, num_ues=0, cells=spec.resolved_cells(),
        ues=spec.resolved_ues(), flows=spec.resolved_flows())


# --------------------------------------------------------------------- #
# Reduction passes — each yields candidate specs, most aggressive first
# --------------------------------------------------------------------- #
def _drop_cells(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    cells = spec.resolved_cells()
    if len(cells) <= 1:
        return
    for drop in cells:
        kept_ues = [ue for ue in spec.resolved_ues()
                    if ue.cell_id != drop.cell_id]
        kept_ue_ids = {ue.ue_id for ue in kept_ues}
        yield dataclasses.replace(
            spec,
            cells=[cell for cell in cells if cell.cell_id != drop.cell_id],
            ues=kept_ues,
            flows=[flow for flow in spec.resolved_flows()
                   if flow.ue_id in kept_ue_ids])


def _drop_ues(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    ues = spec.resolved_ues()
    if len(ues) <= 1:
        return
    for drop in ues:
        yield dataclasses.replace(
            spec,
            ues=[ue for ue in ues if ue.ue_id != drop.ue_id],
            flows=[flow for flow in spec.resolved_flows()
                   if flow.ue_id != drop.ue_id])


def _drop_flows(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    flows = spec.resolved_flows()
    if len(flows) <= 1:
        return
    for drop in flows:
        yield dataclasses.replace(
            spec, flows=[flow for flow in flows
                         if flow.flow_id != drop.flow_id])


def _zero_blocks(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    if spec.mobility.enabled:
        yield dataclasses.replace(spec, mobility=MobilitySpec())
    if spec.wired_bottleneck_mbps is not None:
        yield dataclasses.replace(spec, wired_bottleneck_mbps=None,
                                  wired_bottleneck_schedule=[])
    if spec.wired_bottleneck_schedule:
        yield dataclasses.replace(spec, wired_bottleneck_schedule=[])
    if spec.population.n_background:
        yield dataclasses.replace(spec, population=PopulationSpec())
    if spec.engine != EngineSpec():
        yield dataclasses.replace(spec, engine=EngineSpec())
    profiles = {ue.channel_profile or spec.channel_profile
                for ue in spec.resolved_ues()}
    if profiles - {"static"}:
        yield dataclasses.replace(
            spec, channel_profile="static",
            ues=[dataclasses.replace(ue, channel_profile=None)
                 for ue in spec.resolved_ues()])


def _shorten(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    if spec.duration_s > 0.05:
        yield dataclasses.replace(
            spec, duration_s=round(max(spec.duration_s / 2, 0.05), 6))


def _simplify(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    flows = spec.resolved_flows()
    if any(flow.wan_rtt is not None for flow in flows):
        yield dataclasses.replace(
            spec, flows=[dataclasses.replace(flow, wan_rtt=None)
                         for flow in flows])
    if any(flow.start_time for flow in flows):
        yield dataclasses.replace(
            spec, flows=[dataclasses.replace(flow, start_time=0.0)
                         for flow in flows])
    if spec.seed:
        yield dataclasses.replace(spec, seed=0)


_PASSES = (_drop_cells, _drop_ues, _drop_flows, _zero_blocks, _shorten,
           _simplify)


def minimize_spec(spec: ScenarioSpec,
                  failing: Callable[[ScenarioSpec], Sequence[str]],
                  max_checks: int = 400) -> ScenarioSpec:
    """Shrink ``spec`` to a local minimum that still fails the same way.

    ``failing(spec)`` returns the violation list (empty = the spec
    passes) — typically :func:`repro.experiments.fuzz.check_spec` or a
    partial of it.  Raises :class:`ValueError` when the input spec does
    not fail at all.  ``max_checks`` bounds how many candidate specs are
    *evaluated* (cache hits and invalid candidates are free), so
    minimization cost stays predictable even for pathological predicates.
    """
    baseline = list(failing(spec))
    if not baseline:
        raise ValueError("minimize_spec needs a failing spec; "
                         "failing(spec) returned no violations")
    signature = failure_signature(baseline)
    verdicts: dict[str, bool] = {}
    checks = 0

    def still_fails(candidate: ScenarioSpec) -> bool:
        nonlocal checks
        key = _canonical(candidate)
        if key in verdicts:
            return verdicts[key]
        try:
            candidate.validate()
        except Exception:  # noqa: BLE001 - invalid reductions are skipped
            verdicts[key] = False
            return False
        if checks >= max_checks:
            return False
        checks += 1
        violations = failing(candidate)
        verdicts[key] = bool(violations) and bool(
            failure_signature(violations) & signature)
        return verdicts[key]

    current = _normalized(spec)
    verdicts[_canonical(current)] = True
    progress = True
    while progress and checks < max_checks:
        progress = False
        for reduction in _PASSES:
            # Re-run each pass until it stops helping: dropping one flow
            # often unlocks dropping another.
            reduced = True
            while reduced and checks < max_checks:
                reduced = False
                for candidate in reduction(current):
                    if still_fails(candidate):
                        current = _normalized(candidate)
                        reduced = progress = True
                        break
    return current
