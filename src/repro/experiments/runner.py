"""Parallel execution of experiment sweep grids.

Every grid-style harness in this package (the Fig. 9/24 TCP sweeps, the
Table 1 overhead grid, the threshold / rate-error / ablation sweeps) is a list
of *independent* simulation cells: a pure function of the cell description and
a seed.  :class:`SweepRunner` fans those cells out over a pool of worker
processes -- the same move a real testbed harness makes when it distributes
scenario files across machines -- and collects the results in grid order, so
a parallel sweep is bit-identical to a sequential one.

Design constraints:

* **Spawn-safe.**  Cell functions must be module-level (picklable by
  reference); the runner never relies on fork-inherited state, so it works
  under the ``spawn`` start method (macOS / Windows) as well as ``fork``.
* **Deterministic.**  Results are returned in the order the cells were given,
  regardless of completion order, and per-cell seeds (when the runner derives
  them) depend only on the master seed and the cell index -- never on worker
  scheduling.
* **Graceful fallback.**  ``workers=1`` runs in-process with zero
  multiprocessing overhead; platforms where no process pool can be created
  (no ``/dev/shm`` semaphores, restricted sandboxes) silently degrade to the
  sequential path instead of crashing the experiment.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Optional

from repro.sim.randomness import derive_seed

#: Environment variable consulted for the default worker count
#: (``python -m repro experiment --workers N`` overrides it).
WORKERS_ENV = "REPRO_SWEEP_WORKERS"

#: Environment variable overriding the multiprocessing start method.
START_METHOD_ENV = "REPRO_SWEEP_START_METHOD"

#: Environment variable overriding the host's core budget (defaults to
#: ``os.cpu_count()``): the cap on effective ``sweep workers x shards``
#: when both parallel layers are active on one host.
CORE_BUDGET_ENV = "REPRO_CORE_BUDGET"

#: Exported to worker processes while a parallel sweep runs, so nested
#: sharded scenarios (see :func:`repro.experiments.sharded.build_shard_plan`)
#: can divide the core budget by the number of sweep workers already active.
ACTIVE_WORKERS_ENV = "REPRO_SWEEP_ACTIVE_WORKERS"


def default_workers() -> int:
    """Worker count from :data:`WORKERS_ENV`, defaulting to 1 (sequential)."""
    try:
        return max(1, int(os.environ.get(WORKERS_ENV, "1")))
    except ValueError:
        return 1


def core_budget() -> int:
    """The host's core budget: :data:`CORE_BUDGET_ENV` or ``os.cpu_count()``.

    Both parallel layers (sweep workers, scenario shards) consult this so
    their product never oversubscribes one host; setting the environment
    variable raises (or lowers) the cap explicitly.
    """
    try:
        value = int(os.environ.get(CORE_BUDGET_ENV, "0"))
    except ValueError:
        value = 0
    if value > 0:
        return value
    return os.cpu_count() or 1


def active_sweep_workers() -> int:
    """Sweep workers currently active on this host (1 outside a sweep)."""
    try:
        return max(1, int(os.environ.get(ACTIVE_WORKERS_ENV, "1")))
    except ValueError:
        return 1


def derive_cell_seed(master_seed: int, index: int) -> int:
    """A per-cell seed that depends only on the master seed and cell index.

    Shares :func:`repro.sim.randomness.derive_seed` (under a ``cell<i>``
    label) so cells are decorrelated from each other and from the named
    streams inside any one cell.
    """
    return derive_seed(master_seed, f"cell{int(index)}")


class _PoolUnavailable(RuntimeError):
    """Internal marker: the process pool could not be created at all."""


def _call_cell(cell_fn: Callable, cell, seed) -> object:
    """Top-level trampoline so submitted work pickles under ``spawn``."""
    if seed is None:
        return cell_fn(cell)
    return cell_fn(cell, seed)


class SweepRunner:
    """Executes an iterable of independent sweep cells, optionally in parallel.

    Args:
        workers: number of worker processes.  ``1`` (the default) runs
            in-process; ``None`` uses all CPUs.
        master_seed: when given, each cell function is called as
            ``cell_fn(cell, seed)`` with a per-cell seed derived via
            :func:`derive_cell_seed`; otherwise as ``cell_fn(cell)``.
        start_method: multiprocessing start method (``"fork"``, ``"spawn"``,
            ``"forkserver"``); defaults to :data:`START_METHOD_ENV` or the
            platform default.
        progress: optional callback invoked as ``progress(done, total)``
            after every completed cell (from the coordinating process).

    Example::

        runner = SweepRunner(workers=4)
        rows = runner.map(run_one_cell, grid_cells)
    """

    def __init__(self, workers: Optional[int] = 1,
                 master_seed: Optional[int] = None,
                 start_method: Optional[str] = None,
                 progress: Optional[Callable[[int, int], None]] = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers))
        self.master_seed = master_seed
        self.start_method = (start_method
                             or os.environ.get(START_METHOD_ENV) or None)
        self.progress = progress

    # ------------------------------------------------------------------ #
    def map(self, cell_fn: Callable, cells: Iterable) -> list:
        """Run ``cell_fn`` over every cell; results in input order.

        ``cell_fn`` must be a module-level callable (so worker processes can
        import it) and must be pure: identical results for identical
        arguments, no reliance on shared mutable state.
        """
        cells = list(cells)
        if not cells:
            return []
        seeds: list = ([derive_cell_seed(self.master_seed, i)
                        for i in range(len(cells))]
                       if self.master_seed is not None
                       else [None] * len(cells))
        if self.workers == 1 or len(cells) == 1:
            return self._map_sequential(cell_fn, cells, seeds)
        try:
            return self._map_parallel(cell_fn, cells, seeds)
        except (_PoolUnavailable, BrokenProcessPool) as exc:
            # Platform cannot host a process pool (no semaphores, sandboxed
            # fork) or the workers died mid-sweep (OOM-killed, ...): degrade
            # to the sequential path.  Cells are pure, so re-running any
            # that already completed is safe and yields identical results.
            # Exceptions raised by the cell function itself are NOT caught
            # here -- they propagate from future.result() untouched.
            warnings.warn(
                f"sweep process pool unavailable ({exc!r}); re-running all "
                f"{len(cells)} cells sequentially in this process. If a "
                "worker was killed for memory, the same cell may exhaust "
                "this process too.", RuntimeWarning, stacklevel=2)
            return self._map_sequential(cell_fn, cells, seeds)

    # Backwards-friendly alias: a runner "runs" a sweep.
    run = map

    # ------------------------------------------------------------------ #
    def _map_sequential(self, cell_fn: Callable, cells: list,
                        seeds: list) -> list:
        results = []
        total = len(cells)
        for i, (cell, seed) in enumerate(zip(cells, seeds)):
            results.append(_call_cell(cell_fn, cell, seed))
            if self.progress is not None:
                self.progress(i + 1, total)
        return results

    def _map_parallel(self, cell_fn: Callable, cells: list,
                      seeds: list) -> list:
        total = len(cells)
        workers = min(self.workers, total)
        budget = core_budget()
        if workers > budget:
            warnings.warn(
                f"sweep workers={workers} exceeds the host's core budget "
                f"{budget}; clamping to {budget} worker(s) (override with "
                f"{CORE_BUDGET_ENV})", RuntimeWarning, stacklevel=3)
            workers = budget
        # Workers inherit the environment, so nested sharded scenarios see
        # how many sweep processes already share the core budget.
        previous = os.environ.get(ACTIVE_WORKERS_ENV)
        os.environ[ACTIVE_WORKERS_ENV] = str(workers)
        try:
            try:
                # Pool creation is the only step allowed to trigger the
                # sequential fallback; errors from cell functions must
                # surface.
                context = (multiprocessing.get_context(self.start_method)
                           if self.start_method
                           else multiprocessing.get_context())
                pool = ProcessPoolExecutor(max_workers=workers,
                                           mp_context=context)
            except (ImportError, NotImplementedError, OSError,
                    PermissionError) as exc:
                raise _PoolUnavailable(str(exc)) from exc
            with pool:
                futures = [pool.submit(_call_cell, cell_fn, cell, seed)
                           for cell, seed in zip(cells, seeds)]
                if self.progress is not None:
                    pending = set(futures)
                    done_count = 0
                    while pending:
                        done, pending = wait(pending,
                                             return_when=FIRST_COMPLETED)
                        done_count += len(done)
                        self.progress(done_count, total)
                # Ordered collection: grid order, not completion order.  Any
                # worker exception re-raises here, on the coordinating
                # process.
                return [future.result() for future in futures]
        finally:
            if previous is None:
                os.environ.pop(ACTIVE_WORKERS_ENV, None)
            else:
                os.environ[ACTIVE_WORKERS_ENV] = previous


def run_cells(cell_fn: Callable, cells: Iterable, workers: Optional[int] = 1,
              master_seed: Optional[int] = None,
              progress: Optional[Callable[[int, int], None]] = None) -> list:
    """Convenience wrapper: one-shot :class:`SweepRunner` invocation."""
    return SweepRunner(workers=workers, master_seed=master_seed,
                       progress=progress).map(cell_fn, cells)
