"""The declarative, serializable description of one scenario.

:class:`ScenarioSpec` is the single source of truth for what a simulation
run looks like: the radio cells sharing the 5G core, the UE population (with
per-UE channel, SNR, RLC and cell-attachment overrides), the transport flows
(with per-flow congestion control, schedule, transfer size and WAN RTT), the
in-RAN marker, the :class:`MobilitySpec` handover plan, the
:class:`ShardingSpec` process-split policy and every tunable the experiment
harnesses sweep.  The full field-by-field schema is documented (and
regression-checked against this module) in ``docs/scenarios.md``.

Three properties make it the currency of the whole experiment layer:

* **Declarative.**  Heterogeneous topologies — a congested cell next to a
  quiet one, pedestrian and vehicular UEs side by side, flows with distinct
  WAN RTTs — are plain data, not bespoke builder code.
* **Serializable.**  ``to_dict``/``from_dict`` (and the JSON wrappers) round
  trip exactly, so a sweep cell is a picklable dict, a scenario is a JSON
  file (``python -m repro scenario --spec file.json``) and presets are
  one-liners.
* **Validated.**  Component names are checked against the registries in
  :mod:`repro.registry`, so a typo fails fast with the list of choices
  instead of deep inside the build.

The historical ``ScenarioConfig`` name is a *deprecated* alias of this class
(it warns on access and will be removed; see ``docs/service.md``).  Every
field it had keeps its exact default, which is why pre-spec experiment
outputs are bit-identical.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.cc.factory import is_l4s_algorithm, is_udp_algorithm  # noqa: F401
from repro.channel.profiles import make_channel  # noqa: F401  (registration)
from repro.core.config import L4SpanConfig
from repro.core.factory import make_marker  # noqa: F401  (registration)
from repro.ran.cell import CellConfig
from repro.ran.identifiers import DEFAULT_RLC_QUEUE_SDUS
from repro.ran.mac import resolve_scheduler  # noqa: F401  (registration)
from repro.ran.phy import AirInterfaceConfig
from repro.registry import (CC_SENDERS, CHANNEL_PROFILES, MARKERS, SCHEDULERS,
                            UnknownComponentError)
from repro.sim.backends import (ENGINE_BACKENDS, EngineBackend,
                                default_engine_name, make_engine_backend)
from repro.units import ms
from repro.workloads.flows import FlowSpec

#: RLC modes understood by the RAN layer.
RLC_MODES = ("am", "um")


@dataclass
class CellSpec:
    """One gNB/cell of the scenario, sharing the single 5G core.

    Attributes:
        cell_id: identifier unique within the scenario; UEs attach by it.
        scheduler: MAC policy name overriding the scenario default, or None.
        radio: full radio configuration overriding the scenario default
            (bandwidth, PRBs, TDD pattern, carrier), or None.
        air: air-interface delay/HARQ configuration override, or None.
    """

    cell_id: int = 0
    scheduler: Optional[str] = None
    radio: Optional[CellConfig] = None
    air: Optional[AirInterfaceConfig] = None


#: Sharding modes understood by the sharded runtime.
SHARDING_MODES = ("off", "auto", "explicit")


@dataclass
class ShardingSpec:
    """How (and whether) to split a multi-cell scenario across processes.

    Attributes:
        mode: ``"off"`` runs the classic single event loop; ``"auto"``
            distributes cells round-robin over ``shards`` worker processes
            (defaulting to one shard per cell, capped at the CPU count);
            ``"explicit"`` places each cell on the shard named by ``map``.
        shards: worker count for ``"auto"`` mode, or None for the default.
        map: explicit ``cell_id -> shard index`` placement (``"explicit"``).
        adaptive_windows: when shards are genuinely coupled (mobility), let
            the synchronizer widen barrier windows while the handover
            schedule proves no boundary traffic can flow, instead of running
            one fixed-lookahead pipe round-trip per window for the whole run.
            Ignored for boundary-free splits (they run a single window).
    """

    mode: str = "off"
    shards: Optional[int] = None
    map: dict[int, int] = field(default_factory=dict)
    adaptive_windows: bool = True

    def __post_init__(self) -> None:
        # JSON object keys are strings; normalise back to int cell ids so a
        # spec deserialized from JSON compares equal to the original.
        self.map = {int(cell): int(shard) for cell, shard in self.map.items()}

    @property
    def enabled(self) -> bool:
        """True when this block asks for a sharded run."""
        if self.mode == "off":
            return False
        if self.mode == "auto":
            return self.shards is None or self.shards > 1
        return True

    def validate(self) -> "ShardingSpec":
        """Check mode/worker-count/map consistency."""
        if self.mode not in SHARDING_MODES:
            raise ValueError(f"unknown sharding mode {self.mode!r}; "
                             f"choose from {SHARDING_MODES}")
        if self.shards is not None and self.shards < 1:
            raise ValueError("sharding.shards must be >= 1")
        if self.mode == "explicit" and not self.map:
            raise ValueError("explicit sharding requires a cell->shard map")
        for cell, shard in self.map.items():
            if shard < 0:
                raise ValueError(f"cell {cell} mapped to negative shard {shard}")
        return self


#: Mobility modes understood by the handover subsystem.
MOBILITY_MODES = ("off", "schedule", "snr")

#: How a handover treats the RLC data still queued at the source cell.
HO_MODES = ("forward", "flush")


@dataclass
class HandoverSpec:
    """One scheduled inter-cell handover.

    Attributes:
        time: simulation time (seconds) at which the UE detaches from its
            current serving cell and begins attaching to ``target_cell``.
        ue_id: the UE that moves.
        target_cell: the cell it moves to.
    """

    time: float
    ue_id: int
    target_cell: int


@dataclass
class MobilitySpec:
    """Inter-cell mobility of the UE population (see :mod:`repro.ran.mobility`).

    Attributes:
        mode: ``"off"`` (no mobility), ``"schedule"`` (handovers listed in
            ``handovers`` execute at fixed times) or ``"snr"`` (a periodic
            monitor hands a degraded UE over to the next cell in declaration
            order; decided mid-run and committed ``commit_lag_s`` later, the
            two-phase protocol that keeps SNR mobility shardable).
        handovers: the schedule for ``"schedule"`` mode.
        interruption_s: detach-to-service gap: the target cell buffers
            arriving downlink data but grants the UE no air time until
            ``interruption_s`` after the handover fires (RACH + path switch).
        ho_mode: ``"forward"`` re-submits the source cell's queued RLC SDUs
            at the target cell (arriving ``interruption_s`` later, the Xn
            data-forwarding path); ``"flush"`` drops them (loss the transport
            must recover from).
        check_interval_s / snr_threshold_db / min_stay_s: the ``"snr"``
            monitor's sampling period, trigger level, and the minimum time a
            UE stays attached before it may move again (ping-pong damping;
            clamped to at least ``interruption_s``).
        ues: UEs the ``"snr"`` monitor watches (empty = every UE).
        commit_lag_s: decide-to-commit delay of an SNR-triggered handover
            (the two-phase protocol publishes the decision at the monitor
            tick and every event loop commits it ``commit_lag_s`` later), or
            None for the computed safe default — one conservative lookahead
            plus the longest WAN one-way leg plus the core processing delay.
            Values below that minimum cannot be reproduced exactly by a
            shard split and block sharding.
    """

    mode: str = "off"
    handovers: list[HandoverSpec] = field(default_factory=list)
    interruption_s: float = 0.020
    ho_mode: str = "forward"
    check_interval_s: float = 0.05
    snr_threshold_db: float = 10.0
    min_stay_s: float = 0.5
    ues: list[int] = field(default_factory=list)
    commit_lag_s: Optional[float] = None

    @property
    def enabled(self) -> bool:
        """True when this block asks for any mobility at all."""
        if self.mode == "schedule":
            return bool(self.handovers)
        return self.mode == "snr"

    def validate(self) -> "MobilitySpec":
        """Check mode/knob consistency (itinerary checks need the spec)."""
        if self.mode not in MOBILITY_MODES:
            raise ValueError(f"unknown mobility mode {self.mode!r}; "
                             f"choose from {MOBILITY_MODES}")
        if self.ho_mode not in HO_MODES:
            raise ValueError(f"unknown ho_mode {self.ho_mode!r}; "
                             f"choose from {HO_MODES}")
        if self.interruption_s <= 0:
            raise ValueError("mobility.interruption_s must be positive")
        if self.mode == "snr":
            if self.check_interval_s <= 0:
                raise ValueError("mobility.check_interval_s must be positive")
            if self.handovers:
                raise ValueError("mobility.handovers requires mode "
                                 "'schedule'; the 'snr' monitor decides its "
                                 "own handovers")
        if self.commit_lag_s is not None and self.commit_lag_s <= 0:
            raise ValueError("mobility.commit_lag_s must be positive")
        for ho in self.handovers:
            if ho.time <= 0:
                raise ValueError(
                    f"handover of ue {ho.ue_id} at t={ho.time} must be "
                    "scheduled after time zero")
        return self


#: Workload models understood by the background-population kernel.
POPULATION_WORKLOADS = ("bulk", "rate")


@dataclass
class PopulationSpec:
    """Aggregated background-UE population attached to *every* cell.

    Instead of one Python object graph per UE, ``n_background`` UEs per cell
    are modelled by one vectorized numpy state array (cwnd/backlog/SNR/rate)
    advanced in batched steps synchronized with the MAC slot loop -- see
    :mod:`repro.ran.background`.  Foreground flows experience the population
    only as scheduler contention (an aggregate demand/served-share term), so
    dense cells (1000+ UEs) run without per-UE events.

    Attributes:
        n_background: background UEs attached to each cell (0 disables the
            population entirely; the kernel -- and numpy -- are never touched).
        workload: ``"bulk"`` (always-backlogged, window-limited senders) or
            ``"rate"`` (each UE offers a finite rate drawn around
            ``mean_rate_mbps``).
        cc_mix: congestion-control mix, name -> share (normalised by the
            kernel); classifies UEs into L4S/classic response classes for the
            AIMD window dynamics.  Empty = all classic.
        mean_rate_mbps: per-UE mean offered rate for the ``"rate"`` workload.
        snr_mean_db / snr_stddev_db: Gaussian SNR distribution the per-UE
            link qualities are drawn from (stddev 0 = homogeneous).
        activity: fraction of the population initially active (0..1).
        churn_rate_per_s: Poisson rate of arrival/departure flips per cell
            (0 = static population).
        update_interval_s: batched kernel cadence; clamped to at least one
            MAC slot by the kernel.
    """

    n_background: int = 0
    workload: str = "bulk"
    cc_mix: dict[str, float] = field(default_factory=dict)
    mean_rate_mbps: float = 2.0
    snr_mean_db: float = 22.0
    snr_stddev_db: float = 0.0
    activity: float = 1.0
    churn_rate_per_s: float = 0.0
    update_interval_s: float = 0.005

    def __post_init__(self) -> None:
        # JSON round-trip normalisation: keys arrive as strings already, but
        # shares may arrive as ints; a deserialized spec must compare equal.
        self.cc_mix = {str(name): float(share)
                       for name, share in self.cc_mix.items()}

    @property
    def enabled(self) -> bool:
        """True when this block asks for a background population."""
        return self.n_background > 0

    def validate(self) -> "PopulationSpec":
        """Check counts, distribution parameters and the CC mix."""
        if self.n_background < 0:
            raise ValueError("population.n_background must be >= 0")
        if self.workload not in POPULATION_WORKLOADS:
            raise ValueError(
                f"unknown population workload {self.workload!r}; "
                f"choose from {POPULATION_WORKLOADS}")
        if self.workload == "rate" and self.mean_rate_mbps <= 0:
            raise ValueError("population.mean_rate_mbps must be positive "
                             "for the 'rate' workload")
        if self.snr_stddev_db < 0:
            raise ValueError("population.snr_stddev_db must be >= 0")
        if not 0.0 <= self.activity <= 1.0:
            raise ValueError("population.activity must be within [0, 1]")
        if self.churn_rate_per_s < 0:
            raise ValueError("population.churn_rate_per_s must be >= 0")
        if self.update_interval_s <= 0:
            raise ValueError("population.update_interval_s must be positive")
        for name, share in self.cc_mix.items():
            CC_SENDERS.resolve(name)
            if share <= 0:
                raise ValueError(
                    f"population.cc_mix share for {name!r} must be positive")
        return self


@dataclass
class EngineSpec:
    """Which engine backend executes the scenario's per-slot hot loops.

    Backends never change the modelled behaviour -- on static channels the
    per-flow metrics are bit-identical across backends (asserted by
    ``tests/test_backends.py``); on fading channels the drift is confined
    to the channel stream's documented block-reordering.  See
    :mod:`repro.sim.backends` for the registry and the equivalence contract.

    Attributes:
        backend: registered backend name (``"python"``/``"py"``,
            ``"numpy"``/``"np"``), or None to inherit the environment
            default (``$REPRO_ENGINE``, falling back to ``"python"``).
        channel_block: slots/variates precomputed per channel-cache block
            by vectorized backends (ignored by ``"python"``).
    """

    backend: Optional[str] = None
    channel_block: int = 256

    def resolved_backend(self) -> str:
        """The primary name of the backend this block selects."""
        if self.backend is not None:
            return ENGINE_BACKENDS.resolve(self.backend)
        return default_engine_name()

    def make_backend(self) -> EngineBackend:
        """Instantiate the selected backend (explicit names fail loudly)."""
        return make_engine_backend(self.backend,
                                   channel_block=self.channel_block)

    def validate(self) -> "EngineSpec":
        """Check the backend name and block size."""
        if self.backend is not None:
            ENGINE_BACKENDS.resolve(self.backend)
        if self.channel_block < 1:
            raise ValueError("engine.channel_block must be >= 1")
        return self


@dataclass
class UeSpec:
    """Per-UE overrides; any field left None inherits the scenario default.

    Attributes:
        ue_id: identifier unique within the scenario.
        cell_id: the cell this UE attaches to.
        channel_profile / mean_snr_db: radio condition of this UE.
        rlc_mode / rlc_queue_sdus / separate_drbs: bearer configuration.
    """

    ue_id: int
    cell_id: int = 0
    channel_profile: Optional[str] = None
    mean_snr_db: Optional[float] = None
    rlc_mode: Optional[str] = None
    rlc_queue_sdus: Optional[int] = None
    separate_drbs: Optional[bool] = None


@dataclass
class ScenarioSpec:
    """Everything needed to describe one experiment run.

    The defaults reproduce the paper's common setting: one ~40 Mbit/s n78
    cell, 38 ms WAN RTT, RLC AM with the default 16384-SDU queue, round-robin
    MAC scheduling and separate L4S/classic DRBs per UE.

    Homogeneous scenarios only need the scalar fields (``num_ues``,
    ``cc_name``, ``channel_profile``, ...).  Heterogeneous scenarios add
    entries to ``cells`` / ``ues`` / ``flows``; anything not overridden there
    inherits the scalar defaults.
    """

    num_ues: int = 1
    duration_s: float = 5.0
    cc_name: str = "prague"
    marker: str = "l4span"          # "none", "l4span", "tcran", "ran_dualpi2"
    l4span: Optional[bool] = None   # convenience alias: True -> "l4span", False -> "none"
    channel_profile: str = "static"
    wan_rtt: float = ms(38)
    scheduler: str = "rr"
    rlc_queue_sdus: int = DEFAULT_RLC_QUEUE_SDUS
    rlc_mode: str = "am"
    separate_drbs: bool = True
    seed: int = 1
    flows: Optional[list[FlowSpec]] = None
    mean_snr_db: float = 22.0
    cell: CellConfig = field(default_factory=CellConfig)
    air: AirInterfaceConfig = field(default_factory=AirInterfaceConfig)
    l4span_config: L4SpanConfig = field(default_factory=L4SpanConfig)
    queue_sample_interval: float = 0.05
    throughput_window: float = 0.25
    rate_probe: bool = False
    # Optional wired middlebox between the WAN and the 5G core whose rate can
    # be throttled during the run (Fig. 2's bottleneck shift).
    wired_bottleneck_mbps: Optional[float] = None
    wired_bottleneck_schedule: list = field(default_factory=list)
    warmup_s: float = 0.5
    # Heterogeneous-topology extensions (empty = single default cell,
    # homogeneous UE population).
    name: str = ""
    cells: list[CellSpec] = field(default_factory=list)
    ues: list[UeSpec] = field(default_factory=list)
    # Process-per-cell sharding of multi-cell scenarios (off by default; see
    # repro.experiments.sharded for the runtime and its determinism contract).
    sharding: ShardingSpec = field(default_factory=ShardingSpec)
    # Inter-cell handover of UEs between the scenario's cells (off by
    # default; see repro.ran.mobility for the execution semantics).
    mobility: MobilitySpec = field(default_factory=MobilitySpec)
    # Aggregated background-UE population per cell (off by default; see
    # repro.ran.background for the vectorized kernel).
    population: PopulationSpec = field(default_factory=PopulationSpec)
    # Engine backend executing the per-slot hot loops (None = the
    # environment default; see repro.sim.backends).
    engine: EngineSpec = field(default_factory=EngineSpec)

    def __post_init__(self) -> None:
        # Normalise the throttle schedule to tuples so a spec deserialized
        # from JSON (where pairs become lists) compares equal to the original.
        self.wired_bottleneck_schedule = [
            tuple(entry) for entry in self.wired_bottleneck_schedule]

    # ------------------------------------------------------------------ #
    # Convenience views
    # ------------------------------------------------------------------ #
    def resolved_marker(self) -> str:
        """Resolve the ``l4span`` boolean alias onto the marker name."""
        if self.l4span is None:
            return self.marker
        return "l4span" if self.l4span else "none"

    def label(self) -> str:
        """Short human-readable description used in reports."""
        if self.name:
            return self.name
        return (f"{self.cc_name}/{self.channel_profile}/{self.num_ues}ue/"
                f"{self.resolved_marker()}")

    # ------------------------------------------------------------------ #
    # Resolution: fill every override with its scenario-level default
    # ------------------------------------------------------------------ #
    def resolved_cells(self) -> list[CellSpec]:
        """The cell list with radio/air/scheduler defaults filled in."""
        specs = self.cells if self.cells else [CellSpec(cell_id=0)]
        resolved = []
        seen: set[int] = set()
        for spec in specs:
            if spec.cell_id in seen:
                raise ValueError(f"duplicate cell_id {spec.cell_id}")
            seen.add(spec.cell_id)
            resolved.append(CellSpec(
                cell_id=spec.cell_id,
                scheduler=spec.scheduler if spec.scheduler is not None
                else self.scheduler,
                radio=spec.radio if spec.radio is not None else self.cell,
                air=spec.air if spec.air is not None else self.air))
        return resolved

    def _declared_ue_ids(self) -> list[int]:
        ids = set(range(self.num_ues)) | {ue.ue_id for ue in self.ues}
        return sorted(ids)

    def resolved_flows(self) -> list[FlowSpec]:
        """The flow list; defaults to one bulk download per declared UE."""
        if self.flows is not None:
            return list(self.flows)
        return [FlowSpec(flow_id=index, ue_id=ue_id, cc_name=self.cc_name,
                         label="bulk")
                for index, ue_id in enumerate(self._declared_ue_ids())]

    def resolved_ues(self) -> list[UeSpec]:
        """Every UE of the scenario, overrides merged onto the defaults.

        The population is the union of ``range(num_ues)``, the explicitly
        declared UEs and every flow's terminating UE, sorted by id (the order
        channels and random streams are created in).
        """
        overrides = {}
        for ue in self.ues:
            if ue.ue_id in overrides:
                raise ValueError(f"duplicate ue_id {ue.ue_id}")
            overrides[ue.ue_id] = ue
        ids = set(self._declared_ue_ids())
        ids.update(flow.ue_id for flow in self.resolved_flows())
        resolved = []
        for ue_id in sorted(ids):
            ue = overrides.get(ue_id, UeSpec(ue_id=ue_id))
            resolved.append(UeSpec(
                ue_id=ue_id,
                cell_id=ue.cell_id,
                channel_profile=ue.channel_profile
                if ue.channel_profile is not None else self.channel_profile,
                mean_snr_db=ue.mean_snr_db
                if ue.mean_snr_db is not None else self.mean_snr_db,
                rlc_mode=ue.rlc_mode
                if ue.rlc_mode is not None else self.rlc_mode,
                rlc_queue_sdus=ue.rlc_queue_sdus
                if ue.rlc_queue_sdus is not None else self.rlc_queue_sdus,
                separate_drbs=ue.separate_drbs
                if ue.separate_drbs is not None else self.separate_drbs))
        return resolved

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> "ScenarioSpec":
        """Check every component name against its registry; return self.

        Raises :class:`repro.registry.UnknownComponentError` for unknown
        names and :class:`ValueError` for structural mistakes (duplicate
        ids, dangling cell references).
        """
        MARKERS.resolve(self.resolved_marker() or "none")
        self.sharding.validate()
        self.population.validate()
        self.engine.validate()
        cells = self.resolved_cells()
        cell_ids = {cell.cell_id for cell in cells}
        if self.sharding.mode == "explicit":
            missing = sorted(cell_ids - set(self.sharding.map))
            if missing:
                raise ValueError(
                    f"explicit sharding map misses cell(s) {missing}")
            unknown = sorted(set(self.sharding.map) - cell_ids)
            if unknown:
                raise ValueError(
                    f"explicit sharding map names unknown cell(s) {unknown}; "
                    f"declared cells: {sorted(cell_ids)}")
        for cell in cells:
            SCHEDULERS.resolve(cell.scheduler)
        ues = self.resolved_ues()
        for ue in ues:
            CHANNEL_PROFILES.resolve(ue.channel_profile)
            if ue.rlc_mode.lower() not in RLC_MODES:
                raise ValueError(f"unknown rlc_mode {ue.rlc_mode!r} for "
                                 f"ue {ue.ue_id}; choose from {RLC_MODES}")
            if ue.cell_id not in cell_ids:
                raise ValueError(
                    f"ue {ue.ue_id} attaches to unknown cell "
                    f"{ue.cell_id}; declared cells: {sorted(cell_ids)}")
        flow_ids: set[int] = set()
        for flow in self.resolved_flows():
            CC_SENDERS.resolve(flow.cc_name)
            if flow.flow_id in flow_ids:
                raise ValueError(f"duplicate flow_id {flow.flow_id}")
            flow_ids.add(flow.flow_id)
        # A zero rate is legal (the link stalls until the schedule resumes
        # it); a negative one is meaningless on both execution paths.
        if (self.wired_bottleneck_mbps is not None
                and self.wired_bottleneck_mbps < 0):
            raise ValueError("wired_bottleneck_mbps must be >= 0")
        for start_time, rate in self.wired_bottleneck_schedule:
            if rate < 0:
                raise ValueError(
                    f"wired_bottleneck_schedule sets a negative rate "
                    f"({rate}) at t={start_time}")
        self._validate_mobility(cell_ids, {ue.ue_id: ue.cell_id for ue in ues})
        return self

    def _validate_mobility(self, cell_ids: set[int],
                           ue_cells: dict[int, int]) -> None:
        mobility = self.mobility.validate()
        if not mobility.enabled:
            return
        if len(cell_ids) < 2:
            raise ValueError("mobility needs at least two cells to move "
                             "a UE between")
        for ue_id in mobility.ues:
            if ue_id not in ue_cells:
                raise ValueError(f"mobility.ues names unknown ue {ue_id}")
        serving = dict(ue_cells)
        last_time: dict[int, float] = {}
        for ho in mobility.handovers:
            if ho.ue_id not in ue_cells:
                raise ValueError(
                    f"handover at t={ho.time} names unknown ue {ho.ue_id}")
            if ho.target_cell not in cell_ids:
                raise ValueError(
                    f"handover of ue {ho.ue_id} at t={ho.time} targets "
                    f"unknown cell {ho.target_cell}; declared cells: "
                    f"{sorted(cell_ids)}")
            if ho.target_cell == serving[ho.ue_id]:
                raise ValueError(
                    f"handover of ue {ho.ue_id} at t={ho.time} targets its "
                    f"current serving cell {ho.target_cell}")
            previous = last_time.get(ho.ue_id)
            if previous is not None:
                if ho.time <= previous:
                    raise ValueError(
                        f"handovers of ue {ho.ue_id} must be in strictly "
                        f"increasing time order (t={ho.time} after "
                        f"t={previous})")
                if ho.time - previous < mobility.interruption_s:
                    raise ValueError(
                        f"ue {ho.ue_id} hands over at t={ho.time} before "
                        f"its t={previous} handover completes "
                        f"(interruption {mobility.interruption_s}s)")
            serving[ho.ue_id] = ho.target_cell
            last_time[ho.ue_id] = ho.time

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """A plain-data (JSON-compatible) representation of this spec."""
        return dataclasses.asdict(self)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The spec as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written data).

        Unknown keys raise ``ValueError`` — a typo in a JSON spec fails
        loudly instead of silently running the default scenario.
        """
        data = dict(data)
        parsed: dict[str, Any] = {}
        nested = {
            "cell": CellConfig,
            "air": AirInterfaceConfig,
            "l4span_config": L4SpanConfig,
            "sharding": ShardingSpec,
            "population": PopulationSpec,
            "engine": EngineSpec,
        }
        for key, nested_cls in nested.items():
            if key in data and data[key] is not None:
                parsed[key] = _dataclass_from_dict(nested_cls,
                                                   data.pop(key), key)
        if data.get("mobility") is not None:
            parsed["mobility"] = _mobility_spec_from_dict(data.pop("mobility"))
        data.pop("mobility", None)
        if data.get("flows") is not None:
            parsed["flows"] = [_dataclass_from_dict(FlowSpec, entry,
                                                    "flows[]")
                               for entry in data.pop("flows")]
        if data.get("cells") is not None:
            parsed["cells"] = [_cell_spec_from_dict(entry)
                               for entry in data.pop("cells")]
        if data.get("ues") is not None:
            parsed["ues"] = [_dataclass_from_dict(UeSpec, entry, "ues[]")
                             for entry in data.pop("ues")]
        data.pop("cells", None)
        data.pop("ues", None)
        data.pop("flows", None)
        return _dataclass_from_dict(cls, data, "scenario", extra=parsed)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from a JSON document."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("a scenario spec must be a JSON object")
        return cls.from_dict(data)


def _dataclass_from_dict(cls, data: Any, where: str,
                         extra: Optional[dict] = None):
    """Strictly construct dataclass ``cls`` from a plain dict."""
    if not isinstance(data, dict):
        raise ValueError(f"{where}: expected an object, got {type(data).__name__}")
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - names)
    if unknown:
        raise ValueError(f"{where}: unknown field(s) {unknown}; "
                         f"valid fields: {sorted(names)}")
    kwargs = dict(data)
    if extra:
        kwargs.update(extra)
    return cls(**kwargs)


def _mobility_spec_from_dict(data: dict) -> MobilitySpec:
    data = dict(data) if isinstance(data, dict) else data
    extra = {}
    if isinstance(data, dict):
        if data.get("handovers") is not None:
            extra["handovers"] = [
                _dataclass_from_dict(HandoverSpec, entry,
                                     "mobility.handovers[]")
                for entry in data.pop("handovers")]
        data.pop("handovers", None)
    return _dataclass_from_dict(MobilitySpec, data, "mobility", extra=extra)


def _cell_spec_from_dict(data: dict) -> CellSpec:
    data = dict(data) if isinstance(data, dict) else data
    extra = {}
    if isinstance(data, dict):
        if data.get("radio") is not None:
            extra["radio"] = _dataclass_from_dict(CellConfig,
                                                  data.pop("radio"),
                                                  "cells[].radio")
        if data.get("air") is not None:
            extra["air"] = _dataclass_from_dict(AirInterfaceConfig,
                                                data.pop("air"),
                                                "cells[].air")
        data.pop("radio", None)
        data.pop("air", None)
    return _dataclass_from_dict(CellSpec, data, "cells[]", extra=extra)
