"""Process-per-cell sharding of multi-cell scenarios.

A multi-cell :class:`~repro.experiments.spec.ScenarioSpec` describes N radio
cells sharing one 5G core.  The single event loop simulates them back to
back; this module instead runs **one simulator per shard of cells, each in
its own worker process**, synchronized conservatively — the same federated
decomposition distributed ns-3/OMNeT++ deployments use.

Why it is exact
---------------
The only paths between two cells are WAN → 5G core → RAN and (with
mobility) the handover transfer/forwarding path, and every one of them has
at least one conservative **lookahead** of latency — the minimum WAN
one-way delay of any flow (handover interruption is validated to be no
shorter).  Shards advance in windows bounded by that lookahead; at every
window boundary they exchange timestamped batches at the core/WAN boundary.
Each boundary item carries its *true* single-loop delivery time (a downlink
packet is handed off at WAN-pipe entry stamped ``entry + wan_leg``, an
uplink ACK at core egress stamped ``egress + processing + wan_leg``), which
is always at least one lookahead in the receiver's future — so no shard
ever receives an event inside a window it has already simulated and no
rollback is ever needed.  In the boundary-free case (no mobility, no
address aliasing) the split proves no packet can cross shards at all, the
lookahead over zero inter-shard links is unbounded, and each shard runs to
the horizon in one window with no barrier exchanges.

Mobility coupling and adaptive windows
--------------------------------------
Inter-cell handover (:mod:`repro.ran.mobility`) is what makes the barrier
loop load-bearing: a UE's serving cell — and with it its whole RAN-side
termination — can live on a different shard than its content server and WAN
pipes.  While it does, every data packet, ACK, handover transfer and
forwarded SDU of its flows crosses through :class:`_BoundaryRouter`.  The
synchronizer exploits the *schedule*: outside the union of cross-shard
serving intervals (padded by the interruption window and proven drained by
per-shard in-flight reports) no boundary traffic can exist, so adaptive
mode (``sharding.adaptive_windows``, the default) jumps the barrier
straight to the next coupling interval — and inside coupled phases it still
widens windows past ``W + lookahead`` when every shard's next event
(:meth:`repro.sim.engine.Simulator.peek_time`) and every in-flight delivery
provably allow it.  Fixed mode runs the classic one-pipe-round-trip-per-
lookahead cadence (~316 exchanges for 6 s at 19 ms) and exists as the
benchmark baseline.

Determinism contract
--------------------
Every random stream in a scenario is named per cell, per UE, per bearer or
per flow (``channel-ue3``, ``air-ue3``, ``l4span-mark-ue3/drb1``, ...), and
shard simulators reuse the *master* seed, so a stream's seed and draw
sequence are identical whether its cell runs in the shared loop or in any
shard.  Handover re-attachments create *fresh attach-qualified* streams
(``air-ue3#a1``) on whichever loop hosts the target cell, preserving the
contract under mobility.  Consequently a sharded run is deterministic for a
fixed shard map, reproducible across repeats and shard counts, and — on a
static channel — produces **per-flow metrics identical to the single-loop
run**.  Scenarios the split cannot reproduce exactly are refused up front
by :func:`sharding_blockers` and fall back to the single loop: cells
coupled through a wired middlebox, wrapped >250-UE address spaces,
SNR-triggered mobility (decided mid-run) and handover interruptions shorter
than the lookahead.

The per-shard collector outputs are recombined by the merge helpers in
:mod:`repro.metrics.collectors` into the exact single-loop report schema;
a mobile flow's samples, collected on every shard that served it, are
re-merged in delivery-time order.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.scenario import (BuiltScenario, FlowResult,
                                        ScenarioResult, ScenarioSpec,
                                        attach_data_gaps, build_scenario,
                                        mobility_topology, ue_ip_address)
from repro.experiments.runner import active_sweep_workers, core_budget
from repro.experiments.spec import MobilitySpec, ShardingSpec
from repro.metrics.collectors import (DelayBreakdownAccumulator,
                                      ThroughputCollector, TimeSeries,
                                      merge_numeric_summaries,
                                      merge_sample_dicts)
from repro.net.packet import Packet
from repro.ran.mobility import (HandoverTransfer, ItineraryLookup,
                                MobilityManager, merge_handover_records)

#: Environment variable forcing the in-process synchronizer (no worker
#: processes), e.g. on sandboxes that cannot fork.
INPROCESS_ENV = "REPRO_SHARD_INPROCESS"

#: Seconds the coordinator waits for a worker message before declaring the
#: run wedged (workers simulate milliseconds per window; this is generous).
_WORKER_TIMEOUT_S = 600.0


class ShardPlanError(ValueError):
    """Raised when a spec cannot be sharded as requested."""


class ConservativeSyncError(RuntimeError):
    """A boundary packet arrived inside an already-simulated window."""


# --------------------------------------------------------------------- #
# Planning: which cell runs where, and how far shards may run ahead
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardPlan:
    """A concrete placement of cells onto shards plus the lookahead window.

    Attributes:
        assignment: ``cell_id -> shard index`` (shard indices are dense,
            ``0 .. num_shards-1``).
        num_shards: number of worker loops.
        lookahead: conservative synchronization window in seconds — the
            minimum WAN one-way leg of any flow, i.e. the closest one cell's
            events can ever matter to another.
    """

    assignment: dict[int, int]
    num_shards: int
    lookahead: float

    def cells_of(self, shard: int) -> list[int]:
        """Cell ids placed on ``shard``, in declaration order."""
        return [cell for cell, s in self.assignment.items() if s == shard]


def sharding_blockers(spec: ScenarioSpec) -> list[str]:
    """Human-readable reasons why ``spec`` cannot be sharded (empty = can)."""
    blockers = []
    if len(spec.resolved_cells()) < 2:
        blockers.append("fewer than two cells")
    if spec.wired_bottleneck_mbps is not None:
        blockers.append("a wired middlebox queues all cells' traffic jointly")
    ues = spec.resolved_ues()
    if len({ue_ip_address(ue.ue_id) for ue in ues}) < len(ues):
        # The /24 client address space wraps past 250 UEs; the single loop
        # resolves the collision with a last-registration-wins routing table
        # (misdelivering the earlier UE's flows), and a shard split cannot
        # reproduce that byte-for-byte when the colliding UEs land on
        # different shards.  Refuse rather than silently diverge.
        blockers.append("UE address space wraps (>250 UEs share an IP)")
    if spec.mobility.enabled:
        if spec.mobility.mode == "snr":
            # SNR triggers are decided mid-run from channel draws; the
            # boundary router cannot route by a schedule that does not
            # exist yet.
            blockers.append("snr-triggered handovers are decided mid-run")
        elif spec.mobility.interruption_s < boundary_lookahead(spec) - 1e-12:
            # The handover transfer crosses shards one lookahead after the
            # detach; the target must still be inside its interruption
            # window when it lands, or receiver state would arrive late.
            blockers.append("handover interruption is shorter than the "
                            "conservative lookahead window")
    return blockers


def boundary_lookahead(spec: ScenarioSpec) -> float:
    """The conservative window: the minimum WAN one-way leg of any flow."""
    rtts = [flow.wan_rtt if flow.wan_rtt is not None else spec.wan_rtt
            for flow in spec.resolved_flows()]
    rtt = min(rtts) if rtts else spec.wan_rtt
    return max(rtt / 2.0, 1e-4)


def build_shard_plan(spec: ScenarioSpec,
                     shards: Optional[int] = None) -> ShardPlan:
    """Turn the spec's ``sharding`` block into a concrete :class:`ShardPlan`.

    ``shards`` overrides the block's worker count (the CLI's ``--shards``).
    Auto mode distributes cells round-robin in declaration order; explicit
    mode uses the block's map with shard indices renumbered densely.
    """
    sharding = spec.sharding
    cell_ids = [cell.cell_id for cell in spec.resolved_cells()]
    if sharding.mode == "explicit":
        missing = sorted(set(cell_ids) - set(sharding.map))
        if missing:
            raise ShardPlanError(f"sharding map misses cell(s) {missing}")
        raw = {cell: sharding.map[cell] for cell in cell_ids}
        dense = {old: new for new, old in enumerate(sorted(set(raw.values())))}
        assignment = {cell: dense[shard] for cell, shard in raw.items()}
        num_shards = len(dense)
        if shards is not None and shards != num_shards:
            raise ShardPlanError(
                f"--shards {shards} conflicts with the explicit map's "
                f"{num_shards} shard(s); drop one of the two")
        active = active_sweep_workers()
        if active > 1 and num_shards * active > core_budget():
            # An explicit map cannot be clamped without breaking the
            # requested placement; warn about the oversubscription instead.
            warnings.warn(
                f"{active} sweep workers x {num_shards} explicit shards "
                f"exceeds the host's core budget {core_budget()}; consider "
                "fewer workers or REPRO_CORE_BUDGET",
                RuntimeWarning, stacklevel=2)
    else:
        num_shards = shards if shards is not None else sharding.shards
        if num_shards is None:
            num_shards = min(len(cell_ids), os.cpu_count() or 1)
        num_shards = max(1, min(int(num_shards), len(cell_ids)))
        active = active_sweep_workers()
        if active > 1:
            # Nested parallelism: this scenario runs inside a sweep worker,
            # so workers x shards must stay within the host's core budget.
            allowed = max(1, core_budget() // active)
            if num_shards > allowed:
                warnings.warn(
                    f"{active} sweep workers x {num_shards} shards exceeds "
                    f"the host's core budget {core_budget()}; clamping to "
                    f"{allowed} shard(s) per scenario (override with "
                    "REPRO_CORE_BUDGET)", RuntimeWarning, stacklevel=2)
                num_shards = allowed
        assignment = {cell: index % num_shards
                      for index, cell in enumerate(cell_ids)}
    return ShardPlan(assignment=assignment, num_shards=num_shards,
                     lookahead=boundary_lookahead(spec))


def split_spec(spec: ScenarioSpec, plan: ShardPlan) -> list[ScenarioSpec]:
    """Split a validated spec into one self-contained sub-spec per shard.

    Each sub-spec keeps the master seed (the determinism contract above),
    carries the fully resolved cells/UEs/flows of its shard, and has
    sharding *and mobility* switched off — a mobile UE's flows, senders and
    WAN pipes live on its **home** shard (the shard of its initial cell),
    and the shard-local :class:`~repro.ran.mobility.MobilityManager` built
    from the full spec executes arrivals/departures against the local
    cells.  Only the shard hosting the scenario's first cell keeps
    ``rate_probe`` (the single loop probes the first cell only).
    """
    cells = spec.resolved_cells()
    ues = spec.resolved_ues()
    flows = spec.resolved_flows()
    first_cell = cells[0].cell_id
    subs = []
    for shard in range(plan.num_shards):
        shard_cell_ids = {cell_id for cell_id, s in plan.assignment.items()
                          if s == shard}
        shard_cells = [c for c in cells if c.cell_id in shard_cell_ids]
        shard_ues = [u for u in ues if u.cell_id in shard_cell_ids]
        shard_ue_ids = {u.ue_id for u in shard_ues}
        shard_flows = [f for f in flows if f.ue_id in shard_ue_ids]
        subs.append(dataclasses.replace(
            spec,
            name=f"{spec.label()}#shard{shard}",
            num_ues=0,
            cells=shard_cells,
            ues=shard_ues,
            flows=shard_flows,
            rate_probe=spec.rate_probe and first_cell in shard_cell_ids,
            sharding=ShardingSpec(mode="off"),
            mobility=MobilitySpec()))
    return subs


def mobility_coupling_intervals(spec: ScenarioSpec,
                                plan: ShardPlan) -> list[tuple[float, float]]:
    """Time intervals during which cross-shard boundary traffic can exist.

    A mobile UE couples shards exactly while it is served away from its
    home shard: downlink deliveries into the serving shard happen inside
    the serving segment (the WAN-entry cut routes by arrival time), and the
    handover transfer / forwarded SDUs / uplink tail extend at most
    ``max(lookahead, interruption)`` past it — the in-flight uplink tail
    beyond that is covered dynamically by the per-shard drained reports.
    Returns merged, sorted ``(start, end)`` pairs; empty means every split
    of this spec is boundary-free (``split_spec`` detects mobility-coupled
    splits through exactly this function).
    """
    if not spec.mobility.enabled:
        return []
    topology = mobility_topology(spec)
    horizon = spec.duration_s
    pad = max(plan.lookahead, spec.mobility.interruption_s)
    raw: list[tuple[float, float]] = []
    for ue_id, itinerary in topology.itineraries.items():
        home = plan.assignment[itinerary[0][1]]
        for index, (start, cell) in enumerate(itinerary):
            end = (itinerary[index + 1][0] if index + 1 < len(itinerary)
                   else horizon)
            if plan.assignment[cell] != home and start < horizon:
                raw.append((start, min(end, horizon) + pad))
    raw.sort()
    merged: list[tuple[float, float]] = []
    for start, end in raw:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def window_schedule(duration: float, lookahead: float) -> list[float]:
    """The fixed-cadence list of window-end times (one per lookahead).

    Retained for direct window-by-window driving in tests; the runtime
    itself steps through :class:`_SyncPlan`, whose fixed mode reproduces
    exactly this recurrence.
    """
    ends = []
    t = 0.0
    while t < duration - 1e-12:
        t = min(t + lookahead, duration)
        ends.append(t)
    return ends


class _SyncPlan:
    """Decides how far all shards may advance before the next barrier.

    ``fixed`` mode steps ``W -> min(horizon, W + lookahead)``.  Adaptive
    mode additionally (a) jumps across phases where the mobility schedule
    (plus the shards' drained reports) proves no boundary traffic can
    exist, and (b) inside coupled phases widens past the fixed step when
    every shard's next pending event and every in-flight boundary delivery
    are provably later — any future handoff happens at an event ≥ that
    floor and is delivered ≥ one lookahead after it.
    """

    def __init__(self, horizon: float, lookahead: float,
                 boundary_required: bool, adaptive: bool,
                 coupling: list[tuple[float, float]]) -> None:
        self.horizon = horizon
        self.lookahead = lookahead
        self.boundary_required = boundary_required
        self.adaptive = adaptive
        self.coupling = coupling
        self.windows = 0

    def first_window(self) -> float:
        """Where the first barrier lands (the horizon when boundary-free)."""
        if not self.boundary_required:
            return self.horizon
        if self.adaptive:
            jump = self._jump_target(0.0)
            if jump is not None:
                return jump
        return min(self.horizon, self.lookahead)

    def next_window(self, now: float, peeks: list[Optional[float]],
                    min_deliver: Optional[float], all_idle: bool) -> float:
        """The next barrier after ``now`` given the shards' reports."""
        if now >= self.horizon:
            return now
        if self.adaptive and all_idle:
            jump = self._jump_target(now)
            if jump is not None:
                return jump
        base = now + self.lookahead
        if self.adaptive:
            floors = [p for p in peeks if p is not None]
            if min_deliver is not None:
                floors.append(min_deliver)
            if floors:
                base = max(base, min(floors) + self.lookahead)
        return min(self.horizon, base)

    def _jump_target(self, now: float) -> Optional[float]:
        """Next barrier when no coupling overlaps ``now``; None if coupled."""
        nxt = None
        for start, end in self.coupling:
            if start <= now < end:
                return None
            if start > now:
                nxt = start
                break
        target = self.horizon if nxt is None else min(nxt, self.horizon)
        return target if target > now else None


# --------------------------------------------------------------------- #
# One shard: a built sub-scenario advanced window by window
# --------------------------------------------------------------------- #
class _BoundaryBuffer:
    """Collects this shard's outbound cross-boundary items.

    Two item shapes share the buffer: legacy ``(handoff_time, packet)``
    pairs from the core's ``remote_sink`` (routed by the coordinator's
    address tables, delivered ``handoff + lookahead``) and pre-routed
    ``(deliver_at, payload, mode, target_shard)`` entries from the mobility
    runtime, which knows the exact delivery time and destination.
    """

    def __init__(self, sim) -> None:
        self._sim = sim
        self._outbound: list[tuple] = []

    def receive(self, packet: Packet) -> None:
        """Core ``remote_sink`` entry: record a table-routed handoff."""
        self._outbound.append((self._sim.now, packet))

    def hand_off(self, deliver_at: float, payload, target: int,
                 mode: str) -> None:
        """Record a pre-routed item with its exact delivery time."""
        self._outbound.append((deliver_at, payload, mode, target))

    def drain(self) -> list[tuple]:
        """Take (and clear) the items handed off since the last barrier."""
        out, self._outbound = self._outbound, []
        return out


@dataclass
class ShardResult:
    """Everything one shard ships back for the merge step (picklable)."""

    shard_index: int
    flows: list[FlowResult]
    queue_lengths: dict[str, list[int]]
    bearer_order: list[tuple[int, list[str]]]
    breakdown_count: int
    breakdown_sums: dict[str, float]
    marker_summaries: list[tuple[int, dict]]
    per_ue_throughput: dict[int, float]
    rate_errors: list[float]
    events_processed: int
    boundary_packets: int = 0
    windows: int = 0
    #: Mobile-flow sample fragments: a flow served by several shards has
    #: its one-way delays and raw delivery events re-merged in
    #: delivery-time order by :func:`merge_shard_results` (the throughput
    #: series is replayed from the merged events — its rate windows are
    #: event-anchored, so per-shard series cannot be concatenated).
    mobile_owd: dict[int, tuple[list[float], list[float]]] = \
        field(default_factory=dict)
    mobile_rate_events: dict[int, tuple[list[float], list[int]]] = \
        field(default_factory=dict)
    handover_records: list[dict] = field(default_factory=list)
    #: Per-flow ``(marked, downlink)`` packet counts over this shard's
    #: markers — a mobile flow's ``marked_fraction`` is recomputed at merge
    #: time from the counts summed across every shard that served it.
    flow_mark_counts: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: Aggregate background-population counters of this shard's cells.
    background: dict = field(default_factory=dict)


class _MobileWanPath:
    """The home-shard forward path of a mobile flow: routed at WAN entry.

    The cut happens at pipe *entry* because that is where one full WAN leg
    of latency — at least the conservative lookahead — still lies ahead, so
    the handoff can carry the true core-arrival time.  Arrival-time routing
    against the handover schedule reproduces exactly the single loop's
    route-at-core-ingress behaviour.
    """

    def __init__(self, runtime: "_ShardMobility", flow_id: int,
                 ue_id: int, wan_leg: float) -> None:
        self._runtime = runtime
        self._flow_id = flow_id
        self._leg = wan_leg
        # Resolved once: this object replaces the sender's path for the
        # whole run, so the lookup below executes per downlink packet.
        self._itinerary = ItineraryLookup(runtime.itineraries[ue_id])

    def receive(self, packet: Packet) -> None:
        """Route one downlink packet by its core-arrival time."""
        runtime = self._runtime
        sim = runtime.sim
        arrival = sim.now + self._leg
        target = runtime.assignment[self._itinerary.cell_at(arrival)]
        if target == runtime.shard_index:
            sim.schedule_at(arrival, runtime.core.receive, packet)
        else:
            runtime.boundary.hand_off(arrival, packet, target, "core_dl")


class _MobilityBoundarySink:
    """The core ``remote_sink`` of a mobility-aware shard.

    Uplink ACKs of mobile flows leaving a serving shard are pre-routed to
    their home shard carrying the true sender-arrival time
    (``egress + core processing + wan_leg``); everything else keeps the
    legacy table-routed path.
    """

    def __init__(self, runtime: "_ShardMobility",
                 buffer: _BoundaryBuffer) -> None:
        self._runtime = runtime
        self._buffer = buffer

    def receive(self, packet: Packet) -> None:
        """Pre-route a mobile flow's ACK home; defer the rest to the table."""
        runtime = self._runtime
        flow_id = packet.flow_id
        if packet.is_ack and flow_id in runtime.flow_home:
            deliver = ((runtime.sim.now + runtime.core_processing)
                       + runtime.flow_wan_leg[flow_id])
            self._buffer.hand_off(deliver, packet,
                                  runtime.flow_home[flow_id], "wan_ul")
            return
        self._buffer.receive(packet)


class _ShardMobility:
    """Glues one shard's scenario into the full-spec mobility plan.

    Builds the shard-local :class:`MobilityManager` (arrivals into and
    departures from local cells), rewires the home shard's mobile senders
    onto :class:`_MobileWanPath`, pre-routes mobile uplink through
    :class:`_MobilityBoundarySink`, and ships handover transfers across
    the boundary with a one-lookahead delivery stamp.
    """

    def __init__(self, host: "ShardHost", full_spec: ScenarioSpec,
                 assignment: dict[int, int], lookahead: float) -> None:
        self.host = host
        self.shard_index = host.shard_index
        self.assignment = {int(cell): int(shard)
                           for cell, shard in assignment.items()}
        self.lookahead = lookahead
        scenario = host.scenario
        self.sim = scenario.sim
        self.core = scenario.core
        self.core_processing = scenario.core.processing_delay
        self.boundary = host.boundary
        self.topology = mobility_topology(full_spec)
        self.itineraries = self.topology.itineraries
        mobile_ues = self.topology.mobile_ue_ids()
        home_shard = {ue_id: self.assignment[itin[0][1]]
                      for ue_id, itin in self.itineraries.items()}
        local_cells = {cell for cell, shard in self.assignment.items()
                       if shard == self.shard_index}
        visiting = {ue_id for ue_id in mobile_ues
                    if home_shard[ue_id] != self.shard_index
                    and any(self.assignment[cell] == self.shard_index
                            for _t, cell in self.itineraries[ue_id])}
        self.manager = MobilityManager(
            scenario, self.topology, full_spec.mobility,
            local_cells=local_cells, transfer_out=self._send_transfer,
            visiting_ues=visiting)
        # Per-mobile-flow routing tables (home shard, WAN one-way leg).
        self.flow_home: dict[int, int] = {}
        self.flow_wan_leg: dict[int, float] = {}
        for flow in full_spec.resolved_flows():
            if flow.ue_id not in mobile_ues:
                continue
            rtt = (flow.wan_rtt if flow.wan_rtt is not None
                   else full_spec.wan_rtt)
            self.flow_home[flow.flow_id] = home_shard[flow.ue_id]
            self.flow_wan_leg[flow.flow_id] = rtt / 2.0
            if home_shard[flow.ue_id] == self.shard_index:
                # Cut this flow's forward path at WAN entry.
                sender = scenario.senders[flow.flow_id]
                sender.path = _MobileWanPath(self, flow.flow_id, flow.ue_id,
                                             rtt / 2.0)
        self.mobile_flow_ids = set(self.flow_home)
        scenario.throughput.retain_events_for = self.mobile_flow_ids
        scenario.core.remote_sink = _MobilityBoundarySink(self, self.boundary)

    def _send_transfer(self, transfer: HandoverTransfer,
                       target_cell: int) -> None:
        self.boundary.hand_off(transfer.time + self.lookahead, transfer,
                               self.assignment[target_cell], "ho_transfer")


class ShardHost:
    """One shard's simulator, its boundary buffer, and the window stepper.

    The host is synchronizer-agnostic: the in-process fallback drives a list
    of hosts directly, and :func:`_shard_worker` pumps one host over a pipe
    from a worker process — both through the same few methods.

    ``coupling`` (a dict with the full spec, the cell→shard assignment and
    the lookahead) activates the mobility runtime; sub-specs themselves
    always carry mobility stripped.
    """

    def __init__(self, sub_spec: ScenarioSpec, shard_index: int,
                 coupling: Optional[dict] = None) -> None:
        self.shard_index = shard_index
        self.scenario: BuiltScenario = build_scenario(sub_spec)
        self.boundary = _BoundaryBuffer(self.scenario.sim)
        self.scenario.core.remote_sink = self.boundary
        self.mobility: Optional[_ShardMobility] = None
        if coupling is not None:
            full_spec = coupling["full_spec"]
            if isinstance(full_spec, dict):
                full_spec = ScenarioSpec.from_dict(full_spec)
            self.mobility = _ShardMobility(self, full_spec,
                                           coupling["assignment"],
                                           coupling["lookahead"])
        self.windows = 0
        self.boundary_packets = 0

    def advance(self, until: float) -> list[tuple]:
        """Run the local loop up to ``until``; return drained outbound batch."""
        self.scenario.sim.run(until=until)
        self.windows += 1
        batch = self.boundary.drain()
        self.boundary_packets += len(batch)
        return batch

    def peek(self) -> Optional[float]:
        """Earliest pending local event (the adaptive window floor)."""
        return self.scenario.sim.peek_time()

    def boundary_idle(self) -> bool:
        """True when this shard provably cannot emit boundary traffic."""
        if self.mobility is None:
            return True
        return self.mobility.manager.boundary_idle()

    def inject(self, batch: list[tuple]) -> None:
        """Schedule inbound boundary items onto the local loop.

        Legacy pairs carry ``deliver_at`` stamps produced by the router as
        ``handoff + lookahead``; pre-routed triples carry their true
        single-loop delivery time.  The conservative window guarantees
        neither is ever in this shard's past — enforce it rather than
        assume it.
        """
        sim = self.scenario.sim
        core = self.scenario.core
        for item in batch:
            deliver_at = item[0]
            if deliver_at < sim.now - 1e-12:
                raise ConservativeSyncError(
                    f"shard {self.shard_index}: boundary item for "
                    f"t={deliver_at:.6f} arrived at local time "
                    f"{sim.now:.6f}; lookahead window violated")
            at = max(deliver_at, sim.now)
            if len(item) == 2:
                packet = item[1]
                if core.knows_ue_address(packet.five_tuple.dst_ip):
                    sink = core.receive          # downlink: to a local UE
                else:
                    sink = core.receive_uplink   # uplink: to a local WAN path
                sim.schedule_at(at, sink, packet)
                continue
            _deliver, payload, mode = item
            if mode == "core_dl":
                sim.schedule_at(at, core.receive, payload)
            elif mode == "wan_ul":
                sender = self.scenario.senders[payload.flow_id]
                sim.schedule_at(at, sender.receive, payload)
            elif mode == "ho_transfer":
                sim.schedule_at(at, self.mobility.manager.apply_transfer,
                                payload)
            else:  # pragma: no cover - protocol corruption guard
                raise ValueError(f"unknown boundary item mode {mode!r}")

    def finish(self) -> ShardResult:
        """Stop collectors and package this shard's results for the merge."""
        scenario = self.scenario
        scenario.stop_collectors()
        result = scenario.collect(scenario.sim.processed_events)
        mobile_owd: dict[int, tuple[list[float], list[float]]] = {}
        mobile_rate_events: dict[int, tuple[list[float], list[int]]] = {}
        records: list[dict] = []
        if self.mobility is not None:
            for flow_id in self.mobility.mobile_flow_ids:
                times = scenario.owd.sample_times.get(flow_id)
                samples = scenario.owd.samples.get(flow_id)
                if times:
                    mobile_owd[flow_id] = (list(times), list(samples))
                events = scenario.throughput.raw_events.get(flow_id)
                if events and events[0]:
                    mobile_rate_events[flow_id] = events
            self.mobility.manager.stop()
            records = [dict(record)
                       for record in self.mobility.manager.records]
        return ShardResult(
            shard_index=self.shard_index,
            flows=result.flows,
            queue_lengths={name: list(values) for name, values
                           in scenario.queue_sampler.length_samples.items()},
            bearer_order=[(cell_id,
                           [label for label, _ in gnb.du.labeled_rlc_items()])
                          for cell_id, gnb in scenario.gnbs.items()],
            breakdown_count=scenario.breakdown.count,
            breakdown_sums=dict(scenario.breakdown.sums),
            marker_summaries=scenario.marker_cell_summaries(),
            per_ue_throughput=result.per_ue_throughput,
            rate_errors=result.rate_estimation_errors,
            events_processed=result.events_processed,
            boundary_packets=self.boundary_packets,
            windows=self.windows,
            mobile_owd=mobile_owd,
            mobile_rate_events=mobile_rate_events,
            handover_records=records,
            flow_mark_counts=scenario.flow_mark_counts(),
            background=result.background)


# --------------------------------------------------------------------- #
# Boundary routing (coordinator side)
# --------------------------------------------------------------------- #
@dataclass
class _BoundaryRouter:
    """Routes drained boundary items to the shard that can deliver them."""

    ip_to_shard: dict[str, int]
    flow_to_shard: dict[int, int]
    lookahead: float
    num_shards: int
    routed_packets: int = 0
    dropped_packets: int = 0
    #: Earliest delivery time among the items routed by the last
    #: :meth:`route` call (the adaptive window floor), or None.
    last_min_deliver: Optional[float] = None

    #: True when two shards could ever owe each other a packet: a mobile
    #: UE whose itinerary leaves its home shard, or (defensively) an
    #: aliased client address.  When False the synchronizer runs a single
    #: window to the horizon — conservative lookahead over zero
    #: inter-federate links is unbounded.
    boundary_required: bool = False
    #: True when coupling comes from aliased addresses rather than the
    #: mobility schedule.  Such coupling has no schedule the adaptive
    #: clock could jump by, so it forces fixed-cadence windows.
    #: (Unreachable through :func:`run_scenario_sharded` today —
    #: ``sharding_blockers`` refuses wrapped address spaces — kept
    #: correct for hand-built plans.)
    ip_conflict: bool = False

    @classmethod
    def for_plan(cls, spec: ScenarioSpec, plan: ShardPlan, ue_ip,
                 mobility_coupled: bool = False) -> "_BoundaryRouter":
        """Build the routing tables (and coupling verdict) for a plan.

        ``mobility_coupled`` is the caller's
        :func:`mobility_coupling_intervals` verdict — passed in rather than
        recomputed so the router's requirement and the synchronizer's jump
        schedule stay consistent by construction.
        """
        ip_to_shard = {}
        ip_conflict = False
        flow_to_shard = {}
        ue_cell = {}
        for ue in spec.resolved_ues():
            ue_cell[ue.ue_id] = ue.cell_id
            shard = plan.assignment[ue.cell_id]
            address = ue_ip(ue.ue_id)
            if ip_to_shard.setdefault(address, shard) != shard:
                # Defensive only: sharding_blockers refuses wrapped address
                # spaces before a plan is built, so run_scenario_sharded can
                # never reach this.  Kept for hand-built plans: last
                # registration wins, like the single core's routing table.
                ip_to_shard[address] = shard
                ip_conflict = True
        for flow in spec.resolved_flows():
            flow_to_shard[flow.flow_id] = plan.assignment[ue_cell[flow.ue_id]]
        return cls(ip_to_shard=ip_to_shard, flow_to_shard=flow_to_shard,
                   lookahead=plan.lookahead, num_shards=plan.num_shards,
                   boundary_required=ip_conflict or mobility_coupled,
                   ip_conflict=ip_conflict)

    def route(self, outputs: list[list[tuple]]) -> list[list[tuple]]:
        """Turn per-shard outbound batches into per-shard inbound batches."""
        inbound: list[list[tuple]] = [[] for _ in range(self.num_shards)]
        min_deliver: Optional[float] = None
        for source, batch in enumerate(outputs):
            for item in batch:
                if len(item) > 2:
                    # Pre-routed by the mobility runtime: exact delivery
                    # time and destination shard travel with the item.
                    deliver_at, payload, mode, target = item
                    self.routed_packets += 1
                    inbound[target].append((deliver_at, payload, mode))
                else:
                    handoff, packet = item
                    target = self.ip_to_shard.get(packet.five_tuple.dst_ip)
                    if target is None:
                        target = self.flow_to_shard.get(packet.flow_id)
                    if target is None or target == source:
                        if not packet.is_ack:
                            # The single loop's core raises for an unroutable
                            # downlink datagram; a sharded run must be as
                            # loud, not silently corrupt the metrics.
                            raise KeyError(
                                f"no shard can deliver downlink packet for "
                                f"{packet.five_tuple.dst_ip} (flow "
                                f"{packet.flow_id}, from shard {source})")
                        # Unknown uplink flows are dropped silently by the
                        # single core too; count them for the post-run
                        # warning.
                        self.dropped_packets += 1
                        continue
                    self.routed_packets += 1
                    deliver_at = handoff + self.lookahead
                    inbound[target].append((deliver_at, packet))
                if min_deliver is None or deliver_at < min_deliver:
                    min_deliver = deliver_at
        self.last_min_deliver = min_deliver
        return inbound


# --------------------------------------------------------------------- #
# Result merge: per-shard collector outputs -> single-loop report schema
# --------------------------------------------------------------------- #
def merge_shard_results(config: ScenarioSpec, plan: ShardPlan,
                        results: list[ShardResult],
                        sharding_stats: Optional[dict] = None
                        ) -> ScenarioResult:
    """Recombine shard results into the exact single-loop result schema.

    Orderings the single loop makes observable are reconstructed from the
    full spec: flows in declared flow order, queue samples cell by cell in
    declaration order, marker summaries merged over cells in declaration
    order.  A mobile flow's samples — collected by every shard that served
    its UE — are re-merged in delivery-time order, its throughput series
    replayed from the merged delivery events and its goodput recomputed
    from the summed byte counts, reproducing the single loop's values
    exactly.  Two quantities are deterministic but *not* order-identical to
    the single loop: ``events_processed`` is the sum over shard loops (each
    shard ticks its own queue sampler), and in mobility runs the key order
    of ``queue_length_by_drb`` — bearers released mid-run by a departure
    are appended after the finish-time bearers rather than in
    first-appearance order (the dict compares equal; only the flattened
    ``queue_length_samples`` concatenation order differs).
    """
    results = sorted(results, key=lambda r: r.shard_index)
    flows_by_id = {flow.flow_id: flow for r in results for flow in r.flows}
    resolved_flows = config.resolved_flows()
    mobile_ues: set[int] = set()
    if config.mobility.enabled:
        mobile_ues = mobility_topology(config).mobile_ue_ids()
    # A mobile flow leaves flow records behind in every cell (shard) it
    # visited; sum the per-shard mark counts so its merged marked_fraction
    # covers them all, exactly like the single loop's cross-cell merge.
    mark_counts: dict[int, list[int]] = {}
    for r in results:
        for flow_id, (marked, downlink) in r.flow_mark_counts.items():
            entry = mark_counts.setdefault(flow_id, [0, 0])
            entry[0] += marked
            entry[1] += downlink
    merged_owd_times: dict[int, list[float]] = {}
    mobile_flow_bytes: dict[int, int] = {}
    replay = ThroughputCollector(window=config.throughput_window)
    ordered_flows = []
    for spec in resolved_flows:
        flow = flows_by_id[spec.flow_id]
        if spec.ue_id in mobile_ues:
            pairs = [pair for r in results
                     for pair in zip(*r.mobile_owd.get(spec.flow_id,
                                                       ((), ())))]
            pairs.sort(key=lambda pair: pair[0])
            merged_owd_times[spec.flow_id] = [t for t, _v in pairs]
            # Replay the merged delivery events through a fresh collector:
            # its rate windows are event-anchored, so this — not a
            # concatenation of per-shard series — reproduces the single
            # loop's throughput series (and byte totals) exactly.
            events = [event for r in results
                      for event in
                      zip(*r.mobile_rate_events.get(spec.flow_id, ((), ())))]
            events.sort(key=lambda event: event[0])
            for now, size in events:
                replay.record(spec.flow_id, size, now)
            total_bytes = replay.total_bytes.get(spec.flow_id, 0)
            mobile_flow_bytes[spec.flow_id] = total_bytes
            duration = config.duration_s - spec.start_time
            if spec.stop_time is not None:
                duration = min(duration, spec.stop_time - spec.start_time)
            marked, downlink = mark_counts.get(spec.flow_id, [0, 0])
            flow = dataclasses.replace(
                flow,
                owd_samples=[v for _t, v in pairs],
                goodput_bytes_per_s=total_bytes / max(duration, 1e-9),
                marked_fraction=marked / downlink if downlink else 0.0,
                throughput_series=replay.series.get(spec.flow_id,
                                                    TimeSeries()))
        ordered_flows.append(flow)

    bearer_names: dict[int, list[str]] = {}
    for r in results:
        for cell_id, names in r.bearer_order:
            bearer_names[cell_id] = names
    all_lengths = merge_sample_dicts(r.queue_lengths for r in results)
    queue_by_drb: dict[str, list[int]] = {}
    for cell in config.resolved_cells():
        for name in bearer_names.get(cell.cell_id, []):
            if name in all_lengths:
                queue_by_drb[name] = all_lengths[name]
    # Bearers released mid-run (handover departures) are no longer listed
    # by any DU at finish time; their samples still belong in the report.
    for name, values in all_lengths.items():
        queue_by_drb.setdefault(name, values)
    queue_samples = [sample for values in queue_by_drb.values()
                     for sample in values]

    breakdown = DelayBreakdownAccumulator()
    for r in results:
        breakdown.merge_from(r.breakdown_count, r.breakdown_sums)

    summaries: dict[int, dict] = {}
    for r in results:
        for cell_id, summary in r.marker_summaries:
            summaries[cell_id] = summary
    marker_summary = merge_numeric_summaries(
        [summaries[cell.cell_id] for cell in config.resolved_cells()
         if cell.cell_id in summaries])

    merged_ue = {}
    for r in results:
        merged_ue.update(r.per_ue_throughput)
    per_ue: dict[int, float] = {}
    for flow in resolved_flows:
        if flow.ue_id in mobile_ues:
            per_ue.setdefault(flow.ue_id, 0.0)
            per_ue[flow.ue_id] += (mobile_flow_bytes.get(flow.flow_id, 0)
                                   / max(config.duration_s, 1e-9))
        else:
            per_ue.setdefault(flow.ue_id, merged_ue.get(flow.ue_id, 0.0))

    handovers = merge_handover_records(r.handover_records for r in results)
    if handovers:
        attach_data_gaps(handovers, merged_owd_times,
                         {flow.flow_id: flow.ue_id
                          for flow in resolved_flows})

    background: dict = {}
    if any(r.background for r in results):
        from repro.ran.background import merge_background_summaries
        background = merge_background_summaries(
            [r.background for r in results])

    return ScenarioResult(
        config=config,
        flows=ordered_flows,
        queue_length_samples=queue_samples,
        queue_length_by_drb=queue_by_drb,
        delay_breakdown=breakdown.averages(),
        marker_summary=marker_summary,
        per_ue_throughput=per_ue,
        rate_estimation_errors=[error for r in results
                                for error in r.rate_errors],
        duration_s=config.duration_s,
        events_processed=sum(r.events_processed for r in results),
        handovers=handovers,
        sharding_stats=dict(sharding_stats or {}),
        background=background)


# --------------------------------------------------------------------- #
# Synchronizers
# --------------------------------------------------------------------- #
def _run_hosts_inprocess(hosts: list[ShardHost], router: _BoundaryRouter,
                         sync: _SyncPlan) -> list[ShardResult]:
    """Drive all shard hosts in one process, window by window.

    The sequential twin of the process synchronizer: same windows, same
    exchanges, same results — used as the sandbox fallback and by tests that
    must not depend on the platform's multiprocessing support.
    """
    window_end = sync.first_window()
    while True:
        sync.windows += 1
        outputs = [host.advance(window_end) for host in hosts]
        peeks = [host.peek() for host in hosts]
        all_idle = all(host.boundary_idle() for host in hosts)
        for host, batch in zip(hosts, router.route(outputs)):
            host.inject(batch)
        if window_end >= sync.horizon - 1e-12:
            break
        window_end = sync.next_window(window_end, peeks,
                                      router.last_min_deliver, all_idle)
    return [host.finish() for host in hosts]


def _shard_worker(conn, payload: dict) -> None:
    """Worker-process main: pump one :class:`ShardHost` over a pipe.

    Protocol, in lock-step with the coordinator: the worker advances to the
    current window end and sends ``("window", (outbound_batch, peek_time,
    boundary_idle))``, then blocks for ``("proceed", (inbound_batch,
    next_window_end))`` — the coordinator owns the (possibly adaptive)
    window clock.  After the horizon window it sends ``("result",
    ShardResult)``.  Any exception is shipped back as ``("error",
    traceback_text)`` instead of dying silently.
    """
    try:
        spec = ScenarioSpec.from_dict(payload["spec"])
        host = ShardHost(spec, payload["shard_index"],
                         coupling=payload.get("coupling"))
        window_end = payload["first_window"]
        horizon = payload["horizon"]
        while True:
            batch = host.advance(window_end)
            conn.send(("window", (batch, host.peek(), host.boundary_idle())))
            _kind, (inbound, next_window) = conn.recv()
            host.inject(inbound)
            if window_end >= horizon - 1e-12:
                break
            window_end = next_window
        conn.send(("result", host.finish()))
    except Exception:  # pragma: no cover - ships the traceback to the parent
        import traceback
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:
            pass
    finally:
        conn.close()


class _WorkersUnavailable(RuntimeError):
    """Worker processes could not be created on this platform."""


def _recv(conn, shard: int):
    if not conn.poll(_WORKER_TIMEOUT_S):
        raise RuntimeError(f"shard {shard} sent nothing for "
                           f"{_WORKER_TIMEOUT_S:.0f}s; run wedged")
    kind, value = conn.recv()
    if kind == "error":
        raise RuntimeError(f"shard {shard} worker failed:\n{value}")
    return kind, value


def _run_workers(sub_specs: list[ScenarioSpec], router: _BoundaryRouter,
                 sync: _SyncPlan, coupling: Optional[dict],
                 start_method: Optional[str]) -> list[ShardResult]:
    """Coordinator: one worker process per shard, barrier per window."""
    pipes, workers = [], []
    first_window = sync.first_window()
    try:
        context = (multiprocessing.get_context(start_method)
                   if start_method else multiprocessing.get_context())
        for index, sub in enumerate(sub_specs):
            parent, child = context.Pipe()
            worker = context.Process(
                target=_shard_worker,
                args=(child, {"spec": sub.to_dict(), "shard_index": index,
                              "first_window": first_window,
                              "horizon": sync.horizon,
                              "coupling": coupling}),
                name=f"repro-shard-{index}", daemon=True)
            worker.start()
            child.close()
            pipes.append(parent)
            workers.append(worker)
    except (ImportError, NotImplementedError, OSError, PermissionError) as exc:
        # Partial startup (e.g. EAGAIN on the Nth fork): reap the workers
        # that did start before falling back, or they would simulate the
        # whole scenario concurrently with the in-process retry.
        for conn in pipes:
            conn.close()
        for worker in workers:
            worker.terminate()
            worker.join(timeout=5.0)
        raise _WorkersUnavailable(str(exc)) from exc
    try:
        window_end = first_window
        while True:
            sync.windows += 1
            outputs, peeks, idles = [], [], []
            for shard, conn in enumerate(pipes):
                _kind, (batch, peek, idle) = _recv(conn, shard)
                outputs.append(batch)
                peeks.append(peek)
                idles.append(idle)
            inbound = router.route(outputs)
            done = window_end >= sync.horizon - 1e-12
            next_window = (window_end if done else
                           sync.next_window(window_end, peeks,
                                            router.last_min_deliver,
                                            all(idles)))
            for conn, batch in zip(pipes, inbound):
                conn.send(("proceed", (batch, next_window)))
            if done:
                break
            window_end = next_window
        results = []
        for shard, conn in enumerate(pipes):
            _kind, result = _recv(conn, shard)
            results.append(result)
        return results
    finally:
        for conn in pipes:
            conn.close()
        for worker in workers:
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - defensive cleanup
                worker.terminate()


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #
def run_scenario_sharded(config: ScenarioSpec, shards: Optional[int] = None,
                         inprocess: Optional[bool] = None,
                         start_method: Optional[str] = None,
                         adaptive: Optional[bool] = None
                         ) -> ScenarioResult:
    """Run ``config`` with cells sharded across processes; merged result.

    Falls back transparently: unshardable specs (single cell, wired
    middlebox, SNR mobility) run on the classic single loop; platforms that
    cannot host worker processes use the in-process synchronizer (identical
    results — only wall-clock differs).  ``shards`` overrides the spec's
    worker count and ``adaptive`` the spec's ``sharding.adaptive_windows``
    (the fixed-cadence baseline is ``adaptive=False``).
    """
    config.validate()
    blockers = sharding_blockers(config)
    if blockers:
        if config.sharding.mode == "explicit":
            raise ShardPlanError("spec cannot be sharded: "
                                 + "; ".join(blockers))
        unsharded = dataclasses.replace(config,
                                        sharding=ShardingSpec(mode="off"))
        return build_scenario(unsharded).run()
    plan = build_shard_plan(config, shards=shards)
    if plan.num_shards <= 1:
        unsharded = dataclasses.replace(config,
                                        sharding=ShardingSpec(mode="off"))
        return build_scenario(unsharded).run()
    sub_specs = split_spec(config, plan)
    coupling_payload = None
    coupling_intervals: list[tuple[float, float]] = []
    if config.mobility.enabled:
        coupling_intervals = mobility_coupling_intervals(config, plan)
        coupling_payload = {"full_spec": config.to_dict(),
                            "assignment": plan.assignment,
                            "lookahead": plan.lookahead}
    router = _BoundaryRouter.for_plan(
        config, plan, ue_ip=ue_ip_address,
        mobility_coupled=bool(coupling_intervals))
    if adaptive is None:
        adaptive = config.sharding.adaptive_windows
    # Address-alias coupling (defensive-only today) has no schedule the
    # adaptive clock could jump by; fall back to fixed cadence for it.
    sync = _SyncPlan(horizon=config.duration_s, lookahead=plan.lookahead,
                     boundary_required=router.boundary_required,
                     adaptive=adaptive and not router.ip_conflict,
                     coupling=coupling_intervals)
    if inprocess is None:
        inprocess = bool(os.environ.get(INPROCESS_ENV))
    results = None
    if not inprocess:
        try:
            results = _run_workers(sub_specs, router, sync, coupling_payload,
                                   start_method)
        except _WorkersUnavailable as exc:
            sync.windows = 0
            warnings.warn(
                f"shard worker processes unavailable ({exc}); running all "
                f"{plan.num_shards} shards in-process (same results, no "
                "parallel speedup)", RuntimeWarning, stacklevel=2)
    if results is None:
        hosts = [ShardHost(sub, index, coupling=coupling_payload)
                 for index, sub in enumerate(sub_specs)]
        results = _run_hosts_inprocess(hosts, router, sync)
    if router.dropped_packets:
        warnings.warn(
            f"sharded run dropped {router.dropped_packets} unroutable "
            "uplink packet(s) at the shard boundary (the single loop drops "
            "these silently)", RuntimeWarning, stacklevel=2)
    stats = {"windows": sync.windows,
             "lookahead": plan.lookahead,
             "adaptive_windows": sync.adaptive,
             "boundary_required": router.boundary_required,
             "routed_packets": router.routed_packets,
             "shards": plan.num_shards}
    return merge_shard_results(config, plan, results, sharding_stats=stats)


def run_scenario_dict_sharded(spec_dict: dict,
                              shards: Optional[int] = None) -> ScenarioResult:
    """Sharded twin of ``run_scenario_dict`` (sweep-cell form)."""
    return run_scenario_sharded(ScenarioSpec.from_dict(spec_dict),
                                shards=shards)


__all__ = [
    "ConservativeSyncError",
    "ShardHost",
    "ShardPlan",
    "ShardPlanError",
    "ShardResult",
    "ShardingSpec",
    "boundary_lookahead",
    "build_shard_plan",
    "merge_shard_results",
    "mobility_coupling_intervals",
    "run_scenario_sharded",
    "run_scenario_dict_sharded",
    "sharding_blockers",
    "split_spec",
    "window_schedule",
]
