"""Process-per-cell sharding of multi-cell scenarios.

A multi-cell :class:`~repro.experiments.spec.ScenarioSpec` describes N radio
cells sharing one 5G core.  The single event loop simulates them back to
back; this module instead runs **one simulator per shard of cells, each in
its own worker process**, synchronized conservatively — the same federated
decomposition distributed ns-3/OMNeT++ deployments use.

Why it is exact
---------------
The only path between two cells is WAN → 5G core → RAN, and the core adds a
fixed processing delay with no queueing, so a cell can never observe another
cell's events closer than one WAN leg away.  Each shard therefore advances in
**lookahead windows** equal to the minimum WAN one-way delay of any flow: at
every window boundary the shards exchange timestamped packet batches (the
"core/WAN boundary"), and a packet handed off inside window ``[t, t+L]`` is
delivered at ``handoff + L >= t + L``, i.e. never inside a window the
receiving shard has already simulated.  No rollback is ever needed.  In the
common case the split proves no packet can cross shards at all (every
flow's server, WAN pipes, core routes and UE are co-located), the lookahead
over zero inter-shard links is unbounded, and each shard runs to the
horizon in one window with no barrier exchanges.

Determinism contract
--------------------
Every random stream in a scenario is named per cell, per UE, per bearer or
per flow (``channel-ue3``, ``air-ue3``, ``l4span-mark-ue3/drb1``, ...), and
shard simulators reuse the *master* seed, so a stream's seed and draw
sequence are identical whether its cell runs in the shared loop or in any
shard.  Consequently a sharded run is deterministic for a fixed shard map,
reproducible across repeats and shard counts, and — on a static channel —
produces **per-flow metrics identical to the single-loop run** (the fading
profiles are identical too).  Scenarios the split cannot reproduce exactly
are refused up front by :func:`sharding_blockers` and fall back to the
single loop: cells coupled through a wired middlebox, and UE populations
whose client address space wraps (>250 UEs sharing an IP, which even the
single loop only resolves by last-registration-wins misdelivery).

The per-shard collector outputs are recombined by the merge helpers in
:mod:`repro.metrics.collectors` into the exact single-loop report schema.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import warnings
from dataclasses import dataclass
from typing import Optional

from repro.experiments.scenario import (BuiltScenario, FlowResult,
                                        ScenarioResult, ScenarioSpec,
                                        build_scenario, ue_ip_address)
from repro.experiments.spec import ShardingSpec
from repro.metrics.collectors import (DelayBreakdownAccumulator,
                                      merge_numeric_summaries,
                                      merge_sample_dicts)
from repro.net.packet import Packet

#: Environment variable forcing the in-process synchronizer (no worker
#: processes), e.g. on sandboxes that cannot fork.
INPROCESS_ENV = "REPRO_SHARD_INPROCESS"

#: Seconds the coordinator waits for a worker message before declaring the
#: run wedged (workers simulate milliseconds per window; this is generous).
_WORKER_TIMEOUT_S = 600.0


class ShardPlanError(ValueError):
    """Raised when a spec cannot be sharded as requested."""


class ConservativeSyncError(RuntimeError):
    """A boundary packet arrived inside an already-simulated window."""


# --------------------------------------------------------------------- #
# Planning: which cell runs where, and how far shards may run ahead
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardPlan:
    """A concrete placement of cells onto shards plus the lookahead window.

    Attributes:
        assignment: ``cell_id -> shard index`` (shard indices are dense,
            ``0 .. num_shards-1``).
        num_shards: number of worker loops.
        lookahead: conservative synchronization window in seconds — the
            minimum WAN one-way leg of any flow, i.e. the closest one cell's
            events can ever matter to another.
    """

    assignment: dict[int, int]
    num_shards: int
    lookahead: float

    def cells_of(self, shard: int) -> list[int]:
        """Cell ids placed on ``shard``, in declaration order."""
        return [cell for cell, s in self.assignment.items() if s == shard]


def sharding_blockers(spec: ScenarioSpec) -> list[str]:
    """Human-readable reasons why ``spec`` cannot be sharded (empty = can)."""
    blockers = []
    if len(spec.resolved_cells()) < 2:
        blockers.append("fewer than two cells")
    if spec.wired_bottleneck_mbps is not None:
        blockers.append("a wired middlebox queues all cells' traffic jointly")
    ues = spec.resolved_ues()
    if len({ue_ip_address(ue.ue_id) for ue in ues}) < len(ues):
        # The /24 client address space wraps past 250 UEs; the single loop
        # resolves the collision with a last-registration-wins routing table
        # (misdelivering the earlier UE's flows), and a shard split cannot
        # reproduce that byte-for-byte when the colliding UEs land on
        # different shards.  Refuse rather than silently diverge.
        blockers.append("UE address space wraps (>250 UEs share an IP)")
    return blockers


def boundary_lookahead(spec: ScenarioSpec) -> float:
    """The conservative window: the minimum WAN one-way leg of any flow."""
    rtts = [flow.wan_rtt if flow.wan_rtt is not None else spec.wan_rtt
            for flow in spec.resolved_flows()]
    rtt = min(rtts) if rtts else spec.wan_rtt
    return max(rtt / 2.0, 1e-4)


def build_shard_plan(spec: ScenarioSpec,
                     shards: Optional[int] = None) -> ShardPlan:
    """Turn the spec's ``sharding`` block into a concrete :class:`ShardPlan`.

    ``shards`` overrides the block's worker count (the CLI's ``--shards``).
    Auto mode distributes cells round-robin in declaration order; explicit
    mode uses the block's map with shard indices renumbered densely.
    """
    sharding = spec.sharding
    cell_ids = [cell.cell_id for cell in spec.resolved_cells()]
    if sharding.mode == "explicit":
        missing = sorted(set(cell_ids) - set(sharding.map))
        if missing:
            raise ShardPlanError(f"sharding map misses cell(s) {missing}")
        raw = {cell: sharding.map[cell] for cell in cell_ids}
        dense = {old: new for new, old in enumerate(sorted(set(raw.values())))}
        assignment = {cell: dense[shard] for cell, shard in raw.items()}
        num_shards = len(dense)
        if shards is not None and shards != num_shards:
            raise ShardPlanError(
                f"--shards {shards} conflicts with the explicit map's "
                f"{num_shards} shard(s); drop one of the two")
    else:
        num_shards = shards if shards is not None else sharding.shards
        if num_shards is None:
            num_shards = min(len(cell_ids), os.cpu_count() or 1)
        num_shards = max(1, min(int(num_shards), len(cell_ids)))
        assignment = {cell: index % num_shards
                      for index, cell in enumerate(cell_ids)}
    return ShardPlan(assignment=assignment, num_shards=num_shards,
                     lookahead=boundary_lookahead(spec))


def split_spec(spec: ScenarioSpec, plan: ShardPlan) -> list[ScenarioSpec]:
    """Split a validated spec into one self-contained sub-spec per shard.

    Each sub-spec keeps the master seed (the determinism contract above),
    carries the fully resolved cells/UEs/flows of its shard, and has
    sharding switched off.  Only the shard hosting the scenario's first cell
    keeps ``rate_probe`` (the single loop probes the first cell only).
    """
    cells = spec.resolved_cells()
    ues = spec.resolved_ues()
    flows = spec.resolved_flows()
    first_cell = cells[0].cell_id
    subs = []
    for shard in range(plan.num_shards):
        shard_cell_ids = {cell_id for cell_id, s in plan.assignment.items()
                          if s == shard}
        shard_cells = [c for c in cells if c.cell_id in shard_cell_ids]
        shard_ues = [u for u in ues if u.cell_id in shard_cell_ids]
        shard_ue_ids = {u.ue_id for u in shard_ues}
        shard_flows = [f for f in flows if f.ue_id in shard_ue_ids]
        subs.append(dataclasses.replace(
            spec,
            name=f"{spec.label()}#shard{shard}",
            num_ues=0,
            cells=shard_cells,
            ues=shard_ues,
            flows=shard_flows,
            rate_probe=spec.rate_probe and first_cell in shard_cell_ids,
            sharding=ShardingSpec(mode="off")))
    return subs


def window_schedule(duration: float, lookahead: float) -> list[float]:
    """The shared list of window-end times every participant iterates.

    Computed once and distributed so coordinator and workers can never drift
    apart through repeated floating-point accumulation.
    """
    ends = []
    t = 0.0
    while t < duration - 1e-12:
        t = min(t + lookahead, duration)
        ends.append(t)
    return ends


# --------------------------------------------------------------------- #
# One shard: a built sub-scenario advanced window by window
# --------------------------------------------------------------------- #
class _BoundaryBuffer:
    """PacketSink collecting this shard's outbound cross-boundary packets."""

    def __init__(self, sim) -> None:
        self._sim = sim
        self._outbound: list[tuple[float, Packet]] = []

    def receive(self, packet: Packet) -> None:
        self._outbound.append((self._sim.now, packet))

    def drain(self) -> list[tuple[float, Packet]]:
        out, self._outbound = self._outbound, []
        return out


@dataclass
class ShardResult:
    """Everything one shard ships back for the merge step (picklable)."""

    shard_index: int
    flows: list[FlowResult]
    queue_lengths: dict[str, list[int]]
    bearer_order: list[tuple[int, list[str]]]
    breakdown_count: int
    breakdown_sums: dict[str, float]
    marker_summaries: list[tuple[int, dict]]
    per_ue_throughput: dict[int, float]
    rate_errors: list[float]
    events_processed: int
    boundary_packets: int = 0
    windows: int = 0


class ShardHost:
    """One shard's simulator, its boundary buffer, and the window stepper.

    The host is synchronizer-agnostic: the in-process fallback drives a list
    of hosts directly, and :func:`_shard_worker` pumps one host over a pipe
    from a worker process — both through the same three methods.
    """

    def __init__(self, sub_spec: ScenarioSpec, shard_index: int) -> None:
        self.shard_index = shard_index
        self.scenario: BuiltScenario = build_scenario(sub_spec)
        self.boundary = _BoundaryBuffer(self.scenario.sim)
        self.scenario.core.remote_sink = self.boundary
        self.windows = 0
        self.boundary_packets = 0

    def advance(self, until: float) -> list[tuple[float, Packet]]:
        """Run the local loop up to ``until``; return drained outbound batch."""
        self.scenario.sim.run(until=until)
        self.windows += 1
        batch = self.boundary.drain()
        self.boundary_packets += len(batch)
        return batch

    def inject(self, batch: list[tuple[float, Packet]]) -> None:
        """Schedule inbound boundary packets onto the local loop.

        ``deliver_at`` stamps are produced by the router as
        ``handoff + lookahead``; the conservative window guarantees they are
        never in this shard's past — enforce it rather than assume it.
        """
        sim = self.scenario.sim
        core = self.scenario.core
        for deliver_at, packet in batch:
            if deliver_at < sim.now - 1e-12:
                raise ConservativeSyncError(
                    f"shard {self.shard_index}: boundary packet for "
                    f"t={deliver_at:.6f} arrived at local time "
                    f"{sim.now:.6f}; lookahead window violated")
            if core.knows_ue_address(packet.five_tuple.dst_ip):
                sink = core.receive          # downlink: to a local UE
            else:
                sink = core.receive_uplink   # uplink: to a local WAN path
            sim.schedule_at(max(deliver_at, sim.now), sink, packet)

    def finish(self) -> ShardResult:
        """Stop collectors and package this shard's results for the merge."""
        scenario = self.scenario
        scenario.stop_collectors()
        result = scenario.collect(scenario.sim.processed_events)
        return ShardResult(
            shard_index=self.shard_index,
            flows=result.flows,
            queue_lengths={name: list(values) for name, values
                           in scenario.queue_sampler.length_samples.items()},
            bearer_order=[(cell_id,
                           [str(key) for key, _ in gnb.du.rlc_items()])
                          for cell_id, gnb in scenario.gnbs.items()],
            breakdown_count=scenario.breakdown.count,
            breakdown_sums=dict(scenario.breakdown.sums),
            marker_summaries=scenario.marker_cell_summaries(),
            per_ue_throughput=result.per_ue_throughput,
            rate_errors=result.rate_estimation_errors,
            events_processed=result.events_processed,
            boundary_packets=self.boundary_packets,
            windows=self.windows)


# --------------------------------------------------------------------- #
# Boundary routing (coordinator side)
# --------------------------------------------------------------------- #
@dataclass
class _BoundaryRouter:
    """Routes drained boundary packets to the shard that can deliver them."""

    ip_to_shard: dict[str, int]
    flow_to_shard: dict[int, int]
    lookahead: float
    num_shards: int
    routed_packets: int = 0
    dropped_packets: int = 0

    #: True when two shards could ever owe each other a packet.
    #: ``split_spec`` co-locates every flow's server, WAN pipes, core routes
    #: and UE on one shard, and ``sharding_blockers`` refuses the one split
    #: that could alias addresses across shards (wrapped >250-UE spaces), so
    #: through :func:`run_scenario_sharded` this is always False today and
    #: the synchronizer runs a single window to the horizon — conservative
    #: lookahead over zero inter-federate links is unbounded.  The windowed
    #: barrier protocol below stays unit-tested scaffolding for future
    #: genuinely-coupled topologies (inter-cell handover, shared AQM).
    boundary_required: bool = False

    @classmethod
    def for_plan(cls, spec: ScenarioSpec, plan: ShardPlan,
                 ue_ip) -> "_BoundaryRouter":
        ip_to_shard = {}
        ip_conflict = False
        flow_to_shard = {}
        ue_cell = {}
        for ue in spec.resolved_ues():
            ue_cell[ue.ue_id] = ue.cell_id
            shard = plan.assignment[ue.cell_id]
            address = ue_ip(ue.ue_id)
            if ip_to_shard.setdefault(address, shard) != shard:
                # Defensive only: sharding_blockers refuses wrapped address
                # spaces before a plan is built, so run_scenario_sharded can
                # never reach this.  Kept for hand-built plans: last
                # registration wins, like the single core's routing table.
                ip_to_shard[address] = shard
                ip_conflict = True
        for flow in spec.resolved_flows():
            flow_to_shard[flow.flow_id] = plan.assignment[ue_cell[flow.ue_id]]
        return cls(ip_to_shard=ip_to_shard, flow_to_shard=flow_to_shard,
                   lookahead=plan.lookahead, num_shards=plan.num_shards,
                   boundary_required=ip_conflict)

    def route(self, outputs: list[list[tuple[float, Packet]]]
              ) -> list[list[tuple[float, Packet]]]:
        """Turn per-shard outbound batches into per-shard inbound batches."""
        inbound: list[list[tuple[float, Packet]]] = [
            [] for _ in range(self.num_shards)]
        for source, batch in enumerate(outputs):
            for handoff, packet in batch:
                target = self.ip_to_shard.get(packet.five_tuple.dst_ip)
                if target is None:
                    target = self.flow_to_shard.get(packet.flow_id)
                if target is None or target == source:
                    if not packet.is_ack:
                        # The single loop's core raises for an unroutable
                        # downlink datagram; a sharded run must be as loud,
                        # not silently corrupt the metrics.
                        raise KeyError(
                            f"no shard can deliver downlink packet for "
                            f"{packet.five_tuple.dst_ip} (flow "
                            f"{packet.flow_id}, from shard {source})")
                    # Unknown uplink flows are dropped silently by the
                    # single core too; count them for the post-run warning.
                    self.dropped_packets += 1
                    continue
                self.routed_packets += 1
                inbound[target].append((handoff + self.lookahead, packet))
        return inbound


# --------------------------------------------------------------------- #
# Result merge: per-shard collector outputs -> single-loop report schema
# --------------------------------------------------------------------- #
def merge_shard_results(config: ScenarioSpec, plan: ShardPlan,
                        results: list[ShardResult]) -> ScenarioResult:
    """Recombine shard results into the exact single-loop result schema.

    Orderings the single loop makes observable are reconstructed from the
    full spec: flows in declared flow order, queue samples cell by cell in
    declaration order, marker summaries merged over cells in declaration
    order.  ``events_processed`` is the sum over shard loops (the sharded
    run ticks one queue sampler per shard, so it exceeds the single-loop
    count by those extra sampler events).
    """
    results = sorted(results, key=lambda r: r.shard_index)
    flows_by_id = {flow.flow_id: flow for r in results for flow in r.flows}
    ordered_flows = [flows_by_id[f.flow_id] for f in config.resolved_flows()]

    bearer_names: dict[int, list[str]] = {}
    for r in results:
        for cell_id, names in r.bearer_order:
            bearer_names[cell_id] = names
    all_lengths = merge_sample_dicts(r.queue_lengths for r in results)
    queue_by_drb: dict[str, list[int]] = {}
    for cell in config.resolved_cells():
        for name in bearer_names.get(cell.cell_id, []):
            if name in all_lengths:
                queue_by_drb[name] = all_lengths[name]
    queue_samples = [sample for values in queue_by_drb.values()
                     for sample in values]

    breakdown = DelayBreakdownAccumulator()
    for r in results:
        breakdown.merge_from(r.breakdown_count, r.breakdown_sums)

    summaries: dict[int, dict] = {}
    for r in results:
        for cell_id, summary in r.marker_summaries:
            summaries[cell_id] = summary
    marker_summary = merge_numeric_summaries(
        [summaries[cell.cell_id] for cell in config.resolved_cells()
         if cell.cell_id in summaries])

    merged_ue = {}
    for r in results:
        merged_ue.update(r.per_ue_throughput)
    per_ue: dict[int, float] = {}
    for flow in config.resolved_flows():
        per_ue.setdefault(flow.ue_id, merged_ue.get(flow.ue_id, 0.0))

    return ScenarioResult(
        config=config,
        flows=ordered_flows,
        queue_length_samples=queue_samples,
        queue_length_by_drb=queue_by_drb,
        delay_breakdown=breakdown.averages(),
        marker_summary=marker_summary,
        per_ue_throughput=per_ue,
        rate_estimation_errors=[error for r in results
                                for error in r.rate_errors],
        duration_s=config.duration_s,
        events_processed=sum(r.events_processed for r in results))


# --------------------------------------------------------------------- #
# Synchronizers
# --------------------------------------------------------------------- #
def _run_hosts_inprocess(hosts: list[ShardHost], router: _BoundaryRouter,
                         windows: list[float]) -> list[ShardResult]:
    """Drive all shard hosts in one process, window by window.

    The sequential twin of the process synchronizer: same windows, same
    exchanges, same results — used as the sandbox fallback and by tests that
    must not depend on the platform's multiprocessing support.
    """
    for window_end in windows:
        outputs = [host.advance(window_end) for host in hosts]
        for host, batch in zip(hosts, router.route(outputs)):
            host.inject(batch)
    return [host.finish() for host in hosts]


def _shard_worker(conn, payload: dict) -> None:
    """Worker-process main: pump one :class:`ShardHost` over a pipe.

    Protocol, in lock-step with the coordinator for every window end W:
    worker sends ``("window", outbound_batch)`` after simulating up to W,
    then blocks for ``("proceed", inbound_batch)``.  After the last window it
    sends ``("result", ShardResult)``.  Any exception is shipped back as
    ``("error", traceback_text)`` instead of dying silently.
    """
    try:
        spec = ScenarioSpec.from_dict(payload["spec"])
        host = ShardHost(spec, payload["shard_index"])
        for window_end in payload["windows"]:
            conn.send(("window", host.advance(window_end)))
            _kind, inbound = conn.recv()
            host.inject(inbound)
        conn.send(("result", host.finish()))
    except Exception:  # pragma: no cover - ships the traceback to the parent
        import traceback
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:
            pass
    finally:
        conn.close()


class _WorkersUnavailable(RuntimeError):
    """Worker processes could not be created on this platform."""


def _recv(conn, shard: int):
    if not conn.poll(_WORKER_TIMEOUT_S):
        raise RuntimeError(f"shard {shard} sent nothing for "
                           f"{_WORKER_TIMEOUT_S:.0f}s; run wedged")
    kind, value = conn.recv()
    if kind == "error":
        raise RuntimeError(f"shard {shard} worker failed:\n{value}")
    return kind, value


def _run_workers(sub_specs: list[ScenarioSpec], router: _BoundaryRouter,
                 windows: list[float],
                 start_method: Optional[str]) -> list[ShardResult]:
    """Coordinator: one worker process per shard, barrier per window."""
    pipes, workers = [], []
    try:
        context = (multiprocessing.get_context(start_method)
                   if start_method else multiprocessing.get_context())
        for index, sub in enumerate(sub_specs):
            parent, child = context.Pipe()
            worker = context.Process(
                target=_shard_worker,
                args=(child, {"spec": sub.to_dict(), "shard_index": index,
                              "windows": windows}),
                name=f"repro-shard-{index}", daemon=True)
            worker.start()
            child.close()
            pipes.append(parent)
            workers.append(worker)
    except (ImportError, NotImplementedError, OSError, PermissionError) as exc:
        # Partial startup (e.g. EAGAIN on the Nth fork): reap the workers
        # that did start before falling back, or they would simulate the
        # whole scenario concurrently with the in-process retry.
        for conn in pipes:
            conn.close()
        for worker in workers:
            worker.terminate()
            worker.join(timeout=5.0)
        raise _WorkersUnavailable(str(exc)) from exc
    try:
        for _window_end in windows:
            outputs = []
            for shard, conn in enumerate(pipes):
                _kind, batch = _recv(conn, shard)
                outputs.append(batch)
            for conn, batch in zip(pipes, router.route(outputs)):
                conn.send(("proceed", batch))
        results = []
        for shard, conn in enumerate(pipes):
            _kind, result = _recv(conn, shard)
            results.append(result)
        return results
    finally:
        for conn in pipes:
            conn.close()
        for worker in workers:
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - defensive cleanup
                worker.terminate()


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #
def run_scenario_sharded(config: ScenarioSpec, shards: Optional[int] = None,
                         inprocess: Optional[bool] = None,
                         start_method: Optional[str] = None
                         ) -> ScenarioResult:
    """Run ``config`` with cells sharded across processes; merged result.

    Falls back transparently: unshardable specs (single cell, wired
    middlebox) run on the classic single loop; platforms that cannot host
    worker processes use the in-process synchronizer (identical results —
    only wall-clock differs).  ``shards`` overrides the spec's worker count.
    """
    config.validate()
    blockers = sharding_blockers(config)
    if blockers:
        if config.sharding.mode == "explicit":
            raise ShardPlanError("spec cannot be sharded: "
                                 + "; ".join(blockers))
        unsharded = dataclasses.replace(config,
                                        sharding=ShardingSpec(mode="off"))
        return build_scenario(unsharded).run()
    plan = build_shard_plan(config, shards=shards)
    if plan.num_shards <= 1:
        unsharded = dataclasses.replace(config,
                                        sharding=ShardingSpec(mode="off"))
        return build_scenario(unsharded).run()
    sub_specs = split_spec(config, plan)
    router = _BoundaryRouter.for_plan(config, plan, ue_ip=ue_ip_address)
    # Conservative lookahead over zero inter-shard links is unbounded:
    # when no packet can ever cross the boundary (the common, collision-free
    # split), each shard runs straight to the horizon in one window and the
    # barrier exchanges — one pipe round-trip per lookahead window — vanish.
    windows = (window_schedule(config.duration_s, plan.lookahead)
               if router.boundary_required else [config.duration_s])
    if inprocess is None:
        inprocess = bool(os.environ.get(INPROCESS_ENV))
    results = None
    if not inprocess:
        try:
            results = _run_workers(sub_specs, router, windows, start_method)
        except _WorkersUnavailable as exc:
            warnings.warn(
                f"shard worker processes unavailable ({exc}); running all "
                f"{plan.num_shards} shards in-process (same results, no "
                "parallel speedup)", RuntimeWarning, stacklevel=2)
    if results is None:
        hosts = [ShardHost(sub, index)
                 for index, sub in enumerate(sub_specs)]
        results = _run_hosts_inprocess(hosts, router, windows)
    if router.dropped_packets:
        warnings.warn(
            f"sharded run dropped {router.dropped_packets} unroutable "
            "uplink packet(s) at the shard boundary (the single loop drops "
            "these silently)", RuntimeWarning, stacklevel=2)
    return merge_shard_results(config, plan, results)


def run_scenario_dict_sharded(spec_dict: dict,
                              shards: Optional[int] = None) -> ScenarioResult:
    """Sharded twin of ``run_scenario_dict`` (sweep-cell form)."""
    return run_scenario_sharded(ScenarioSpec.from_dict(spec_dict),
                                shards=shards)


__all__ = [
    "ConservativeSyncError",
    "ShardHost",
    "ShardPlan",
    "ShardPlanError",
    "ShardResult",
    "ShardingSpec",
    "boundary_lookahead",
    "build_shard_plan",
    "merge_shard_results",
    "run_scenario_sharded",
    "run_scenario_dict_sharded",
    "sharding_blockers",
    "split_spec",
    "window_schedule",
]
