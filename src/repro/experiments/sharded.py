"""Process-per-cell sharding of multi-cell scenarios.

A multi-cell :class:`~repro.experiments.spec.ScenarioSpec` describes N radio
cells sharing one 5G core.  The single event loop simulates them back to
back; this module instead runs **one simulator per shard of cells, each in
its own worker process**, synchronized conservatively — the same federated
decomposition distributed ns-3/OMNeT++ deployments use.

Why it is exact
---------------
The only paths between two cells are WAN → 5G core → RAN and (with
mobility) the handover transfer/forwarding path, and every one of them has
at least one conservative **lookahead** of latency — the minimum WAN
one-way delay of any flow (handover interruption is validated to be no
shorter).  Shards advance in windows bounded by that lookahead; at every
window boundary they exchange timestamped batches at the core/WAN boundary.
Each boundary item carries its *true* single-loop delivery time (a downlink
packet is handed off at WAN-pipe entry stamped ``entry + wan_leg``, an
uplink ACK at core egress stamped ``egress + processing + wan_leg``), which
is always at least one lookahead in the receiver's future — so no shard
ever receives an event inside a window it has already simulated and no
rollback is ever needed.  In the boundary-free case (no mobility, no
address aliasing) the split proves no packet can cross shards at all, the
lookahead over zero inter-shard links is unbounded, and each shard runs to
the horizon in one window with no barrier exchanges.

Mobility coupling and adaptive windows
--------------------------------------
Inter-cell handover (:mod:`repro.ran.mobility`) is what makes the barrier
loop load-bearing: a UE's serving cell — and with it its whole RAN-side
termination — can live on a different shard than its content server and WAN
pipes.  While it does, every data packet, ACK, handover transfer and
forwarded SDU of its flows crosses through :class:`_BoundaryRouter`.  The
synchronizer exploits the *schedule*: outside the union of cross-shard
serving intervals (padded by the interruption window and proven drained by
per-shard in-flight reports) no boundary traffic can exist, so adaptive
mode (``sharding.adaptive_windows``, the default) jumps the barrier
straight to the next coupling interval — and inside coupled phases it still
widens windows past ``W + lookahead`` when every shard's next event
(:meth:`repro.sim.engine.Simulator.peek_time`) and every in-flight delivery
provably allow it.  Fixed mode runs the classic one-pipe-round-trip-per-
lookahead cadence (~316 exchanges for 6 s at 19 ms) and exists as the
benchmark baseline.

Determinism contract
--------------------
Every random stream in a scenario is named per cell, per UE, per bearer or
per flow (``channel-ue3``, ``air-ue3``, ``l4span-mark-ue3/drb1``, ...), and
shard simulators reuse the *master* seed, so a stream's seed and draw
sequence are identical whether its cell runs in the shared loop or in any
shard.  Handover re-attachments create *fresh attach-qualified* streams
(``air-ue3#a1``) on whichever loop hosts the target cell, preserving the
contract under mobility.  Consequently a sharded run is deterministic for a
fixed shard map, reproducible across repeats and shard counts, and — on a
static channel — produces **per-flow metrics identical to the single-loop
run**.

Coupled topologies
------------------
Five couplings the barrier once refused are now first-class protocol:

* **A shared wired middlebox** is hosted on one shard; every shard cuts
  its senders at WAN entry (``mbx_in`` boundary items into the host
  queue), the host's egress routes each packet by serving cell at egress
  time (``mbx_core_dl``, pre-stamped), and the synchronizer caps every
  window at the host queue's earliest possible egress plus the core
  processing delay — the one hop shorter than the lookahead.
* **SNR-triggered handovers** run two-phase decide-then-commit: the
  serving shard's monitor *decides*, the decision crosses the next barrier
  as a broadcast ``ho_decision`` item, and every loop *commits* the
  transition ``commit_lag`` later — the lag (one lookahead + the longest
  WAN leg + core processing, see
  :func:`~repro.experiments.scenario.snr_commit_lag`) is exactly what
  guarantees every shard and every in-flight routing lookup learns of the
  decision strictly before the commit time.  Each commit pins a barrier at
  its exact time.
* **Interruptions shorter than the lookahead** turn cross-shard handover
  times into *commit points* (:func:`schedule_commit_points`): the barrier
  lands exactly on the handover and the transfer crosses with a
  same-instant stamp instead of one lookahead late.
* **Wrapped >250-UE address spaces** are routed address-space-aware: the
  single core resolves a client-IP collision last-registration-wins (the
  highest ue_id sharing the address receives — and mis-receives — every
  packet for it), so every shard unregisters losing addresses and re-cuts
  losing senders at WAN entry toward the winner's shard
  (:class:`_AliasRouting`), reproducing the misdelivery byte-for-byte.
* **Zero-rate middlebox schedule steps** stall the shared queue; the
  window floor falls back to the schedule's next rate-resume event (the
  earliest instant the head packet could start serialising), or — with no
  resume left — stops constraining windows at all, exactly mirroring the
  single loop's stalled link.

Scenarios a split genuinely cannot reproduce exactly are still refused up
front by :func:`sharding_blockers` and fall back (with a warning) to the
single loop: explicitly-undersized SNR commit lags, and wrapped address
spaces whose colliding UEs are potentially mobile (mobility re-registers
addresses mid-run, so the winner would change unreproducibly).

The per-shard collector outputs are recombined by the merge helpers in
:mod:`repro.metrics.collectors` into the exact single-loop report schema;
a mobile flow's samples, collected on every shard that served it, are
re-merged in delivery-time order.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import warnings
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Optional

from bisect import bisect_right, insort

from repro.experiments.scenario import (BuiltScenario, FlowResult,
                                        ScenarioResult, ScenarioSpec,
                                        attach_data_gaps, build_scenario,
                                        min_snr_commit_lag,
                                        mobility_topology, snr_commit_lag,
                                        ue_ip_address)
from repro.experiments.runner import active_sweep_workers, core_budget
from repro.experiments.spec import MobilitySpec, ShardingSpec
from repro.metrics.collectors import (DelayBreakdownAccumulator,
                                      ThroughputCollector, TimeSeries,
                                      merge_numeric_summaries,
                                      merge_sample_dicts)
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.router import BottleneckRouter
from repro.ran.core import CORE_PROCESSING_DELAY
from repro.ran.mobility import (HandoverDecision, HandoverTransfer,
                                MobilityManager, merge_handover_records)
from repro.units import mbps, transmission_time

#: Environment variable forcing the in-process synchronizer (no worker
#: processes), e.g. on sandboxes that cannot fork.
INPROCESS_ENV = "REPRO_SHARD_INPROCESS"

#: Seconds the coordinator waits for a worker message before declaring the
#: run wedged (workers simulate milliseconds per window; this is generous).
_WORKER_TIMEOUT_S = 600.0

#: Pseudo shard index addressing *every other* shard: the boundary router
#: fans a broadcast item (an SNR handover decision) out to all shards but
#: its source.
_BROADCAST = -1


class ShardPlanError(ValueError):
    """Raised when a spec cannot be sharded as requested."""


class ConservativeSyncError(RuntimeError):
    """A boundary packet arrived inside an already-simulated window."""


# --------------------------------------------------------------------- #
# Planning: which cell runs where, and how far shards may run ahead
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardPlan:
    """A concrete placement of cells onto shards plus the lookahead window.

    Attributes:
        assignment: ``cell_id -> shard index`` (shard indices are dense,
            ``0 .. num_shards-1``).
        num_shards: number of worker loops.
        lookahead: conservative synchronization window in seconds — the
            minimum WAN one-way leg of any flow, i.e. the closest one cell's
            events can ever matter to another.
    """

    assignment: dict[int, int]
    num_shards: int
    lookahead: float

    def cells_of(self, shard: int) -> list[int]:
        """Cell ids placed on ``shard``, in declaration order."""
        return [cell for cell, s in self.assignment.items() if s == shard]


def wrapped_address_aliases(spec: ScenarioSpec) -> dict[str, int]:
    """Wrapped client addresses mapped to their *winning* UE id (empty=none).

    The /24 client address space wraps past 250 UEs
    (:func:`~repro.experiments.scenario.ue_ip_address`).  The single loop
    registers UE addresses in ascending ue_id order and the core's routing
    table is last-write-wins, so every packet addressed to a wrapped
    address is delivered (and mis-delivered) to the **highest ue_id**
    sharing it — that UE is the address's winner.  A pure function of the
    spec, so the boundary router, the per-shard alias runtime and the merge
    step all derive the same verdict without building scenarios.
    """
    last: dict[str, int] = {}
    conflicts: set[str] = set()
    for ue in spec.resolved_ues():  # ascending ue_id — registration order
        address = ue_ip_address(ue.ue_id)
        if address in last:
            conflicts.add(address)
        last[address] = ue.ue_id
    return {address: last[address] for address in sorted(conflicts)}


def sharding_blockers(spec: ScenarioSpec) -> list[str]:
    """Human-readable reasons why ``spec`` cannot be sharded (empty = can).

    The coupled-topology protocol retired the historical blockers: a shared
    wired middlebox is hosted on one shard with its traffic exchanged as
    boundary items, SNR-triggered handovers run the two-phase
    decide-then-commit protocol, interruptions shorter than the lookahead
    force a barrier at the commit time, wrapped >250-UE address spaces are
    routed address-space-aware at the winner's shard, and zero-rate
    middlebox schedule steps floor the window at the rate-resume event.
    What remains unshardable is what a split genuinely cannot reproduce
    byte-for-byte.
    """
    blockers = []
    if len(spec.resolved_cells()) < 2:
        blockers.append("fewer than two cells")
    aliases = wrapped_address_aliases(spec)
    if aliases:
        # The single loop resolves a wrapped address last-registration-wins
        # — a *static* property the alias runtime reproduces exactly.  A
        # potentially mobile collider re-registers its address at every
        # handover, making the winner a function of handover timing the
        # split cannot reproduce; refuse rather than silently diverge.
        wrapped_ues = {ue.ue_id for ue in spec.resolved_ues()
                       if ue_ip_address(ue.ue_id) in aliases}
        if wrapped_ues & potentially_mobile_ues(spec):
            blockers.append("a potentially mobile UE shares a wrapped "
                            "client address")
    if (spec.mobility.mode == "snr"
            and spec.mobility.commit_lag_s is not None
            and spec.mobility.commit_lag_s
            < min_snr_commit_lag(spec) - 1e-12):
        # A commit lag below one lookahead + the longest WAN leg means a
        # decision could commit before the barrier publishes it (or before
        # in-flight routing lookups resolve); shards would diverge.
        blockers.append("mobility.commit_lag_s is below the safe minimum "
                        f"({min_snr_commit_lag(spec):.6f}s) a shard split "
                        "can honour")
    return blockers


def boundary_lookahead(spec: ScenarioSpec) -> float:
    """The conservative window: the minimum WAN one-way leg of any flow."""
    rtts = [flow.wan_rtt if flow.wan_rtt is not None else spec.wan_rtt
            for flow in spec.resolved_flows()]
    rtt = min(rtts) if rtts else spec.wan_rtt
    return max(rtt / 2.0, 1e-4)


def build_shard_plan(spec: ScenarioSpec,
                     shards: Optional[int] = None) -> ShardPlan:
    """Turn the spec's ``sharding`` block into a concrete :class:`ShardPlan`.

    ``shards`` overrides the block's worker count (the CLI's ``--shards``).
    Auto mode distributes cells round-robin in declaration order; explicit
    mode uses the block's map with shard indices renumbered densely.
    """
    sharding = spec.sharding
    cell_ids = [cell.cell_id for cell in spec.resolved_cells()]
    if sharding.mode == "explicit":
        missing = sorted(set(cell_ids) - set(sharding.map))
        if missing:
            raise ShardPlanError(f"sharding map misses cell(s) {missing}")
        raw = {cell: sharding.map[cell] for cell in cell_ids}
        dense = {old: new for new, old in enumerate(sorted(set(raw.values())))}
        assignment = {cell: dense[shard] for cell, shard in raw.items()}
        num_shards = len(dense)
        if shards is not None and shards != num_shards:
            raise ShardPlanError(
                f"--shards {shards} conflicts with the explicit map's "
                f"{num_shards} shard(s); drop one of the two")
        active = active_sweep_workers()
        if active > 1 and num_shards * active > core_budget():
            # An explicit map cannot be clamped without breaking the
            # requested placement; warn about the oversubscription instead.
            warnings.warn(
                f"{active} sweep workers x {num_shards} explicit shards "
                f"exceeds the host's core budget {core_budget()}; consider "
                "fewer workers or REPRO_CORE_BUDGET",
                RuntimeWarning, stacklevel=2)
    else:
        num_shards = shards if shards is not None else sharding.shards
        if num_shards is None:
            num_shards = min(len(cell_ids), os.cpu_count() or 1)
        num_shards = max(1, min(int(num_shards), len(cell_ids)))
        active = active_sweep_workers()
        if active > 1:
            # Nested parallelism: this scenario runs inside a sweep worker,
            # so workers x shards must stay within the host's core budget.
            allowed = max(1, core_budget() // active)
            if num_shards > allowed:
                warnings.warn(
                    f"{active} sweep workers x {num_shards} shards exceeds "
                    f"the host's core budget {core_budget()}; clamping to "
                    f"{allowed} shard(s) per scenario (override with "
                    "REPRO_CORE_BUDGET)", RuntimeWarning, stacklevel=2)
                num_shards = allowed
        assignment = {cell: index % num_shards
                      for index, cell in enumerate(cell_ids)}
    return ShardPlan(assignment=assignment, num_shards=num_shards,
                     lookahead=boundary_lookahead(spec))


def split_spec(spec: ScenarioSpec, plan: ShardPlan) -> list[ScenarioSpec]:
    """Split a validated spec into one self-contained sub-spec per shard.

    Each sub-spec keeps the master seed (the determinism contract above),
    carries the fully resolved cells/UEs/flows of its shard, and has
    sharding *and mobility* switched off — a mobile UE's flows, senders and
    WAN pipes live on its **home** shard (the shard of its initial cell),
    and the shard-local :class:`~repro.ran.mobility.MobilityManager` built
    from the full spec executes arrivals/departures against the local
    cells.  Only the shard hosting the scenario's first cell keeps
    ``rate_probe`` (the single loop probes the first cell only).  The wired
    middlebox is likewise stripped: the coupling runtime rebuilds the one
    shared queue on its host shard instead of one queue per shard.
    """
    cells = spec.resolved_cells()
    ues = spec.resolved_ues()
    flows = spec.resolved_flows()
    first_cell = cells[0].cell_id
    subs = []
    for shard in range(plan.num_shards):
        shard_cell_ids = {cell_id for cell_id, s in plan.assignment.items()
                          if s == shard}
        shard_cells = [c for c in cells if c.cell_id in shard_cell_ids]
        shard_ues = [u for u in ues if u.cell_id in shard_cell_ids]
        shard_ue_ids = {u.ue_id for u in shard_ues}
        shard_flows = [f for f in flows if f.ue_id in shard_ue_ids]
        subs.append(dataclasses.replace(
            spec,
            name=f"{spec.label()}#shard{shard}",
            num_ues=0,
            cells=shard_cells,
            ues=shard_ues,
            flows=shard_flows,
            rate_probe=spec.rate_probe and first_cell in shard_cell_ids,
            sharding=ShardingSpec(mode="off"),
            mobility=MobilitySpec(),
            wired_bottleneck_mbps=None,
            wired_bottleneck_schedule=[]))
    return subs


def potentially_mobile_ues(spec: ScenarioSpec) -> set[int]:
    """UEs whose serving cell may change mid-run under this spec.

    Scheduled mobility names them in its itineraries; the SNR monitor may
    move any watched UE (``mobility.ues``, or every UE when empty), so a
    sharded run treats the whole watched set as mobile — their flows are
    entry-routed by the dynamic itinerary and their samples re-merged by
    :func:`merge_shard_results`, whether or not a handover actually fires.
    """
    if not spec.mobility.enabled:
        return set()
    if spec.mobility.mode == "snr":
        if spec.mobility.ues:
            return set(spec.mobility.ues)
        return {ue.ue_id for ue in spec.resolved_ues()}
    return mobility_topology(spec).mobile_ue_ids()


def schedule_commit_points(spec: ScenarioSpec, plan: ShardPlan) -> list[float]:
    """Barrier times the handover *schedule* forces on the synchronizer.

    A cross-shard handover whose interruption is shorter than the lookahead
    cannot ship its transfer one lookahead late (receiver state would land
    after service resumed); instead the synchronizer places a barrier at
    the handover time itself and the transfer crosses with a same-instant
    delivery stamp.  Interruptions of at least one lookahead keep the
    classic stamp and need no barrier.
    """
    if spec.mobility.interruption_s >= plan.lookahead - 1e-12:
        return []
    points = []
    for tr in mobility_topology(spec).transitions():
        if (plan.assignment[tr.from_cell] != plan.assignment[tr.to_cell]
                and 0.0 < tr.time < spec.duration_s):
            points.append(tr.time)
    return sorted(set(points))


def mobility_coupling_intervals(spec: ScenarioSpec,
                                plan: ShardPlan) -> list[tuple[float, float]]:
    """Time intervals during which cross-shard boundary traffic can exist.

    A mobile UE couples shards exactly while it is served away from its
    home shard: downlink deliveries into the serving shard happen inside
    the serving segment (the WAN-entry cut routes by arrival time), and the
    handover transfer / forwarded SDUs / uplink tail extend at most
    ``max(lookahead, interruption)`` past it — the in-flight uplink tail
    beyond that is covered dynamically by the per-shard drained reports.
    Returns merged, sorted ``(start, end)`` pairs; empty means every split
    of this spec is boundary-free (``split_spec`` detects mobility-coupled
    splits through exactly this function).
    """
    if not spec.mobility.enabled:
        return []
    topology = mobility_topology(spec)
    horizon = spec.duration_s
    pad = max(plan.lookahead, spec.mobility.interruption_s)
    raw: list[tuple[float, float]] = []
    for ue_id, itinerary in topology.itineraries.items():
        home = plan.assignment[itinerary[0][1]]
        for index, (start, cell) in enumerate(itinerary):
            end = (itinerary[index + 1][0] if index + 1 < len(itinerary)
                   else horizon)
            if plan.assignment[cell] != home and start < horizon:
                raw.append((start, min(end, horizon) + pad))
    raw.sort()
    merged: list[tuple[float, float]] = []
    for start, end in raw:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def window_schedule(duration: float, lookahead: float) -> list[float]:
    """The fixed-cadence list of window-end times (one per lookahead).

    Retained for direct window-by-window driving in tests; the runtime
    itself steps through :class:`_SyncPlan`, whose fixed mode reproduces
    exactly this recurrence.
    """
    ends = []
    t = 0.0
    while t < duration - 1e-12:
        t = min(t + lookahead, duration)
        ends.append(t)
    return ends


class _SyncPlan:
    """Decides how far all shards may advance before the next barrier.

    ``fixed`` mode steps ``W -> min(horizon, W + lookahead)``.  Adaptive
    mode additionally (a) jumps across phases where the mobility schedule
    (plus the shards' drained reports) proves no boundary traffic can
    exist, and (b) inside coupled phases widens past the fixed step when
    every shard's next pending event and every in-flight boundary delivery
    are provably later — any future handoff happens at an event ≥ that
    floor and is delivered ≥ one lookahead after it.

    Two coupling mechanisms constrain every mode, fixed included:

    * **Commit points** — exact times a barrier must land on: scheduled
      cross-shard handovers with interruption < lookahead (known up front)
      and SNR handover commits (added mid-run when a decision crosses the
      barrier).  A commit shrinks the next window to the commit time.
    * **The middlebox floor** — with a shared wired middlebox hosted on one
      shard, its egress feeds *remote* cores only one core-processing delay
      later, far inside the lookahead.  The window is capped at the
      earliest possible egress (the host's in-flight completion / earliest
      pending arrival, combined with inbound deliveries routed to the
      host) plus that processing delay; arrivals caused by events still
      behind the global floor land a full lookahead + processing later and
      never bind.

    ``always_coupled`` (SNR mobility or a middlebox) disables schedule
    jumps — there is no schedule proving any phase boundary-free.
    """

    def __init__(self, horizon: float, lookahead: float,
                 boundary_required: bool, adaptive: bool,
                 coupling: list[tuple[float, float]],
                 commit_points: Optional[list[float]] = None,
                 always_coupled: bool = False,
                 mbx_shard: Optional[int] = None,
                 core_processing: float = CORE_PROCESSING_DELAY) -> None:
        self.horizon = horizon
        self.lookahead = lookahead
        self.boundary_required = boundary_required
        self.adaptive = adaptive
        self.coupling = coupling
        self.commit_points: list[float] = sorted(set(commit_points or ()))
        self.always_coupled = always_coupled
        self.mbx_shard = mbx_shard
        self.core_processing = core_processing
        self.windows = 0

    def add_commit_point(self, when: float) -> None:
        """Register a mid-run commit (an SNR decision crossing the barrier)."""
        if when < self.horizon and when not in self.commit_points:
            insort(self.commit_points, when)

    def _commit_cap(self, now: float) -> Optional[float]:
        index = bisect_right(self.commit_points, now + 1e-12)
        if index < len(self.commit_points):
            return self.commit_points[index]
        return None

    def _capped(self, now: float, window: float,
                mbx_floor: Optional[float]) -> float:
        cap = self._commit_cap(now)
        if cap is not None:
            window = min(window, cap)
        if self.mbx_shard is not None and mbx_floor is not None:
            window = min(window, mbx_floor + self.core_processing)
        # Every component is strictly after ``now`` (commit caps by
        # construction, the middlebox bound by the processing delay), so
        # the clamp below never binds; it guards hand-built plans.
        return min(self.horizon, max(window, now + 1e-12))

    def first_window(self) -> float:
        """Where the first barrier lands (the horizon when boundary-free)."""
        if not self.boundary_required:
            return self.horizon
        window = min(self.horizon, self.lookahead)
        if self.adaptive and not self.always_coupled:
            jump = self._jump_target(0.0)
            if jump is not None:
                window = jump
        # The middlebox is provably idle before the first window (the
        # earliest WAN entry delivers one lookahead in), so only commit
        # points cap it.
        cap = self._commit_cap(0.0)
        if cap is not None:
            window = min(window, cap)
        return window

    def next_window(self, now: float, peeks: list[Optional[float]],
                    min_deliver: Optional[float], all_idle: bool,
                    mbx_floor: Optional[float] = None) -> float:
        """The next barrier after ``now`` given the shards' reports."""
        if now >= self.horizon:
            return now
        if self.adaptive and all_idle and not self.always_coupled:
            jump = self._jump_target(now)
            if jump is not None:
                return self._capped(now, jump, mbx_floor)
        base = now + self.lookahead
        if self.adaptive:
            floors = [p for p in peeks if p is not None]
            if min_deliver is not None:
                floors.append(min_deliver)
            if floors:
                base = max(base, min(floors) + self.lookahead)
        return self._capped(now, base, mbx_floor)

    def _jump_target(self, now: float) -> Optional[float]:
        """Next barrier when no coupling overlaps ``now``; None if coupled."""
        nxt = None
        for start, end in self.coupling:
            if start <= now < end:
                return None
            if start > now:
                nxt = start
                break
        target = self.horizon if nxt is None else min(nxt, self.horizon)
        return target if target > now else None


# --------------------------------------------------------------------- #
# One shard: a built sub-scenario advanced window by window
# --------------------------------------------------------------------- #
class _BoundaryBuffer:
    """Collects this shard's outbound cross-boundary items.

    Two item shapes share the buffer: legacy ``(handoff_time, packet)``
    pairs from the core's ``remote_sink`` (routed by the coordinator's
    address tables, delivered ``handoff + lookahead``) and pre-routed
    ``(deliver_at, payload, mode, target_shard)`` entries from the mobility
    runtime, which knows the exact delivery time and destination.
    """

    def __init__(self, sim) -> None:
        self._sim = sim
        self._outbound: list[tuple] = []

    def receive(self, packet: Packet) -> None:
        """Core ``remote_sink`` entry: record a table-routed handoff."""
        self._outbound.append((self._sim.now, packet))

    def hand_off(self, deliver_at: float, payload, target: int,
                 mode: str) -> None:
        """Record a pre-routed item with its exact delivery time."""
        self._outbound.append((deliver_at, payload, mode, target))

    def drain(self) -> list[tuple]:
        """Take (and clear) the items handed off since the last barrier."""
        out, self._outbound = self._outbound, []
        return out


@dataclass
class ShardResult:
    """Everything one shard ships back for the merge step (picklable)."""

    shard_index: int
    flows: list[FlowResult]
    queue_lengths: dict[str, list[int]]
    bearer_order: list[tuple[int, list[str]]]
    breakdown_count: int
    breakdown_sums: dict[str, float]
    marker_summaries: list[tuple[int, dict]]
    per_ue_throughput: dict[int, float]
    rate_errors: list[float]
    events_processed: int
    boundary_packets: int = 0
    windows: int = 0
    #: Mobile-flow sample fragments: a flow served by several shards has
    #: its one-way delays and raw delivery events re-merged in
    #: delivery-time order by :func:`merge_shard_results` (the throughput
    #: series is replayed from the merged events — its rate windows are
    #: event-anchored, so per-shard series cannot be concatenated).
    mobile_owd: dict[int, tuple[list[float], list[float]]] = \
        field(default_factory=dict)
    mobile_rate_events: dict[int, tuple[list[float], list[int]]] = \
        field(default_factory=dict)
    handover_records: list[dict] = field(default_factory=list)
    #: Per-flow ``(marked, downlink)`` packet counts over this shard's
    #: markers — a mobile flow's ``marked_fraction`` is recomputed at merge
    #: time from the counts summed across every shard that served it.
    flow_mark_counts: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: Aggregate background-population counters of this shard's cells.
    background: dict = field(default_factory=dict)


class _DynamicItinerary:
    """A UE's serving-cell timeline, growable by adopted SNR decisions.

    The scheduled prefix is immutable; :meth:`extend` appends a commit —
    lookups strictly before the commit time keep resolving the old cell,
    which is why a shard may adopt a decision the instant it learns of it
    (the commit lag guarantees no lookup at or past the commit time has
    been evaluated yet).
    """

    __slots__ = ("_times", "_cells")

    def __init__(self, itinerary: list[tuple[float, int]]) -> None:
        self._times = [entry[0] for entry in itinerary]
        self._cells = [entry[1] for entry in itinerary]

    def cell_at(self, t: float) -> int:
        """The serving cell at time ``t`` (handover boundaries inclusive)."""
        return self._cells[max(bisect_right(self._times, t) - 1, 0)]

    def extend(self, time: float, cell: int) -> None:
        """Append a committed handover (commit times strictly increase)."""
        self._times.append(time)
        self._cells.append(cell)


class _MobileWanPath:
    """The home-shard forward path of a mobile flow: routed at WAN entry.

    The cut happens at pipe *entry* because that is where one full WAN leg
    of latency — at least the conservative lookahead — still lies ahead, so
    the handoff can carry the true core-arrival time.  Arrival-time routing
    against the (dynamic) itinerary reproduces exactly the single loop's
    route-at-core-ingress behaviour: scheduled handovers are known up
    front, SNR commits are appended when their decisions are adopted —
    always before any lookup at or past the commit time.
    """

    def __init__(self, runtime: "_ShardMobility", flow_id: int,
                 ue_id: int, wan_leg: float) -> None:
        self._runtime = runtime
        self._flow_id = flow_id
        self._leg = wan_leg
        # Resolved once: the shared dynamic itinerary object (adopted SNR
        # commits mutate it in place, visible to this cached reference).
        self._itinerary = runtime.itinerary_of(ue_id)

    def receive(self, packet: Packet) -> None:
        """Route one downlink packet by its core-arrival time."""
        runtime = self._runtime
        sim = runtime.sim
        arrival = sim.now + self._leg
        target = runtime.assignment[self._itinerary.cell_at(arrival)]
        if target == runtime.shard_index:
            sim.schedule_at(arrival, runtime.core.receive, packet)
        else:
            runtime.boundary.hand_off(arrival, packet, target, "core_dl")


class _MobilityBoundarySink:
    """The core ``remote_sink`` of a mobility-aware shard.

    Uplink ACKs of mobile flows leaving a serving shard are pre-routed to
    their home shard carrying the true sender-arrival time
    (``egress + core processing + wan_leg``); everything else keeps the
    legacy table-routed path.
    """

    def __init__(self, runtime: "_ShardMobility",
                 buffer: _BoundaryBuffer) -> None:
        self._runtime = runtime
        self._buffer = buffer

    def receive(self, packet: Packet) -> None:
        """Pre-route a mobile flow's ACK home; defer the rest to the table."""
        runtime = self._runtime
        flow_id = packet.flow_id
        if packet.is_ack and flow_id in runtime.flow_home:
            deliver = ((runtime.sim.now + runtime.core_processing)
                       + runtime.flow_wan_leg[flow_id])
            self._buffer.hand_off(deliver, packet,
                                  runtime.flow_home[flow_id], "wan_ul")
            return
        self._buffer.receive(packet)


class _ShardMobility:
    """Glues one shard's scenario into the full-spec mobility plan.

    Builds the shard-local :class:`MobilityManager` (arrivals into and
    departures from local cells), rewires the home shard's mobile senders
    onto :class:`_MobileWanPath`, pre-routes mobile uplink through
    :class:`_MobilityBoundarySink`, ships handover transfers across the
    boundary (stamped one lookahead late, or at the commit barrier itself
    when the interruption is shorter than the lookahead), and — for SNR
    mobility — publishes this shard's handover decisions as broadcast
    boundary items and adopts the other shards' into the dynamic
    itineraries.
    """

    def __init__(self, host: "ShardHost", full_spec: ScenarioSpec,
                 assignment: dict[int, int], lookahead: float) -> None:
        self.host = host
        self.shard_index = host.shard_index
        self.assignment = {int(cell): int(shard)
                           for cell, shard in assignment.items()}
        self.lookahead = lookahead
        self.interruption = full_spec.mobility.interruption_s
        scenario = host.scenario
        self.sim = scenario.sim
        self.core = scenario.core
        self.core_processing = scenario.core.processing_delay
        self.boundary = host.boundary
        self.topology = mobility_topology(full_spec)
        self.itineraries = self.topology.itineraries
        self._dynamic: dict[int, _DynamicItinerary] = {
            ue_id: _DynamicItinerary(itinerary)
            for ue_id, itinerary in self.itineraries.items()}
        mobile_ues = potentially_mobile_ues(full_spec)
        home_shard = {ue_id: self.assignment[itin[0][1]]
                      for ue_id, itin in self.itineraries.items()}
        local_cells = {cell for cell, shard in self.assignment.items()
                       if shard == self.shard_index}
        snr_mode = full_spec.mobility.mode == "snr"
        if snr_mode:
            # Any watched UE may be handed to any cell; every away-from-home
            # watched UE is a potential visitor here.
            visiting = {ue_id for ue_id in mobile_ues
                        if home_shard[ue_id] != self.shard_index}
        else:
            visiting = {ue_id for ue_id in mobile_ues
                        if home_shard[ue_id] != self.shard_index
                        and any(self.assignment[cell] == self.shard_index
                                for _t, cell in self.itineraries[ue_id])}
        self.manager = MobilityManager(
            scenario, self.topology, full_spec.mobility,
            local_cells=local_cells, transfer_out=self._send_transfer,
            visiting_ues=visiting,
            commit_lag=snr_commit_lag(full_spec),
            decision_out=self._publish_decision if snr_mode else None)
        # Per-mobile-flow routing tables (home shard, WAN one-way leg).
        self.flow_home: dict[int, int] = {}
        self.flow_wan_leg: dict[int, float] = {}
        for flow in full_spec.resolved_flows():
            if flow.ue_id not in mobile_ues:
                continue
            rtt = (flow.wan_rtt if flow.wan_rtt is not None
                   else full_spec.wan_rtt)
            self.flow_home[flow.flow_id] = home_shard[flow.ue_id]
            self.flow_wan_leg[flow.flow_id] = rtt / 2.0
            if home_shard[flow.ue_id] == self.shard_index:
                # Cut this flow's forward path at WAN entry.  (The shared
                # middlebox runtime, when present, re-cuts every sender —
                # mobile ones included — through the middlebox host.)
                sender = scenario.senders[flow.flow_id]
                sender.path = _MobileWanPath(self, flow.flow_id, flow.ue_id,
                                             rtt / 2.0)
        self.mobile_flow_ids = set(self.flow_home)
        scenario.throughput.retain_events_for = self.mobile_flow_ids
        scenario.core.remote_sink = _MobilityBoundarySink(self, self.boundary)

    def itinerary_of(self, ue_id: int) -> _DynamicItinerary:
        """The UE's shared (mutable) serving-cell timeline."""
        return self._dynamic[ue_id]

    def _transfer_stamp(self, transfer_time: float) -> float:
        # Interruption >= lookahead: the classic PR-5 stamp, no barrier
        # needed.  Shorter: the synchronizer barriers exactly at the commit
        # time and the transfer crosses with a same-instant stamp.
        if self.interruption >= self.lookahead - 1e-12:
            return transfer_time + self.lookahead
        return transfer_time

    def _send_transfer(self, transfer: HandoverTransfer,
                       target_cell: int) -> None:
        self.boundary.hand_off(self._transfer_stamp(transfer.time), transfer,
                               self.assignment[target_cell], "ho_transfer")

    def _publish_decision(self, decision: HandoverDecision) -> None:
        """Decide phase, shard side: adopt locally, broadcast to the rest."""
        self._dynamic[decision.ue_id].extend(decision.commit_at,
                                             decision.to_cell)
        self.boundary.hand_off(decision.commit_at, decision,
                               _BROADCAST, "ho_decision")

    def adopt_decision(self, decision: HandoverDecision) -> None:
        """A broadcast decision landed: itinerary first, then the manager."""
        self._dynamic[decision.ue_id].extend(decision.commit_at,
                                             decision.to_cell)
        self.manager.adopt_decision(decision)


# --------------------------------------------------------------------- #
# Wrapped (>250-UE) address spaces: route aliases at the winner's shard
# --------------------------------------------------------------------- #
class _AliasWanPath:
    """A losing flow's forward path: cut at WAN entry, aimed at the winner.

    Mirrors :class:`_MobileWanPath`: the WAN pipe's one-way leg is applied
    arithmetically and the handoff carries the true core-arrival time
    (``entry + wan_leg``), so the winner shard's core ingests the packet at
    exactly the single loop's time.  The leg is at least the conservative
    lookahead, which is what makes the stamp barrier-safe.
    """

    __slots__ = ("_runtime", "_leg", "_target")

    def __init__(self, runtime: "_AliasRouting", wan_leg: float,
                 target: int) -> None:
        self._runtime = runtime
        self._leg = wan_leg
        self._target = target

    def receive(self, packet: Packet) -> None:
        runtime = self._runtime
        runtime.boundary.hand_off(runtime.sim.now + self._leg, packet,
                                  self._target, "core_dl")


class _AliasRouting:
    """Address-space-aware boundary routing of wrapped client addresses.

    The single shared core resolves a wrapped address collision
    last-registration-wins: the highest ue_id sharing the address receives
    every packet for it, and the losing UEs' flows are mis-delivered into
    the winner's bearers (counted, then dropped at the UE for lack of a
    receiver — no ACKs, so the losing senders retransmit a trickle).

    Per shard this runtime makes the split reproduce exactly that: shards
    not hosting an address's winner drop their losing registration from the
    local core, and local senders whose destination address wins remotely
    are re-cut at WAN entry (:class:`_AliasWanPath`).  Shards hosting both
    a loser and the winner already resolve locally — registration order is
    ascending ue_id, so the local last write is the global winner.

    Wrapped UEs are validated non-mobile (:func:`sharding_blockers`), so
    the winner map is static for the whole run.  A shared middlebox, built
    after this runtime, supersedes the sender cut; its egress tables
    resolve wrapped addresses to the winner's cell by the same
    last-write-wins construction.
    """

    def __init__(self, host: "ShardHost", full_spec: ScenarioSpec,
                 assignment: dict[int, int],
                 aliases: dict[str, int]) -> None:
        scenario = host.scenario
        self.sim = scenario.sim
        self.boundary = host.boundary
        self.shard_index = host.shard_index
        assignment = {int(cell): int(shard)
                      for cell, shard in assignment.items()}
        ue_cell = {ue.ue_id: ue.cell_id for ue in full_spec.resolved_ues()}
        self.winner_shard: dict[str, int] = {
            address: assignment[ue_cell[winner]]
            for address, winner in aliases.items()}
        for address, shard in self.winner_shard.items():
            if (shard != self.shard_index
                    and scenario.core.knows_ue_address(address)):
                # This shard hosts only losing UEs of the address: the
                # local registration must go, like the single core's table
                # after the winner's (later) registration overwrote it.
                scenario.core.unregister_ue_address(address)
        for flow in full_spec.resolved_flows():
            sender = scenario.senders.get(flow.flow_id)
            if sender is None:
                continue
            target = self.winner_shard.get(ue_ip_address(flow.ue_id))
            if target is None or target == self.shard_index:
                continue
            rtt = (flow.wan_rtt if flow.wan_rtt is not None
                   else full_spec.wan_rtt)
            sender.path = _AliasWanPath(self, rtt / 2.0, target)


# --------------------------------------------------------------------- #
# The shared wired middlebox, hosted on one shard
# --------------------------------------------------------------------- #
class _TrackedLink(Link):
    """A :class:`~repro.net.link.Link` exposing its in-flight completion.

    Behaviourally identical to the base link (the transmit body is a copy);
    it additionally records when the packet currently on the wire finishes
    serialising — the middlebox half of the synchronizer's window floor.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Simulation time the in-flight serialisation completes, or None
        #: when nothing is on the wire.
        self.next_completion: Optional[float] = None

    def _transmit_next(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            self.next_completion = None
            return
        if self.aqm is not None:
            verdict = self.aqm.on_dequeue(packet, self.queue, self._sim.now)
            if verdict is False:
                self.dropped_by_aqm += 1
                self.next_completion = None
                self._sim.call_soon(self._transmit_next)
                return
        self._busy = True
        serialization = transmission_time(packet.size, self.rate)
        if serialization == float("inf"):
            # Stalled: a zero-rate schedule step holds the head packet on
            # the queue until set_rate() resumes the link.  No completion
            # can be predicted, so the synchronizer's floor falls back to
            # the schedule's next rate-resume event (_SharedMiddlebox
            # floor()) instead of the in-flight serialisation.
            self.queue._queue.appendleft(packet)  # noqa: SLF001 - re-queue head
            self.queue.bytes += packet.size
            self._busy = False
            self.next_completion = None
            return
        self.next_completion = self._sim.now + serialization
        self._sim.schedule(serialization, self._finish_transmission, packet)


class _MiddleboxWanPath:
    """A sender's forward path cut at WAN entry, aimed at the middlebox.

    Mirrors :class:`_MobileWanPath`: the WAN pipe's one-way leg is applied
    arithmetically, and the packet reaches the shared queue — local call or
    boundary item — at exactly the single loop's pipe-exit time.
    """

    __slots__ = ("_runtime", "_leg")

    def __init__(self, runtime: "_SharedMiddlebox", wan_leg: float) -> None:
        self._runtime = runtime
        self._leg = wan_leg

    def receive(self, packet: Packet) -> None:
        self._runtime.send(packet, self._leg)


class _MiddleboxEgress:
    """The middlebox output link's sink on the host shard."""

    __slots__ = ("_runtime",)

    def __init__(self, runtime: "_SharedMiddlebox") -> None:
        self._runtime = runtime

    def receive(self, packet: Packet) -> None:
        self._runtime.egress(packet)


class _SharedMiddlebox:
    """One shard-spanning wired middlebox, its queue hosted on one shard.

    Every shard re-cuts its local senders' forward paths at WAN entry
    (:class:`_MiddleboxWanPath`); packets converge on the host shard's
    single :class:`BottleneckRouter` — crossing the boundary as ``mbx_in``
    items when the sender lives elsewhere — and its egress routes each
    packet to the shard serving the destination UE *at egress time*
    (``mbx_core_dl`` items, pre-stamped ``core_ingress``, delivered one
    core-processing delay later).  Uplink bypasses the middlebox exactly
    like the single loop's topology.

    The host side also maintains the synchronizer's window floor: the
    earliest time the queue could next emit a packet (:meth:`floor`),
    tracked from the in-flight serialisation and a heap of known future
    arrivals.
    """

    def __init__(self, host: "ShardHost", full_spec: ScenarioSpec,
                 assignment: dict[int, int], mbx_shard: int,
                 lookahead: float) -> None:
        self.host = host
        self.shard_index = host.shard_index
        self.mbx_shard = mbx_shard
        self.assignment = {int(cell): int(shard)
                           for cell, shard in assignment.items()}
        self.lookahead = lookahead
        scenario = host.scenario
        self.sim = scenario.sim
        self.core = scenario.core
        self.core_processing = scenario.core.processing_delay
        self.boundary = host.boundary
        # Egress routing tables: destination address -> serving cell, the
        # mobile UEs resolved against their (dynamic) itineraries.
        mobility = host.mobility
        self._itinerary: dict[str, _DynamicItinerary] = {}
        self._static_cell: dict[str, int] = {}
        mobile = (potentially_mobile_ues(full_spec)
                  if mobility is not None else set())
        for ue in full_spec.resolved_ues():
            address = ue_ip_address(ue.ue_id)
            if ue.ue_id in mobile:
                self._itinerary[address] = mobility.itinerary_of(ue.ue_id)
            else:
                self._static_cell[address] = ue.cell_id
        # Re-cut every *local* sender's forward path at WAN entry (mobile
        # senders included: the middlebox sits between the WAN pipes and
        # the core, so it supersedes the _MobileWanPath cut).
        for flow in full_spec.resolved_flows():
            sender = scenario.senders.get(flow.flow_id)
            if sender is None:
                continue
            rtt = (flow.wan_rtt if flow.wan_rtt is not None
                   else full_spec.wan_rtt)
            sender.path = _MiddleboxWanPath(self, rtt / 2.0)
        #: Known future arrival times into the host queue (heap).
        self._pending: list[float] = []
        #: Schedule times at which a zero-rate stall ends (sorted): while
        #: the link is stalled the window floor is the next of these.
        self._resume_times: list[float] = sorted(
            start for start, rate in full_spec.wired_bottleneck_schedule
            if rate > 0)
        self.router: Optional[BottleneckRouter] = None
        if self.shard_index == mbx_shard:
            self.router = BottleneckRouter(
                self.sim, rate=mbps(full_spec.wired_bottleneck_mbps),
                sink=None, queue_bytes=1_500_000, name="wired-middlebox")
            # Swap in the completion-tracking link (identical behaviour).
            self.router.link = _TrackedLink(
                self.sim, rate=self.router.link.rate,
                sink=_MiddleboxEgress(self), queue_bytes=1_500_000,
                name=self.router.link.name)
            for start_time, rate in full_spec.wired_bottleneck_schedule:
                self.sim.schedule_at(start_time, self.router.set_rate,
                                     mbps(rate))

    # ------------------------------------------------------------------ #
    def send(self, packet: Packet, wan_leg: float) -> None:
        """WAN entry on the sender's shard: one leg later, the host queue.

        Host-local senders hand off through the boundary too (a
        self-targeted item): simultaneous arrivals from different shards
        then share one router-sorted injection order — flow declaration
        order, the single loop's tie order — instead of local-first.  The
        stamp is never late: an arrival is one WAN leg (≥ the lookahead)
        past the sender event that caused it, and no window end ever
        exceeds the global event floor plus the lookahead.
        """
        self.boundary.hand_off(self.sim.now + wan_leg, packet,
                               self.mbx_shard, "mbx_in")

    def note_arrival(self, when: float) -> None:
        """Host side: register a known future arrival for :meth:`floor`."""
        heappush(self._pending, when)

    def ingress(self, packet: Packet) -> None:
        """Host side: a registered arrival reaches the shared queue."""
        heappop(self._pending)
        self.router.receive(packet)

    def egress(self, packet: Packet) -> None:
        """Output-link completion: route by the serving cell *now*."""
        address = packet.five_tuple.dst_ip
        itinerary = self._itinerary.get(address)
        if itinerary is not None:
            cell = itinerary.cell_at(self.sim.now)
        else:
            cell = self._static_cell[address]
        target = self.assignment[cell]
        if target == self.shard_index:
            self.core.receive(packet)
        else:
            packet.stamp("core_ingress", self.sim.now)
            self.boundary.hand_off(self.sim.now + self.core_processing,
                                   packet, target, "mbx_core_dl")

    def _next_resume(self, now: float) -> Optional[float]:
        """Strictly-future schedule time the rate becomes positive again.

        ``None`` when the schedule never resumes: a link stalled to the
        horizon constrains no window — its queued packets never egress,
        exactly like the single loop's.
        """
        index = bisect_right(self._resume_times, now + 1e-12)
        if index >= len(self._resume_times):
            return None
        return self._resume_times[index]

    def floor(self) -> Optional[float]:
        """Earliest possible next egress; None when provably idle.

        The queue emits next either when the in-flight serialisation
        completes or — if idle — when the earliest known future arrival
        lands (its serialisation takes longer than zero).  Arrivals *not*
        yet known to the host are caused by sender events at or after the
        global event floor and land a full WAN leg later, so they can
        never undercut the window the synchronizer derives from this.

        A queue stalled by a zero-rate schedule step cannot emit before
        the schedule's next positive-rate event, so the floor rests there
        (or vanishes entirely when the schedule never resumes).
        """
        if self.router is None:
            return None
        link = self.router.link
        earliest: Optional[float] = None
        if link.next_completion is not None:
            earliest = link.next_completion
        elif not link.queue.empty:
            if link.rate > 0:
                # Mid-cascade (a dequeue is pending via call_soon after an
                # AQM drop): conservatively pin the floor to now.
                earliest = self.sim.now
            else:
                # Stalled at zero rate: the head packet resumes with the
                # schedule.  (_TrackedLink re-queued it; set_rate fires
                # _transmit_next when the rate turns positive again.)
                earliest = self._next_resume(self.sim.now)
        if self._pending and (earliest is None
                              or self._pending[0] < earliest):
            earliest = self._pending[0]
        return earliest


class ShardHost:
    """One shard's simulator, its boundary buffer, and the window stepper.

    The host is synchronizer-agnostic: the in-process fallback drives a list
    of hosts directly, and :func:`_shard_worker` pumps one host over a pipe
    from a worker process — both through the same few methods.

    ``coupling`` (a dict with the full spec, the cell→shard assignment, the
    lookahead and the middlebox host shard) activates the mobility and/or
    shared-middlebox runtimes; sub-specs themselves always carry mobility
    and the middlebox stripped.
    """

    def __init__(self, sub_spec: ScenarioSpec, shard_index: int,
                 coupling: Optional[dict] = None) -> None:
        self.shard_index = shard_index
        self.scenario: BuiltScenario = build_scenario(sub_spec)
        self.boundary = _BoundaryBuffer(self.scenario.sim)
        self.scenario.core.remote_sink = self.boundary
        self.mobility: Optional[_ShardMobility] = None
        self.alias: Optional[_AliasRouting] = None
        self.middlebox: Optional[_SharedMiddlebox] = None
        if coupling is not None:
            full_spec = coupling["full_spec"]
            if isinstance(full_spec, dict):
                full_spec = ScenarioSpec.from_dict(full_spec)
            if full_spec.mobility.enabled:
                self.mobility = _ShardMobility(self, full_spec,
                                               coupling["assignment"],
                                               coupling["lookahead"])
            aliases = wrapped_address_aliases(full_spec)
            if aliases:
                # Wrapped UEs are validated non-mobile, so this slots in
                # after mobility without contention; a middlebox built
                # below supersedes the sender cut.
                self.alias = _AliasRouting(self, full_spec,
                                           coupling["assignment"], aliases)
            mbx_shard = coupling.get("mbx_shard")
            if mbx_shard is not None:
                # After the mobility runtime: the middlebox re-cuts every
                # sender (mobile ones included) at WAN entry.
                self.middlebox = _SharedMiddlebox(self, full_spec,
                                                  coupling["assignment"],
                                                  mbx_shard,
                                                  coupling["lookahead"])
        self.windows = 0
        self.boundary_packets = 0

    def advance(self, until: float) -> list[tuple]:
        """Run the local loop up to ``until``; return drained outbound batch."""
        self.scenario.sim.run(until=until)
        self.windows += 1
        batch = self.boundary.drain()
        self.boundary_packets += len(batch)
        return batch

    def peek(self) -> Optional[float]:
        """Earliest pending local event (the adaptive window floor)."""
        return self.scenario.sim.peek_time()

    def boundary_idle(self) -> bool:
        """True when this shard provably cannot emit boundary traffic."""
        if self.middlebox is not None or self.alias is not None:
            return False
        if self.mobility is None:
            return True
        return self.mobility.manager.boundary_idle()

    def mbx_floor(self) -> Optional[float]:
        """Middlebox host only: earliest possible next egress (else None)."""
        if self.middlebox is None:
            return None
        return self.middlebox.floor()

    def inject(self, batch: list[tuple]) -> None:
        """Schedule inbound boundary items onto the local loop.

        Legacy pairs carry ``deliver_at`` stamps produced by the router as
        ``handoff + lookahead``; pre-routed triples carry their true
        single-loop delivery time.  The conservative window guarantees
        neither is ever in this shard's past — enforce it rather than
        assume it.
        """
        sim = self.scenario.sim
        core = self.scenario.core
        for item in batch:
            deliver_at = item[0]
            if deliver_at < sim.now - 1e-12:
                raise ConservativeSyncError(
                    f"shard {self.shard_index}: boundary item for "
                    f"t={deliver_at:.6f} arrived at local time "
                    f"{sim.now:.6f}; lookahead window violated")
            at = max(deliver_at, sim.now)
            if len(item) == 2:
                packet = item[1]
                if core.knows_ue_address(packet.five_tuple.dst_ip):
                    sink = core.receive          # downlink: to a local UE
                else:
                    sink = core.receive_uplink   # uplink: to a local WAN path
                sim.schedule_at(at, sink, packet)
                continue
            _deliver, payload, mode = item
            if mode == "core_dl":
                sim.schedule_at(at, core.receive, payload)
            elif mode == "wan_ul":
                sender = self.scenario.senders[payload.flow_id]
                sim.schedule_at(at, sender.receive, payload)
            elif mode == "ho_transfer":
                sim.schedule_at(at, self.mobility.manager.apply_transfer,
                                payload)
            elif mode == "mbx_in":
                # A remote sender's packet bound for the shared queue:
                # register the arrival so the window floor sees it.
                self.middlebox.note_arrival(at)
                sim.schedule_at(at, self.middlebox.ingress, payload)
            elif mode == "mbx_core_dl":
                # Crossed the boundary after middlebox egress: already
                # core_ingress-stamped, delivery time covers processing.
                sim.schedule_at(at, core.deliver_downlink, payload)
            elif mode == "ho_decision":
                # Adopt immediately: extending the itinerary is safe (and
                # required) before any routing lookup at or past the
                # commit time — the commit lag guarantees none happened.
                self.mobility.adopt_decision(payload)
            else:
                raise ValueError(f"unknown boundary item mode {mode!r}")

    def finish(self) -> ShardResult:
        """Stop collectors and package this shard's results for the merge."""
        scenario = self.scenario
        scenario.stop_collectors()
        result = scenario.collect(scenario.sim.processed_events)
        mobile_owd: dict[int, tuple[list[float], list[float]]] = {}
        mobile_rate_events: dict[int, tuple[list[float], list[int]]] = {}
        records: list[dict] = []
        if self.mobility is not None:
            for flow_id in self.mobility.mobile_flow_ids:
                times = scenario.owd.sample_times.get(flow_id)
                samples = scenario.owd.samples.get(flow_id)
                if times:
                    mobile_owd[flow_id] = (list(times), list(samples))
                events = scenario.throughput.raw_events.get(flow_id)
                if events and events[0]:
                    mobile_rate_events[flow_id] = events
            self.mobility.manager.stop()
            records = [dict(record)
                       for record in self.mobility.manager.records]
        return ShardResult(
            shard_index=self.shard_index,
            flows=result.flows,
            queue_lengths={name: list(values) for name, values
                           in scenario.queue_sampler.length_samples.items()},
            bearer_order=[(cell_id,
                           [label for label, _ in gnb.du.labeled_rlc_items()])
                          for cell_id, gnb in scenario.gnbs.items()],
            breakdown_count=scenario.breakdown.count,
            breakdown_sums=dict(scenario.breakdown.sums),
            marker_summaries=scenario.marker_cell_summaries(),
            per_ue_throughput=result.per_ue_throughput,
            rate_errors=result.rate_estimation_errors,
            events_processed=result.events_processed,
            boundary_packets=self.boundary_packets,
            windows=self.windows,
            mobile_owd=mobile_owd,
            mobile_rate_events=mobile_rate_events,
            handover_records=records,
            flow_mark_counts=scenario.flow_mark_counts(),
            background=result.background)


# --------------------------------------------------------------------- #
# Boundary routing (coordinator side)
# --------------------------------------------------------------------- #
@dataclass
class _BoundaryRouter:
    """Routes drained boundary items to the shard that can deliver them."""

    ip_to_shard: dict[str, int]
    flow_to_shard: dict[int, int]
    lookahead: float
    num_shards: int
    #: flow_id -> declaration index; simultaneous middlebox arrivals inject
    #: in this order (the single loop's tie order for the initial bursts).
    flow_order: dict[int, int] = field(default_factory=dict)
    routed_packets: int = 0
    dropped_packets: int = 0
    #: Earliest delivery time among the items routed by the last
    #: :meth:`route` call (the adaptive window floor), or None.
    last_min_deliver: Optional[float] = None
    #: Same, but per destination shard (the middlebox floor combines the
    #: host's report with what this barrier just routed at it).
    min_deliver_by_target: list = field(default_factory=list)
    #: Commit times of handover decisions routed since the last
    #: :meth:`drain_commits` — the synchronizer pins a barrier on each.
    pending_commits: list = field(default_factory=list)

    #: True when two shards could ever owe each other a packet: a mobile
    #: UE whose itinerary leaves its home shard, or an aliased client
    #: address.  When False the synchronizer runs a single window to the
    #: horizon — conservative lookahead over zero inter-federate links is
    #: unbounded.
    boundary_required: bool = False
    #: True when coupling comes from aliased addresses (a wrapped >250-UE
    #: space) rather than the mobility schedule.  Such coupling has no
    #: schedule the adaptive clock could jump by, so it forces
    #: fixed-cadence windows.
    ip_conflict: bool = False

    @classmethod
    def for_plan(cls, spec: ScenarioSpec, plan: ShardPlan, ue_ip,
                 mobility_coupled: bool = False) -> "_BoundaryRouter":
        """Build the routing tables (and coupling verdict) for a plan.

        ``mobility_coupled`` is the caller's
        :func:`mobility_coupling_intervals` verdict — passed in rather than
        recomputed so the router's requirement and the synchronizer's jump
        schedule stay consistent by construction.
        """
        ip_to_shard = {}
        ip_conflict = False
        flow_to_shard = {}
        ue_cell = {}
        for ue in spec.resolved_ues():
            ue_cell[ue.ue_id] = ue.cell_id
            shard = plan.assignment[ue.cell_id]
            address = ue_ip(ue.ue_id)
            if ip_to_shard.setdefault(address, shard) != shard:
                # A wrapped (>250-UE) address space: last registration wins,
                # like the single core's routing table — the final value is
                # the winning (highest) ue_id's shard, which is where
                # _AliasRouting steers every packet for the address.
                ip_to_shard[address] = shard
                ip_conflict = True
        flow_order = {}
        for index, flow in enumerate(spec.resolved_flows()):
            flow_to_shard[flow.flow_id] = plan.assignment[ue_cell[flow.ue_id]]
            flow_order[flow.flow_id] = index
        return cls(ip_to_shard=ip_to_shard, flow_to_shard=flow_to_shard,
                   lookahead=plan.lookahead, num_shards=plan.num_shards,
                   flow_order=flow_order,
                   boundary_required=ip_conflict or mobility_coupled,
                   ip_conflict=ip_conflict)

    def route(self, outputs: list[list[tuple]]) -> list[list[tuple]]:
        """Turn per-shard outbound batches into per-shard inbound batches."""
        inbound: list[list[tuple]] = [[] for _ in range(self.num_shards)]
        min_deliver: Optional[float] = None
        per_target: list[Optional[float]] = [None] * self.num_shards
        for source, batch in enumerate(outputs):
            for item in batch:
                if len(item) > 2:
                    # Pre-routed by a coupling runtime: exact delivery time
                    # and destination shard travel with the item.
                    deliver_at, payload, mode, target = item
                    self.routed_packets += 1
                    if target == _BROADCAST:
                        # An SNR handover decision: every other shard
                        # adopts it, and the synchronizer pins a barrier
                        # at its commit time.
                        self.pending_commits.append(deliver_at)
                        targets = [shard for shard in range(self.num_shards)
                                   if shard != source]
                    else:
                        targets = [target]
                    for shard in targets:
                        inbound[shard].append((deliver_at, payload, mode))
                else:
                    handoff, packet = item
                    target = self.ip_to_shard.get(packet.five_tuple.dst_ip)
                    if target is None:
                        target = self.flow_to_shard.get(packet.flow_id)
                    if target is None or target == source:
                        if not packet.is_ack:
                            # The single loop's core raises for an unroutable
                            # downlink datagram; a sharded run must be as
                            # loud, not silently corrupt the metrics.
                            raise KeyError(
                                f"no shard can deliver downlink packet for "
                                f"{packet.five_tuple.dst_ip} (flow "
                                f"{packet.flow_id}, from shard {source})")
                        # Unknown uplink flows are dropped silently by the
                        # single core too; count them for the post-run
                        # warning.
                        self.dropped_packets += 1
                        continue
                    self.routed_packets += 1
                    deliver_at = handoff + self.lookahead
                    inbound[target].append((deliver_at, packet))
                    targets = [target]
                for shard in targets:
                    if (per_target[shard] is None
                            or deliver_at < per_target[shard]):
                        per_target[shard] = deliver_at
                if min_deliver is None or deliver_at < min_deliver:
                    min_deliver = deliver_at
        for batch in inbound:
            # Stable sort: simultaneous deliveries inject in a fixed order
            # regardless of how cells were assigned to shards.  Tied
            # middlebox arrivals take flow declaration order — the single
            # loop's scheduling order for simultaneous flow starts; other
            # ties keep the source-shard order.
            batch.sort(key=self._sort_key)
        self.last_min_deliver = min_deliver
        self.min_deliver_by_target = per_target
        return inbound

    def _sort_key(self, entry: tuple) -> tuple:
        if len(entry) > 2 and entry[2] == "mbx_in":
            return (entry[0], 1, self.flow_order.get(entry[1].flow_id, -1))
        return (entry[0], 0, -1)

    def drain_commits(self) -> list[float]:
        """Take (and clear) commit times routed since the last barrier."""
        commits, self.pending_commits = self.pending_commits, []
        return commits


# --------------------------------------------------------------------- #
# Result merge: per-shard collector outputs -> single-loop report schema
# --------------------------------------------------------------------- #
def merge_shard_results(config: ScenarioSpec, plan: ShardPlan,
                        results: list[ShardResult],
                        sharding_stats: Optional[dict] = None
                        ) -> ScenarioResult:
    """Recombine shard results into the exact single-loop result schema.

    Orderings the single loop makes observable are reconstructed from the
    full spec: flows in declared flow order, queue samples cell by cell in
    declaration order, marker summaries merged over cells in declaration
    order.  A mobile flow's samples — collected by every shard that served
    its UE — are re-merged in delivery-time order, its throughput series
    replayed from the merged delivery events and its goodput recomputed
    from the summed byte counts, reproducing the single loop's values
    exactly.  Two quantities are deterministic but *not* order-identical to
    the single loop: ``events_processed`` is the sum over shard loops (each
    shard ticks its own queue sampler), and in mobility runs the key order
    of ``queue_length_by_drb`` — bearers released mid-run by a departure
    are appended after the finish-time bearers rather than in
    first-appearance order (the dict compares equal; only the flattened
    ``queue_length_samples`` concatenation order differs).
    """
    results = sorted(results, key=lambda r: r.shard_index)
    flows_by_id = {flow.flow_id: flow for r in results for flow in r.flows}
    resolved_flows = config.resolved_flows()
    mobile_ues = potentially_mobile_ues(config)
    # A mobile flow leaves flow records behind in every cell (shard) it
    # visited; sum the per-shard mark counts so its merged marked_fraction
    # covers them all, exactly like the single loop's cross-cell merge.
    mark_counts: dict[int, list[int]] = {}
    for r in results:
        for flow_id, (marked, downlink) in r.flow_mark_counts.items():
            entry = mark_counts.setdefault(flow_id, [0, 0])
            entry[0] += marked
            entry[1] += downlink
    # A wrapped address's losing flows are marked on the *winner's* shard
    # (their packets ride the winner's bearers there); re-derive their
    # marked_fraction from the cross-shard sums, like mobile flows.
    aliases = wrapped_address_aliases(config)
    aliased_flow_ids = {spec.flow_id for spec in resolved_flows
                        if ue_ip_address(spec.ue_id) in aliases}
    merged_owd_times: dict[int, list[float]] = {}
    mobile_flow_bytes: dict[int, int] = {}
    replay = ThroughputCollector(window=config.throughput_window)
    ordered_flows = []
    for spec in resolved_flows:
        flow = flows_by_id[spec.flow_id]
        if spec.ue_id in mobile_ues:
            pairs = [pair for r in results
                     for pair in zip(*r.mobile_owd.get(spec.flow_id,
                                                       ((), ())))]
            pairs.sort(key=lambda pair: pair[0])
            merged_owd_times[spec.flow_id] = [t for t, _v in pairs]
            # Replay the merged delivery events through a fresh collector:
            # its rate windows are event-anchored, so this — not a
            # concatenation of per-shard series — reproduces the single
            # loop's throughput series (and byte totals) exactly.
            events = [event for r in results
                      for event in
                      zip(*r.mobile_rate_events.get(spec.flow_id, ((), ())))]
            events.sort(key=lambda event: event[0])
            for now, size in events:
                replay.record(spec.flow_id, size, now)
            total_bytes = replay.total_bytes.get(spec.flow_id, 0)
            mobile_flow_bytes[spec.flow_id] = total_bytes
            duration = config.duration_s - spec.start_time
            if spec.stop_time is not None:
                duration = min(duration, spec.stop_time - spec.start_time)
            marked, downlink = mark_counts.get(spec.flow_id, [0, 0])
            flow = dataclasses.replace(
                flow,
                owd_samples=[v for _t, v in pairs],
                goodput_bytes_per_s=total_bytes / max(duration, 1e-9),
                marked_fraction=marked / downlink if downlink else 0.0,
                throughput_series=replay.series.get(spec.flow_id,
                                                    TimeSeries()))
        elif spec.flow_id in aliased_flow_ids:
            marked, downlink = mark_counts.get(spec.flow_id, [0, 0])
            flow = dataclasses.replace(
                flow,
                marked_fraction=marked / downlink if downlink else 0.0)
        ordered_flows.append(flow)

    bearer_names: dict[int, list[str]] = {}
    for r in results:
        for cell_id, names in r.bearer_order:
            bearer_names[cell_id] = names
    all_lengths = merge_sample_dicts(r.queue_lengths for r in results)
    queue_by_drb: dict[str, list[int]] = {}
    for cell in config.resolved_cells():
        for name in bearer_names.get(cell.cell_id, []):
            if name in all_lengths:
                queue_by_drb[name] = all_lengths[name]
    # Bearers released mid-run (handover departures) are no longer listed
    # by any DU at finish time; their samples still belong in the report.
    for name, values in all_lengths.items():
        queue_by_drb.setdefault(name, values)
    queue_samples = [sample for values in queue_by_drb.values()
                     for sample in values]

    breakdown = DelayBreakdownAccumulator()
    for r in results:
        breakdown.merge_from(r.breakdown_count, r.breakdown_sums)

    summaries: dict[int, dict] = {}
    for r in results:
        for cell_id, summary in r.marker_summaries:
            summaries[cell_id] = summary
    marker_summary = merge_numeric_summaries(
        [summaries[cell.cell_id] for cell in config.resolved_cells()
         if cell.cell_id in summaries])

    merged_ue = {}
    for r in results:
        merged_ue.update(r.per_ue_throughput)
    per_ue: dict[int, float] = {}
    for flow in resolved_flows:
        if flow.ue_id in mobile_ues:
            per_ue.setdefault(flow.ue_id, 0.0)
            per_ue[flow.ue_id] += (mobile_flow_bytes.get(flow.flow_id, 0)
                                   / max(config.duration_s, 1e-9))
        else:
            per_ue.setdefault(flow.ue_id, merged_ue.get(flow.ue_id, 0.0))

    handovers = merge_handover_records(r.handover_records for r in results)
    if handovers:
        attach_data_gaps(handovers, merged_owd_times,
                         {flow.flow_id: flow.ue_id
                          for flow in resolved_flows})

    background: dict = {}
    if any(r.background for r in results):
        from repro.ran.background import merge_background_summaries
        background = merge_background_summaries(
            [r.background for r in results])

    return ScenarioResult(
        config=config,
        flows=ordered_flows,
        queue_length_samples=queue_samples,
        queue_length_by_drb=queue_by_drb,
        delay_breakdown=breakdown.averages(),
        marker_summary=marker_summary,
        per_ue_throughput=per_ue,
        rate_estimation_errors=[error for r in results
                                for error in r.rate_errors],
        duration_s=config.duration_s,
        events_processed=sum(r.events_processed for r in results),
        handovers=handovers,
        sharding_stats=dict(sharding_stats or {}),
        background=background)


# --------------------------------------------------------------------- #
# Synchronizers
# --------------------------------------------------------------------- #
def _combined_mbx_floor(sync: _SyncPlan, floors: list[Optional[float]],
                        router: _BoundaryRouter) -> Optional[float]:
    """The middlebox host's earliest possible egress, coordinator view.

    The host reports its floor *before* this barrier's inbound batch is
    injected, so arrivals the barrier just routed at it are folded in here
    (the per-target minimum is conservative — it may include non-arrival
    items, which only tightens the window).
    """
    if sync.mbx_shard is None:
        return None
    candidates = [floors[sync.mbx_shard]]
    if router.min_deliver_by_target:
        candidates.append(router.min_deliver_by_target[sync.mbx_shard])
    known = [value for value in candidates if value is not None]
    return min(known) if known else None


def _run_hosts_inprocess(hosts: list[ShardHost], router: _BoundaryRouter,
                         sync: _SyncPlan,
                         on_window=None) -> list[ShardResult]:
    """Drive all shard hosts in one process, window by window.

    The sequential twin of the process synchronizer: same windows, same
    exchanges, same results — used as the sandbox fallback and by tests that
    must not depend on the platform's multiprocessing support.
    """
    window_end = sync.first_window()
    while True:
        sync.windows += 1
        outputs = [host.advance(window_end) for host in hosts]
        peeks = [host.peek() for host in hosts]
        all_idle = all(host.boundary_idle() for host in hosts)
        floors = [host.mbx_floor() for host in hosts]
        inbound = router.route(outputs)
        for when in router.drain_commits():
            sync.add_commit_point(when)
        for host, batch in zip(hosts, inbound):
            host.inject(batch)
        if on_window is not None:
            on_window(window_end)
        if window_end >= sync.horizon - 1e-12:
            break
        window_end = sync.next_window(
            window_end, peeks, router.last_min_deliver, all_idle,
            mbx_floor=_combined_mbx_floor(sync, floors, router))
    return [host.finish() for host in hosts]


def _shard_worker(conn, payload: dict) -> None:
    """Worker-process main: pump one :class:`ShardHost` over a pipe.

    Protocol, in lock-step with the coordinator: the worker advances to the
    current window end and sends ``("window", (outbound_batch, peek_time,
    boundary_idle, mbx_floor))``, then blocks for ``("proceed",
    (inbound_batch, next_window_end))`` — the coordinator owns the
    (possibly adaptive) window clock.  After the horizon window it sends
    ``("result", ShardResult)``.  Any exception is shipped back as
    ``("error", traceback_text)`` instead of dying silently.
    """
    try:
        spec = ScenarioSpec.from_dict(payload["spec"])
        host = ShardHost(spec, payload["shard_index"],
                         coupling=payload.get("coupling"))
        window_end = payload["first_window"]
        horizon = payload["horizon"]
        while True:
            batch = host.advance(window_end)
            conn.send(("window", (batch, host.peek(), host.boundary_idle(),
                                  host.mbx_floor())))
            _kind, (inbound, next_window) = conn.recv()
            host.inject(inbound)
            if window_end >= horizon - 1e-12:
                break
            window_end = next_window
        conn.send(("result", host.finish()))
    except Exception:  # pragma: no cover - ships the traceback to the parent
        import traceback
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:
            pass
    finally:
        conn.close()


class _WorkersUnavailable(RuntimeError):
    """Worker processes could not be created on this platform."""


def _recv(conn, shard: int):
    if not conn.poll(_WORKER_TIMEOUT_S):
        raise RuntimeError(f"shard {shard} sent nothing for "
                           f"{_WORKER_TIMEOUT_S:.0f}s; run wedged")
    kind, value = conn.recv()
    if kind == "error":
        raise RuntimeError(f"shard {shard} worker failed:\n{value}")
    return kind, value


def _run_workers(sub_specs: list[ScenarioSpec], router: _BoundaryRouter,
                 sync: _SyncPlan, coupling: Optional[dict],
                 start_method: Optional[str],
                 on_window=None) -> list[ShardResult]:
    """Coordinator: one worker process per shard, barrier per window."""
    pipes, workers = [], []
    first_window = sync.first_window()
    try:
        context = (multiprocessing.get_context(start_method)
                   if start_method else multiprocessing.get_context())
        for index, sub in enumerate(sub_specs):
            parent, child = context.Pipe()
            worker = context.Process(
                target=_shard_worker,
                args=(child, {"spec": sub.to_dict(), "shard_index": index,
                              "first_window": first_window,
                              "horizon": sync.horizon,
                              "coupling": coupling}),
                name=f"repro-shard-{index}", daemon=True)
            worker.start()
            child.close()
            pipes.append(parent)
            workers.append(worker)
    except (ImportError, NotImplementedError, OSError, PermissionError) as exc:
        # Partial startup (e.g. EAGAIN on the Nth fork): reap the workers
        # that did start before falling back, or they would simulate the
        # whole scenario concurrently with the in-process retry.
        for conn in pipes:
            conn.close()
        for worker in workers:
            worker.terminate()
            worker.join(timeout=5.0)
        raise _WorkersUnavailable(str(exc)) from exc
    try:
        window_end = first_window
        while True:
            sync.windows += 1
            outputs, peeks, idles, floors = [], [], [], []
            for shard, conn in enumerate(pipes):
                _kind, (batch, peek, idle, floor) = _recv(conn, shard)
                outputs.append(batch)
                peeks.append(peek)
                idles.append(idle)
                floors.append(floor)
            inbound = router.route(outputs)
            for when in router.drain_commits():
                sync.add_commit_point(when)
            done = window_end >= sync.horizon - 1e-12
            next_window = (window_end if done else
                           sync.next_window(
                               window_end, peeks, router.last_min_deliver,
                               all(idles),
                               mbx_floor=_combined_mbx_floor(sync, floors,
                                                             router)))
            for conn, batch in zip(pipes, inbound):
                conn.send(("proceed", (batch, next_window)))
            if on_window is not None:
                on_window(window_end)
            if done:
                break
            window_end = next_window
        results = []
        for shard, conn in enumerate(pipes):
            _kind, result = _recv(conn, shard)
            results.append(result)
        return results
    finally:
        for conn in pipes:
            conn.close()
        for worker in workers:
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - defensive cleanup
                worker.terminate()


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #
def _run_single_loop(spec: ScenarioSpec, progress,
                     progress_interval_s: float) -> ScenarioResult:
    """Single-event-loop execution used by the sharded fallback paths."""
    built = build_scenario(spec)
    if progress is not None:
        built.attach_progress(progress, interval=progress_interval_s)
    return built.run()


def run_scenario_sharded(config: ScenarioSpec, shards: Optional[int] = None,
                         inprocess: Optional[bool] = None,
                         start_method: Optional[str] = None,
                         adaptive: Optional[bool] = None,
                         progress=None,
                         progress_interval_s: float = 0.25
                         ) -> ScenarioResult:
    """Run ``config`` with cells sharded across processes; merged result.

    Falls back with a warning naming the blockers: the few specs a split
    cannot reproduce byte-for-byte (single cell, too-small SNR commit lag,
    a mobile UE on a wrapped address) run on the classic single loop, and
    the result's ``sharding_stats`` records why.
    Platforms that cannot host worker processes use the in-process
    synchronizer (identical results — only wall-clock differs).  ``shards``
    overrides the spec's worker count and ``adaptive`` the spec's
    ``sharding.adaptive_windows`` (the fixed-cadence baseline is
    ``adaptive=False``).
    """
    config.validate()
    blockers = sharding_blockers(config)
    if blockers:
        if config.sharding.mode == "explicit":
            raise ShardPlanError("spec cannot be sharded: "
                                 + "; ".join(blockers))
        warnings.warn(
            "spec cannot be sharded (" + "; ".join(blockers) + "); "
            "running on the single event loop instead",
            RuntimeWarning, stacklevel=2)
        unsharded = dataclasses.replace(config,
                                        sharding=ShardingSpec(mode="off"))
        result = _run_single_loop(unsharded, progress, progress_interval_s)
        result.sharding_stats = {"fallback": "single-loop",
                                 "blockers": list(blockers)}
        return result
    plan = build_shard_plan(config, shards=shards)
    if plan.num_shards <= 1:
        unsharded = dataclasses.replace(config,
                                        sharding=ShardingSpec(mode="off"))
        return _run_single_loop(unsharded, progress, progress_interval_s)
    sub_specs = split_spec(config, plan)
    mbx_shard: Optional[int] = None
    if config.wired_bottleneck_mbps is not None:
        # Host the shared queue with the scenario's first cell.
        mbx_shard = plan.assignment[config.resolved_cells()[0].cell_id]
    snr_coupled = config.mobility.enabled and config.mobility.mode == "snr"
    always_coupled = snr_coupled or mbx_shard is not None
    coupling_payload = None
    coupling_intervals: list[tuple[float, float]] = []
    commit_points: list[float] = []
    if config.mobility.enabled:
        coupling_intervals = mobility_coupling_intervals(config, plan)
        commit_points = schedule_commit_points(config, plan)
    aliases = wrapped_address_aliases(config)
    if config.mobility.enabled or mbx_shard is not None or aliases:
        coupling_payload = {"full_spec": config.to_dict(),
                            "assignment": plan.assignment,
                            "lookahead": plan.lookahead,
                            "mbx_shard": mbx_shard}
    router = _BoundaryRouter.for_plan(
        config, plan, ue_ip=ue_ip_address,
        mobility_coupled=bool(coupling_intervals) or always_coupled)
    if adaptive is None:
        adaptive = config.sharding.adaptive_windows
    # Address-alias coupling (wrapped >250-UE specs) has no schedule the
    # adaptive clock could jump by; fall back to fixed cadence for it.
    sync = _SyncPlan(horizon=config.duration_s, lookahead=plan.lookahead,
                     boundary_required=router.boundary_required,
                     adaptive=adaptive and not router.ip_conflict,
                     coupling=coupling_intervals,
                     commit_points=commit_points,
                     always_coupled=always_coupled,
                     mbx_shard=mbx_shard)
    on_window = None
    if progress is not None:
        def on_window(window_end: float) -> None:
            # Worker processes own the per-flow state mid-run, so sharded
            # progress is coarser than the single loop's: one snapshot per
            # barrier window, carrying the synchronized simulation time.
            progress({"kind": "window",
                      "time_s": min(window_end, config.duration_s),
                      "windows": sync.windows,
                      "shards": plan.num_shards})
    if inprocess is None:
        inprocess = bool(os.environ.get(INPROCESS_ENV))
    results = None
    if not inprocess:
        try:
            results = _run_workers(sub_specs, router, sync, coupling_payload,
                                   start_method, on_window=on_window)
        except _WorkersUnavailable as exc:
            sync.windows = 0
            warnings.warn(
                f"shard worker processes unavailable ({exc}); running all "
                f"{plan.num_shards} shards in-process (same results, no "
                "parallel speedup)", RuntimeWarning, stacklevel=2)
    if results is None:
        hosts = [ShardHost(sub, index, coupling=coupling_payload)
                 for index, sub in enumerate(sub_specs)]
        results = _run_hosts_inprocess(hosts, router, sync, on_window=on_window)
    if router.dropped_packets:
        warnings.warn(
            f"sharded run dropped {router.dropped_packets} unroutable "
            "uplink packet(s) at the shard boundary (the single loop drops "
            "these silently)", RuntimeWarning, stacklevel=2)
    stats = {"windows": sync.windows,
             "lookahead": plan.lookahead,
             "adaptive_windows": sync.adaptive,
             "boundary_required": router.boundary_required,
             "routed_packets": router.routed_packets,
             "shards": plan.num_shards}
    return merge_shard_results(config, plan, results, sharding_stats=stats)


def run_scenario_dict_sharded(spec_dict: dict,
                              shards: Optional[int] = None) -> ScenarioResult:
    """Sharded twin of ``run_scenario_dict`` (sweep-cell form)."""
    return run_scenario_sharded(ScenarioSpec.from_dict(spec_dict),
                                shards=shards)


__all__ = [
    "ConservativeSyncError",
    "ShardHost",
    "ShardPlan",
    "ShardPlanError",
    "ShardResult",
    "ShardingSpec",
    "boundary_lookahead",
    "build_shard_plan",
    "merge_shard_results",
    "mobility_coupling_intervals",
    "potentially_mobile_ues",
    "run_scenario_sharded",
    "run_scenario_dict_sharded",
    "schedule_commit_points",
    "sharding_blockers",
    "split_spec",
    "window_schedule",
    "wrapped_address_aliases",
]
