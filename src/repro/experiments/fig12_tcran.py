"""Fig. 12 -- L4Span versus the TC-RAN baseline.

One UE, a Prague or CUBIC flow, static or mobile channel, near (38 ms) or far
(106 ms) server: compare one-way delay and throughput under L4Span and under
TC-RAN (CoDel / ECN-CoDel between SDAP and PDCP with fixed thresholds).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.api import ScenarioSpec, run
from repro.metrics.stats import box_stats
from repro.units import ms


@dataclass
class TcRanComparisonConfig:
    """Scaled-down grid of the TC-RAN comparison."""

    cc_names: tuple = ("prague", "cubic")
    channels: tuple = ("static", "mobile")
    wan_rtts: tuple = (ms(38),)
    markers: tuple = ("l4span", "tcran")
    duration_s: float = 8.0
    seed: int = 13


def run_fig12(config: Optional[TcRanComparisonConfig] = None) -> list[dict]:
    """Run the comparison grid; one row per configuration."""
    config = config if config is not None else TcRanComparisonConfig()
    rows = []
    for cc, channel, rtt, marker in itertools.product(
            config.cc_names, config.channels, config.wan_rtts, config.markers):
        result = run(ScenarioSpec(
            num_ues=1, duration_s=config.duration_s, cc_name=cc,
            marker=marker, channel_profile=channel, wan_rtt=rtt,
            seed=config.seed))
        owd = box_stats(result.all_owd_samples())
        rows.append({
            "cc": cc, "channel": channel, "wan_rtt_ms": rtt * 1e3,
            "marker": marker,
            "owd_median_ms": owd.median * 1e3,
            "throughput_mbps": result.total_goodput_mbps(),
        })
    return rows


def throughput_improvement(rows: list[dict]) -> list[dict]:
    """L4Span-vs-TC-RAN throughput improvement per (cc, channel, rtt)."""
    out = []
    for row in rows:
        if row["marker"] != "l4span":
            continue
        baseline = next((r for r in rows if r["marker"] == "tcran"
                         and r["cc"] == row["cc"]
                         and r["channel"] == row["channel"]
                         and r["wan_rtt_ms"] == row["wan_rtt_ms"]), None)
        if baseline is None or baseline["throughput_mbps"] <= 0:
            continue
        out.append({
            "cc": row["cc"], "channel": row["channel"],
            "improvement_pct": 100.0 * (row["throughput_mbps"]
                                        - baseline["throughput_mbps"])
            / baseline["throughput_mbps"],
        })
    return out
