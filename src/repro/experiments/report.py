"""Plain-text report rendering for experiment harness outputs."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                 float_format: str = "{:.2f}") -> str:
    """Render a list of dict rows as an aligned text table.

    Args:
        rows: the rows to render; missing keys render as empty cells.
        columns: column order; defaults to the keys of the first row.
        float_format: format applied to float values.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        if isinstance(value, (list, dict)):
            return f"<{type(value).__name__}:{len(value)}>"
        return str(value)

    table = [[render(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in table))
              for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(line[i].ljust(widths[i])
                               for i in range(len(columns)))
                     for line in table)
    return "\n".join([header, separator, body])


def format_sections(sections: Iterable[tuple[str, Sequence[dict]]]) -> str:
    """Render several (title, rows) sections into one report string."""
    parts = []
    for title, rows in sections:
        parts.append(f"== {title} ==")
        parts.append(format_table(rows))
        parts.append("")
    return "\n".join(parts)
