"""The canonical, schema-versioned scenario result document.

Every machine-readable surface of the repo — the CLI's ``--json`` output,
the run archive under ``.repro_runs/`` and the scenario service's
``GET /runs/{id}`` endpoint — emits the *same* document, produced by
:func:`result_document` and serialized by :func:`dump_document`.  For a
given spec and seed the three surfaces are **byte-identical**: the document
contains no wall-clock timestamps, hostnames or other run-environment
state, keys are emitted sorted, and non-finite floats are canonicalized to
``null``.  Anything environment-specific (submission time, who ran it)
lives in the archive's *index*, never in the document.

The document carries ``schema_version`` so consumers can reject documents
they do not understand instead of mis-parsing them; :func:`check_document`
is the shared gatekeeper and :func:`result_schema` describes the current
layout field by field (``docs/service.md`` documents the version policy).

Version history:

* **1** — initial layout: ``spec`` (the full scenario spec dict),
  ``summary``, per-flow metric summaries, delay breakdown, marker summary,
  per-UE throughput, queue statistics, handover records, sharding stats and
  background-population counters.
"""

from __future__ import annotations

import json
import math

from repro.metrics.stats import summarize
from repro.units import to_mbps

#: Version stamped into (and required from) every result document.
SCHEMA_VERSION = 1

#: Versions this checkout knows how to read.
SUPPORTED_SCHEMA_VERSIONS = (1,)

#: The ``kind`` discriminator stamped into scenario result documents.
DOCUMENT_KIND = "scenario-result"


def _clean(value):
    """Canonicalize a plain-data tree for deterministic JSON.

    Non-finite floats become ``None`` (strict JSON has no ``NaN``), tuples
    become lists and dict keys become strings — exactly the normalisation
    ``json.dumps``/``json.loads`` would apply, performed eagerly so the
    in-memory document equals its own round trip.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {str(key): _clean(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(item) for item in value]
    return value


def _delay_summary_ms(samples) -> dict:
    """A compact millisecond summary of a delay-sample stream."""
    stats = summarize(samples)
    return {key: (value * 1e3 if key != "count" else value)
            for key, value in stats.items()}


def flow_document(flow) -> dict:
    """The per-flow section of the result document."""
    return {
        "flow_id": flow.flow_id,
        "ue_id": flow.ue_id,
        "cc_name": flow.cc_name,
        "label": flow.label,
        "goodput_mbps": flow.goodput_mbps,
        "completion_time_s": flow.completion_time,
        "congestion_events": flow.congestion_events,
        "marked_fraction": flow.marked_fraction,
        "owd_ms": _delay_summary_ms(flow.owd_samples),
        "rtt_ms": _delay_summary_ms(flow.rtt_samples),
    }


def result_document(result) -> dict:
    """Build the canonical document for a ScenarioResult.

    Pure in the result: two identical runs (same spec, same seed) yield
    equal documents, and :func:`dump_document` serializes equal documents
    to identical bytes.
    """
    queue_samples = result.queue_length_samples
    document = {
        "schema_version": SCHEMA_VERSION,
        "kind": DOCUMENT_KIND,
        "label": result.config.label(),
        "spec": result.config.to_dict(),
        "summary": result.summary(),
        "flows": [flow_document(flow) for flow in result.flows],
        "delay_breakdown": dict(result.delay_breakdown),
        "marker_summary": dict(result.marker_summary),
        "per_ue_throughput_mbps": {
            str(ue_id): to_mbps(rate)
            for ue_id, rate in sorted(result.per_ue_throughput.items())},
        "queue": {
            "samples": len(queue_samples),
            "mean_sdus": (sum(queue_samples) / len(queue_samples)
                          if queue_samples else 0.0),
            "max_sdus": max(queue_samples, default=0),
        },
        "rate_estimation": summarize(result.rate_estimation_errors),
        "handovers": list(result.handovers),
        "sharding": dict(result.sharding_stats),
        "background": dict(result.background),
        "duration_s": result.duration_s,
        "events_processed": result.events_processed,
    }
    return _clean(document)


def dump_document(document: dict) -> str:
    """The one true serialization: sorted keys, 2-space indent, newline.

    The CLI prints exactly this text, the archive stores exactly this text
    and the service responds with exactly this text, which is what makes
    the byte-identity contract testable with a plain string comparison.
    """
    return json.dumps(document, indent=2, sort_keys=True,
                      allow_nan=False) + "\n"


def check_document(document: dict) -> dict:
    """Validate a document's envelope; return it unchanged.

    Raises :class:`ValueError` with an actionable message when the
    document is not a result document or was written by a schema version
    this checkout does not understand.
    """
    if not isinstance(document, dict):
        raise ValueError("a result document must be a JSON object, got "
                         f"{type(document).__name__}")
    version = document.get("schema_version")
    if version is None:
        raise ValueError(
            "document has no 'schema_version' field; it predates the "
            "versioned result schema (or is not a result document) — "
            "re-run the scenario to regenerate it")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)
        raise ValueError(
            f"document schema_version {version!r} is not supported by this "
            f"checkout (understands: {supported}); upgrade the repo to read "
            "newer documents, or re-run the scenario with this version to "
            "regenerate older ones")
    return document


def result_schema() -> dict:
    """A JSON-Schema description of the current result document layout.

    Served by the scenario service at ``GET /schema`` and cross-checked
    against :func:`result_document`'s actual output by the test suite, so
    the description cannot drift from the implementation.
    """
    delay_summary = {
        "type": "object",
        "description": "millisecond summary of a delay-sample stream "
                       "(count, mean, median, p10, p90, min, max; "
                       "only 'count' when no samples were collected)",
    }
    return {
        "$schema": "https://json-schema.org/draft/2020-12/schema",
        "title": "repro scenario result document",
        "type": "object",
        "required": ["schema_version", "kind", "label", "spec", "summary",
                     "flows", "delay_breakdown", "marker_summary",
                     "per_ue_throughput_mbps", "queue", "rate_estimation",
                     "handovers", "sharding", "background", "duration_s",
                     "events_processed"],
        "properties": {
            "schema_version": {"const": SCHEMA_VERSION},
            "kind": {"const": DOCUMENT_KIND},
            "label": {"type": "string",
                      "description": "the spec's human-readable label"},
            "spec": {"type": "object",
                     "description": "the full ScenarioSpec (to_dict form) "
                                    "that produced this result"},
            "summary": {"type": "object",
                        "description": "the scenario-level summary row "
                                       "(ScenarioResult.summary())"},
            "flows": {
                "type": "array",
                "items": {
                    "type": "object",
                    "required": ["flow_id", "ue_id", "cc_name", "label",
                                 "goodput_mbps", "completion_time_s",
                                 "congestion_events", "marked_fraction",
                                 "owd_ms", "rtt_ms"],
                    "properties": {
                        "flow_id": {"type": "integer"},
                        "ue_id": {"type": "integer"},
                        "cc_name": {"type": "string"},
                        "label": {"type": "string"},
                        "goodput_mbps": {"type": "number"},
                        "completion_time_s": {"type": ["number", "null"]},
                        "congestion_events": {"type": "integer"},
                        "marked_fraction": {"type": "number"},
                        "owd_ms": delay_summary,
                        "rtt_ms": delay_summary,
                    },
                },
            },
            "delay_breakdown": {
                "type": "object",
                "description": "mean per-packet delay share by pipeline "
                               "stage, seconds"},
            "marker_summary": {
                "type": "object",
                "description": "marker counters merged across cells"},
            "per_ue_throughput_mbps": {
                "type": "object",
                "description": "mean received rate per UE id (keys are "
                               "stringified UE ids)"},
            "queue": {
                "type": "object",
                "required": ["samples", "mean_sdus", "max_sdus"],
                "description": "RLC queue-occupancy statistics across "
                               "bearers"},
            "rate_estimation": {
                "type": "object",
                "description": "summary of the rate-probe's percentage "
                               "errors (only 'count' unless the spec set "
                               "rate_probe)"},
            "handovers": {
                "type": "array",
                "description": "one record per executed handover; empty "
                               "without mobility"},
            "sharding": {
                "type": "object",
                "description": "shard-synchronizer statistics; empty for "
                               "single-loop runs"},
            "background": {
                "type": "object",
                "description": "background-population counters; empty "
                               "without a population block"},
            "duration_s": {"type": "number"},
            "events_processed": {"type": "integer"},
        },
    }
