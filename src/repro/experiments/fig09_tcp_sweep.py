"""Fig. 9 (and Fig. 24) -- the main TCP sweep.

For every combination of congestion-control algorithm, channel condition
(static / mobile), UE count, RLC queue length, WAN RTT and L4Span on/off, the
harness runs a concurrent-download scenario and reports the per-UE one-way
delay and throughput box statistics -- the quantities plotted in the paper's
Fig. 9 (Prague / BBRv2 / CUBIC) and Fig. 24 (BBR / Reno).

The full grid of the paper (16 and 64 UEs, 20+ second runs) is expensive in
a pure-Python simulator; ``SweepConfig`` therefore defaults to a scaled-down
grid that preserves the comparisons (who wins, by how much) and can be dialled
up through its fields.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.experiments.runner import SweepRunner
from repro.experiments.scenario import run_scenario
from repro.experiments.spec import ScenarioSpec
from repro.metrics.stats import BoxStats, box_stats
from repro.ran.identifiers import DEFAULT_RLC_QUEUE_SDUS
from repro.units import ms


@dataclass
class SweepConfig:
    """The sweep grid (scaled down by default)."""

    cc_names: tuple = ("prague", "bbr2", "cubic")
    channels: tuple = ("static", "mobile")
    ue_counts: tuple = (4,)
    rlc_queues: tuple = (DEFAULT_RLC_QUEUE_SDUS,)
    wan_rtts: tuple = (ms(38),)
    markers: tuple = ("none", "l4span")
    duration_s: float = 6.0
    seed: int = 11


@dataclass
class SweepCell:
    """One cell of the sweep: one (cc, channel, UEs, queue, RTT, marker) run."""

    cc_name: str
    channel: str
    num_ues: int
    rlc_queue: int
    wan_rtt: float
    marker: str
    owd: BoxStats
    per_ue_throughput_mbps: BoxStats
    total_goodput_mbps: float

    def as_row(self) -> dict:
        """A flat dictionary row for reports."""
        return {
            "cc": self.cc_name, "channel": self.channel, "ues": self.num_ues,
            "rlc_queue": self.rlc_queue, "wan_rtt_ms": self.wan_rtt * 1e3,
            "l4span": self.marker == "l4span",
            "owd_median_ms": self.owd.median * 1e3,
            "owd_p90_ms": self.owd.p90 * 1e3,
            "per_ue_tput_median_mbps": self.per_ue_throughput_mbps.median,
            "total_goodput_mbps": self.total_goodput_mbps,
        }


def run_spec_cell(spec: ScenarioSpec) -> SweepCell:
    """Run one cell of the Fig. 9 grid, described by its scenario spec."""
    result = run_scenario(spec)
    per_ue_mbps = [f.goodput_mbps for f in result.flows]
    return SweepCell(cc_name=spec.cc_name, channel=spec.channel_profile,
                     num_ues=spec.num_ues, rlc_queue=spec.rlc_queue_sdus,
                     wan_rtt=spec.wan_rtt, marker=spec.marker,
                     owd=box_stats(result.all_owd_samples()),
                     per_ue_throughput_mbps=box_stats(per_ue_mbps),
                     total_goodput_mbps=result.total_goodput_mbps())


def run_sweep_cell(cc_name: str, channel: str, num_ues: int, rlc_queue: int,
                   wan_rtt: float, marker: str, duration_s: float,
                   seed: int) -> SweepCell:
    """Run one cell of the Fig. 9 grid (historical argument-tuple form)."""
    return run_spec_cell(ScenarioSpec(
        num_ues=num_ues, duration_s=duration_s, cc_name=cc_name,
        marker=marker, channel_profile=channel, wan_rtt=wan_rtt,
        rlc_queue_sdus=rlc_queue, seed=seed))


def sweep_cells(config: SweepConfig) -> list[dict]:
    """The grid as a list of picklable scenario-spec dicts."""
    return [ScenarioSpec(
                num_ues=ues, duration_s=config.duration_s, cc_name=cc,
                marker=marker, channel_profile=channel, wan_rtt=rtt,
                rlc_queue_sdus=queue, seed=config.seed).to_dict()
            for cc, channel, ues, queue, rtt, marker in itertools.product(
                config.cc_names, config.channels, config.ue_counts,
                config.rlc_queues, config.wan_rtts, config.markers)]


def _run_cell(cell: dict) -> SweepCell:
    """Module-level (spawn-safe) adapter from a spec dict to its result."""
    return run_spec_cell(ScenarioSpec.from_dict(cell))


def run_fig9(config: Optional[SweepConfig] = None, workers: int = 1,
             progress: Optional[Callable[[int, int], None]] = None
             ) -> list[SweepCell]:
    """Run the whole (scaled-down) Fig. 9 grid, optionally in parallel."""
    config = config if config is not None else SweepConfig()
    runner = SweepRunner(workers=workers, progress=progress)
    return runner.map(_run_cell, sweep_cells(config))


def run_fig24(config: Optional[SweepConfig] = None, workers: int = 1,
              progress: Optional[Callable[[int, int], None]] = None
              ) -> list[SweepCell]:
    """Run the appendix sweep (BBR and Reno) on the same grid."""
    config = config if config is not None else SweepConfig()
    appendix = SweepConfig(cc_names=("bbr", "reno"), channels=config.channels,
                           ue_counts=config.ue_counts,
                           rlc_queues=config.rlc_queues,
                           wan_rtts=config.wan_rtts, markers=config.markers,
                           duration_s=config.duration_s, seed=config.seed)
    return run_fig9(appendix, workers=workers, progress=progress)


def improvement_table(cells: Iterable[SweepCell]) -> list[dict]:
    """Pair up the ±L4Span cells and compute the paper's headline reductions."""
    cells = list(cells)
    rows = []
    for cell in cells:
        if cell.marker != "l4span":
            continue
        baseline = next(
            (c for c in cells if c.marker == "none"
             and (c.cc_name, c.channel, c.num_ues, c.rlc_queue, c.wan_rtt)
             == (cell.cc_name, cell.channel, cell.num_ues, cell.rlc_queue,
                 cell.wan_rtt)), None)
        if baseline is None or baseline.owd.median != baseline.owd.median:
            continue
        reduction = 100.0 * (baseline.owd.median - cell.owd.median) \
            / baseline.owd.median if baseline.owd.median > 0 else 0.0
        tput_change = 0.0
        if baseline.per_ue_throughput_mbps.median > 0:
            tput_change = 100.0 * (
                cell.per_ue_throughput_mbps.median
                - baseline.per_ue_throughput_mbps.median) \
                / baseline.per_ue_throughput_mbps.median
        rows.append({"cc": cell.cc_name, "channel": cell.channel,
                     "ues": cell.num_ues, "rlc_queue": cell.rlc_queue,
                     "owd_reduction_pct": reduction,
                     "throughput_change_pct": tput_change})
    return rows
