"""Randomized scenario fuzzing for the coupled-topology shard barrier.

The shard synchronizer's correctness argument ("any window end is safe,
any commit point is honoured, ties sort like the single loop") is only as
good as the scenarios that exercise it.  This module draws small random —
but always *legal and shardable* — :class:`~repro.experiments.spec.
ScenarioSpec` instances spanning the coupled features (shared wired
middlebox, SNR-triggered mobility, scheduled handovers with short
interruptions) and checks the invariants every spec must hold:

* **Conservation** — the per-flow and per-UE byte accounting agree, every
  delivered packet has a finite non-negative one-way delay, and marked
  fractions stay inside ``[0, 1]``.
* **Shard equivalence** — on static channels the sharded run's per-flow
  metrics and handover records are bit-identical to the single loop.
* **Determinism** — running the same spec twice (single loop and sharded)
  reproduces the result exactly.
* **No barrier violations** — ``ConservativeSyncError`` never fires; a
  late boundary item anywhere fails the spec.

``random_spec`` is a pure function of the :class:`random.Random` instance
it is handed, so a seed fully reproduces a failing spec — the property
tests in ``tests/test_fuzz_spec.py`` drive it through hypothesis and the
CI smoke job replays fixed seeds via ``scripts/fuzz_specs.py``.
"""

from __future__ import annotations

import dataclasses
import random
import warnings
from typing import Optional, Sequence

from repro.api import ScenarioResult, run
from repro.experiments.sharded import run_scenario_sharded, sharding_blockers
from repro.experiments.spec import (CellSpec, HandoverSpec, MobilitySpec,
                                    ScenarioSpec, ShardingSpec, UeSpec)
from repro.units import ms
from repro.workloads.flows import FlowSpec

__all__ = ["random_spec", "check_spec", "flows_identical"]

#: Congestion controllers the fuzzer mixes (all deterministic).
_CC_NAMES = ("prague", "cubic", "bbr2")

#: Coupling modes a drawn spec lands in, with rough weights: plain multi-cell
#: splits, a shared wired middlebox, SNR mobility, both at once, and a
#: scheduled ping-pong handover whose interruption is shorter than the
#: barrier lookahead (the commit-point path).
_COUPLINGS = ("plain", "mbx", "snr", "mbx+snr", "short-ho")


def random_spec(rng: random.Random, duration_s: float = 0.4) -> ScenarioSpec:
    """Draw one shardable coupled scenario from ``rng``.

    Pure in ``rng``: the same :class:`random.Random` state yields the same
    spec, so one integer seed reproduces any failure.
    """
    coupling = rng.choice(_COUPLINGS)
    n_cells = rng.randint(2, 3)
    cells = [CellSpec(cell_id=cell) for cell in range(n_cells)]
    n_ues = n_cells + rng.randint(0, 1)
    ues = [UeSpec(ue_id=ue, cell_id=ue % n_cells,
                  mean_snr_db=5.0 if ue == 0 and "snr" in coupling else None)
           for ue in range(n_ues)]
    # Staggered starts and distinct WAN RTTs: the single loop resolves
    # same-instant ties by flow declaration order and the boundary sort
    # mirrors that, but keeping the draws distinct exercises the barrier on
    # timelines that never collapse onto one instant.
    flows = [FlowSpec(flow_id=i, ue_id=i,
                      cc_name=rng.choice(_CC_NAMES),
                      label=f"fuzz-{i}",
                      start_time=round(0.015 * i + rng.random() * 0.01, 6),
                      wan_rtt=ms(rng.choice((18, 28, 38, 58)) + 2 * i))
             for i in range(n_ues)]
    mobility = MobilitySpec()
    if "snr" in coupling:
        mobility = MobilitySpec(mode="snr", snr_threshold_db=10.0,
                                min_stay_s=rng.choice((0.1, 0.2)),
                                check_interval_s=0.05)
    elif coupling == "short-ho":
        mobility = MobilitySpec(
            mode="schedule", ho_mode=rng.choice(("forward", "flush")),
            interruption_s=0.005,
            handovers=[HandoverSpec(time=duration_s / 2, ue_id=0,
                                    target_cell=1)])
    wired: Optional[float] = None
    schedule: list = []
    if "mbx" in coupling:
        wired = float(rng.choice((30, 50, 80)))
        if rng.random() < 0.5:
            schedule = [(duration_s / 2, wired * 0.5)]
    return ScenarioSpec(
        name=f"fuzz-{coupling}", num_ues=0, duration_s=duration_s,
        channel_profile="static", marker="l4span",
        seed=rng.randrange(2 ** 31),
        wired_bottleneck_mbps=wired, wired_bottleneck_schedule=schedule,
        cells=cells, ues=ues, flows=flows, mobility=mobility)


# --------------------------------------------------------------------------- #
# Invariant checks
# --------------------------------------------------------------------------- #
def flows_identical(a: ScenarioResult, b: ScenarioResult) -> bool:
    """Bit-exact equality of the two results' per-flow metrics."""
    if len(a.flows) != len(b.flows):
        return False
    return all(
        x.flow_id == y.flow_id
        and x.owd_samples == y.owd_samples
        and x.rtt_samples == y.rtt_samples
        and x.goodput_bytes_per_s == y.goodput_bytes_per_s
        and x.congestion_events == y.congestion_events
        and x.marked_fraction == y.marked_fraction
        for x, y in zip(a.flows, b.flows))


def _conservation_violations(result: ScenarioResult) -> list[str]:
    """Byte/packet accounting checks inside one result."""
    violations: list[str] = []
    spec = result.config
    flow_bytes = 0.0
    for flow, flow_spec in zip(result.flows, spec.resolved_flows()):
        active = spec.duration_s - flow_spec.start_time
        if flow_spec.stop_time is not None:
            active = min(active, flow_spec.stop_time - flow_spec.start_time)
        flow_bytes += flow.goodput_bytes_per_s * max(active, 1e-9)
        if not 0.0 <= flow.marked_fraction <= 1.0:
            violations.append(
                f"flow {flow.flow_id} marked_fraction {flow.marked_fraction}")
        if any(owd < 0 or owd != owd or owd == float("inf")
               for owd in flow.owd_samples):
            violations.append(
                f"flow {flow.flow_id} has a negative/non-finite OWD sample")
    ue_bytes = sum(result.per_ue_throughput.values()) * spec.duration_s
    if abs(flow_bytes - ue_bytes) > 1e-6 * max(flow_bytes, ue_bytes, 1.0):
        violations.append(
            "byte accounting disagrees: per-flow "
            f"{flow_bytes:.1f}B vs per-UE {ue_bytes:.1f}B")
    return violations


def check_spec(spec: ScenarioSpec,
               shard_counts: Sequence[int] = (2,)) -> list[str]:
    """Run ``spec`` on the single loop and sharded; return violations.

    An empty list means every invariant held.  Any exception out of a
    sharded run (``ConservativeSyncError`` included) is itself a violation,
    reported rather than raised so a fuzz campaign sees all failures.
    """
    spec = spec.validate()
    violations = [f"unexpected sharding blocker: {reason}"
                  for reason in sharding_blockers(spec)]
    if violations:
        return violations
    single_spec = dataclasses.replace(spec, sharding=ShardingSpec(mode="off"))
    single = run(single_spec)
    if not flows_identical(single, run(single_spec)):
        violations.append("single loop is not deterministic across repeats")
    violations.extend(_conservation_violations(single))
    for shards in shard_counts:
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                sharded = run_scenario_sharded(spec, shards=shards,
                                               inprocess=True)
        except Exception as exc:  # noqa: BLE001 - any barrier fault counts
            violations.append(f"shards={shards} raised "
                              f"{type(exc).__name__}: {exc}")
            continue
        if sharded.sharding_stats.get("fallback"):
            violations.append(f"shards={shards} silently fell back: "
                              f"{sharded.sharding_stats}")
            continue
        if not flows_identical(single, sharded):
            violations.append(
                f"shards={shards} per-flow metrics differ from single loop")
        if single.handovers != sharded.handovers:
            violations.append(
                f"shards={shards} handover records differ from single loop")
        violations.extend(
            f"shards={shards}: {reason}"
            for reason in _conservation_violations(sharded))
    return violations
