"""Differential fuzzing across every runtime axis of the simulator.

The shard synchronizer's correctness argument ("any window end is safe,
any commit point is honoured, ties sort like the single loop") — and its
twins for the engine-backend registry and the result-document path — are
only as good as the scenarios that exercise them.  This module draws
small random but always *legal* :class:`~repro.experiments.spec.
ScenarioSpec` instances spanning the coupled features (shared wired
middlebox with zero-rate schedule steps, SNR-triggered mobility,
scheduled handovers with short interruptions, wrapped >250-UE address
spaces, fading channels, background populations, both engine backends)
and checks them against pluggable invariant suites:

* **conservation** — per-flow and per-UE byte accounting agree, every
  delivered packet has a finite non-negative one-way delay, and marked
  fractions stay inside ``[0, 1]``.
* **determinism** — running the same spec twice reproduces the result
  exactly, on every execution path.
* **sharding** — on static channels the sharded run's per-flow metrics
  and handover records are bit-identical to the single loop; on fading
  channels (where per-shard channel streams legitimately differ) the
  sharded run must still be deterministic and conserve bytes.  A silent
  fallback or any exception (``ConservativeSyncError`` included) is a
  violation.
* **backend** — the ``numpy`` backend is bit-identical to ``python`` on
  static channels and individually deterministic on fading ones (the
  contract of :mod:`repro.sim.backends`).
* **document** — every run's :func:`~repro.experiments.results.
  result_document` serializes byte-identically across dumps, passes
  :func:`~repro.experiments.results.check_document`, and determinism
  pairs produce byte-equal documents.

``random_spec`` is a pure function of the :class:`random.Random`
instance it is handed — every axis draw is consumed regardless of
environment gating (a missing numpy downgrades the choice, never the
stream) — so a seed fully reproduces a failing spec.  The property tests
in ``tests/test_fuzz_spec.py`` drive it through hypothesis, the CI smoke
job replays fixed seeds via ``scripts/fuzz_specs.py``, and
:func:`run_campaign` fans seed ranges across worker processes under the
``REPRO_CORE_BUDGET`` arbiter for the nightly campaign.
"""

from __future__ import annotations

import dataclasses
import json
import random
import time
import warnings
from typing import Callable, Optional, Sequence

from repro._numpy import numpy_available
from repro.api import ScenarioResult, run
from repro.experiments.results import (check_document, dump_document,
                                       result_document)
from repro.experiments.sharded import run_scenario_sharded, sharding_blockers
from repro.experiments.spec import (CellSpec, EngineSpec, HandoverSpec,
                                    MobilitySpec, PopulationSpec,
                                    ScenarioSpec, ShardingSpec, UeSpec)
from repro.sim.backends import available_backends, default_engine_name
from repro.units import ms
from repro.workloads.flows import FlowSpec

__all__ = ["INVARIANT_SUITES", "SpecRuns", "check_spec", "flows_identical",
           "random_spec", "run_campaign", "static_channel"]

#: Congestion controllers the fuzzer mixes (all deterministic).
_CC_NAMES = ("prague", "cubic", "bbr2")

#: Coupling modes a drawn spec lands in, with rough weights: plain multi-cell
#: splits, a shared wired middlebox, SNR mobility, both at once, and a
#: scheduled ping-pong handover whose interruption is shorter than the
#: barrier lookahead (the commit-point path).
_COUPLINGS = ("plain", "mbx", "snr", "mbx+snr", "short-ho")

#: Fading channel profiles drawn for the determinism-only tier.
_FADING_PROFILES = ("pedestrian", "vehicular")


def random_spec(rng: random.Random, duration_s: float = 0.4) -> ScenarioSpec:
    """Draw one legal scenario from ``rng``, spanning every runtime axis.

    Pure in ``rng``: the same :class:`random.Random` state yields the same
    spec, so one integer seed reproduces any failure.  Axis draws are
    consumed unconditionally; environment gates (numpy missing) downgrade
    the drawn value without touching the stream, so a seed names the same
    scenario *shape* everywhere.

    The spec's name records the drawn axes (``fuzz-mbx+stall+wrap``
    style), so campaign reports and corpus entries are self-describing.
    """
    coupling = rng.choice(_COUPLINGS)
    # Axis draws — always consumed, in a fixed order.
    engine_draw = rng.choice(("python", "python", "numpy"))
    fading = rng.random() < 0.25
    fading_profile = rng.choice(_FADING_PROFILES)
    population = rng.random() < 0.2
    n_background = rng.choice((40, 80, 120))
    wrapped = rng.random() < 0.25
    n_wrapped = rng.randint(1, 2)
    stall = rng.random() < 0.35
    stall_resumes = rng.random() < 0.7
    # Environment gating (never consumes draws): numpy-only axes fall back
    # to the portable choice when numpy is absent.
    if not numpy_available():
        engine_draw = "python"
        population = False
    # Wrapped addresses require every colliding UE to stay non-mobile
    # (sharding_blockers): restrict them to the immobile couplings.
    wrapped = wrapped and coupling in ("plain", "mbx")
    stall = stall and "mbx" in coupling

    n_cells = rng.randint(2, 3)
    cells = [CellSpec(cell_id=cell) for cell in range(n_cells)]
    n_ues = n_cells + rng.randint(0, 1)
    ues = [UeSpec(ue_id=ue, cell_id=ue % n_cells,
                  mean_snr_db=5.0 if ue == 0 and "snr" in coupling else None)
           for ue in range(n_ues)]
    # Staggered starts and distinct WAN RTTs: the single loop resolves
    # same-instant ties by flow declaration order and the boundary sort
    # mirrors that, but keeping the draws distinct exercises the barrier on
    # timelines that never collapse onto one instant.
    flows = [FlowSpec(flow_id=i, ue_id=i,
                      cc_name=rng.choice(_CC_NAMES),
                      label=f"fuzz-{i}",
                      start_time=round(0.015 * i + rng.random() * 0.01, 6),
                      wan_rtt=ms(rng.choice((18, 28, 38, 58)) + 2 * i))
             for i in range(n_ues)]
    if wrapped:
        # UE 250+i shares UE i's client address (10.45.0.{i+2}); the
        # higher id wins the shared core's routing table and the lower
        # id's flow degrades to a receiver-less trickle — on the single
        # loop and sharded alike.
        for i in range(n_wrapped):
            winner = 250 + i
            ues.append(UeSpec(ue_id=winner, cell_id=(i + 1) % n_cells))
            flows.append(FlowSpec(
                flow_id=n_ues + i, ue_id=winner,
                cc_name=rng.choice(_CC_NAMES),
                label=f"fuzz-wrap-{winner}",
                start_time=round(0.015 * (n_ues + i) + rng.random() * 0.01, 6),
                wan_rtt=ms(rng.choice((18, 28, 38, 58)) + 2 * (n_ues + i))))
    mobility = MobilitySpec()
    if "snr" in coupling:
        mobility = MobilitySpec(mode="snr", snr_threshold_db=10.0,
                                min_stay_s=rng.choice((0.1, 0.2)),
                                check_interval_s=0.05)
    elif coupling == "short-ho":
        mobility = MobilitySpec(
            mode="schedule", ho_mode=rng.choice(("forward", "flush")),
            interruption_s=0.005,
            handovers=[HandoverSpec(time=duration_s / 2, ue_id=0,
                                    target_cell=1)])
    wired: Optional[float] = None
    schedule: list = []
    if "mbx" in coupling:
        wired = float(rng.choice((30, 50, 80)))
        halve = rng.random() < 0.5
        if stall:
            # A zero-rate step stalls the queue mid-run; sometimes the
            # schedule resumes it, sometimes the stall holds to the
            # horizon (the unbounded-serialization case the shard floor
            # must survive).
            schedule = [(round(duration_s * 0.4, 6), 0.0)]
            if stall_resumes:
                schedule.append((round(duration_s * 0.7, 6), wired * 0.5))
        elif halve:
            schedule = [(duration_s / 2, wired * 0.5)]
    name = "fuzz-" + coupling
    for tag, active in (("fading", fading), ("pop", population),
                        ("wrap", wrapped), ("stall", stall),
                        ("np", engine_draw == "numpy")):
        if active:
            name += f"+{tag}"
    return ScenarioSpec(
        name=name, num_ues=0, duration_s=duration_s,
        channel_profile=fading_profile if fading else "static",
        marker="l4span",
        seed=rng.randrange(2 ** 31),
        wired_bottleneck_mbps=wired, wired_bottleneck_schedule=schedule,
        engine=EngineSpec(backend=engine_draw),
        population=(PopulationSpec(n_background=n_background,
                                   snr_stddev_db=3.0, activity=0.8)
                    if population else PopulationSpec()),
        cells=cells, ues=ues, flows=flows, mobility=mobility)


# --------------------------------------------------------------------------- #
# Result predicates
# --------------------------------------------------------------------------- #
def static_channel(spec: ScenarioSpec) -> bool:
    """True when every UE rides a static channel (bit-identity tier)."""
    return all((ue.channel_profile or spec.channel_profile) == "static"
               for ue in spec.resolved_ues())


def flows_identical(a: ScenarioResult, b: ScenarioResult) -> bool:
    """Bit-exact equality of the two results' per-flow metrics."""
    if len(a.flows) != len(b.flows):
        return False
    return all(
        x.flow_id == y.flow_id
        and x.owd_samples == y.owd_samples
        and x.rtt_samples == y.rtt_samples
        and x.goodput_bytes_per_s == y.goodput_bytes_per_s
        and x.congestion_events == y.congestion_events
        and x.marked_fraction == y.marked_fraction
        for x, y in zip(a.flows, b.flows))


def _conservation_violations(result: ScenarioResult) -> list[str]:
    """Byte/packet accounting checks inside one result."""
    violations: list[str] = []
    spec = result.config
    flow_bytes = 0.0
    for flow, flow_spec in zip(result.flows, spec.resolved_flows()):
        active = spec.duration_s - flow_spec.start_time
        if flow_spec.stop_time is not None:
            active = min(active, flow_spec.stop_time - flow_spec.start_time)
        flow_bytes += flow.goodput_bytes_per_s * max(active, 1e-9)
        if not 0.0 <= flow.marked_fraction <= 1.0:
            violations.append(
                f"flow {flow.flow_id} marked_fraction {flow.marked_fraction}")
        if any(owd < 0 or owd != owd or owd == float("inf")
               for owd in flow.owd_samples):
            violations.append(
                f"flow {flow.flow_id} has a negative/non-finite OWD sample")
    ue_bytes = sum(result.per_ue_throughput.values()) * spec.duration_s
    if abs(flow_bytes - ue_bytes) > 1e-6 * max(flow_bytes, ue_bytes, 1.0):
        violations.append(
            "byte accounting disagrees: per-flow "
            f"{flow_bytes:.1f}B vs per-UE {ue_bytes:.1f}B")
    return violations


# --------------------------------------------------------------------------- #
# Memoized runs of one spec across execution paths
# --------------------------------------------------------------------------- #
class SpecRuns:
    """Lazily runs one spec on each execution path, memoizing results.

    Suites share runs through this cache, so checking five invariant
    tiers costs each (path, repeat) combination exactly once.  Sharded
    runs that raise have the exception memoized and re-raised, keeping a
    failing path from re-running per suite.
    """

    def __init__(self, spec: ScenarioSpec,
                 shard_counts: Sequence[int] = (2,)) -> None:
        self.spec = spec.validate()
        self.shard_counts = tuple(shard_counts)
        self.static = static_channel(self.spec)
        self._single: dict[tuple[str, int], ScenarioResult] = {}
        self._sharded: dict[tuple[int, int], object] = {}

    def backend_of(self) -> str:
        """The spec's resolved engine backend name."""
        return self.spec.engine.backend or default_engine_name()

    def single(self, backend: Optional[str] = None,
               repeat: int = 0) -> ScenarioResult:
        """The single-loop result under ``backend`` (None = the spec's)."""
        backend = backend or self.backend_of()
        key = (backend, repeat)
        if key not in self._single:
            spec = dataclasses.replace(
                self.spec, sharding=ShardingSpec(mode="off"),
                engine=EngineSpec(backend=backend,
                                  channel_block=self.spec.engine.channel_block))
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                self._single[key] = run(spec)
        return self._single[key]

    def sharded(self, shards: int, repeat: int = 0) -> ScenarioResult:
        """The sharded result; re-raises a memoized failure."""
        key = (shards, repeat)
        if key not in self._sharded:
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore")
                    self._sharded[key] = run_scenario_sharded(
                        self.spec, shards=shards, inprocess=True)
            except Exception as exc:  # noqa: BLE001 - memoized, re-raised
                self._sharded[key] = exc
        value = self._sharded[key]
        if isinstance(value, Exception):
            raise value
        return value

    def completed(self) -> list[tuple[str, ScenarioResult]]:
        """Every (label, result) pair materialized so far."""
        runs = [(f"single[{backend},run{repeat}]", result)
                for (backend, repeat), result in self._single.items()]
        runs.extend((f"sharded[{shards},run{repeat}]", value)
                    for (shards, repeat), value in self._sharded.items()
                    if not isinstance(value, Exception))
        return runs


# --------------------------------------------------------------------------- #
# Invariant suites
# --------------------------------------------------------------------------- #
def _suite_conservation(runs: SpecRuns) -> list[str]:
    return _conservation_violations(runs.single())


def _suite_determinism(runs: SpecRuns) -> list[str]:
    if not flows_identical(runs.single(), runs.single(repeat=1)):
        return ["single loop is not deterministic across repeats"]
    return []


def _suite_sharding(runs: SpecRuns) -> list[str]:
    violations: list[str] = []
    single = runs.single()
    for shards in runs.shard_counts:
        try:
            sharded = runs.sharded(shards)
        except Exception as exc:  # noqa: BLE001 - any barrier fault counts
            violations.append(f"shards={shards} raised "
                              f"{type(exc).__name__}: {exc}")
            continue
        if sharded.sharding_stats.get("fallback"):
            violations.append(f"shards={shards} silently fell back: "
                              f"{sharded.sharding_stats}")
            continue
        if runs.static:
            if not flows_identical(single, sharded):
                violations.append(f"shards={shards} per-flow metrics differ "
                                  "from single loop")
            if single.handovers != sharded.handovers:
                violations.append(f"shards={shards} handover records differ "
                                  "from single loop")
        else:
            # Fading: per-shard channel streams legitimately diverge from
            # the single loop; the sharded path must still be
            # deterministic in itself.
            try:
                repeat = runs.sharded(shards, repeat=1)
            except Exception as exc:  # noqa: BLE001
                violations.append(f"shards={shards} repeat raised "
                                  f"{type(exc).__name__}: {exc}")
                continue
            if not flows_identical(sharded, repeat):
                violations.append(f"shards={shards} is not deterministic "
                                  "across repeats (fading)")
        violations.extend(f"shards={shards}: {reason}"
                          for reason in _conservation_violations(sharded))
    return violations


def _suite_backend(runs: SpecRuns) -> list[str]:
    backends = available_backends()
    if len(backends) < 2:
        return []  # one backend: nothing to differ from
    violations: list[str] = []
    for backend in backends:
        if not flows_identical(runs.single(backend=backend),
                               runs.single(backend=backend, repeat=1)):
            violations.append(f"{backend} backend is not deterministic "
                              "across repeats")
    if runs.static:
        reference = backends[0]
        for backend in backends[1:]:
            if not flows_identical(runs.single(backend=reference),
                                   runs.single(backend=backend)):
                violations.append(f"{backend} backend per-flow metrics "
                                  f"differ from {reference} (static channel)")
    return violations


def _suite_document(runs: SpecRuns) -> list[str]:
    violations: list[str] = []
    texts: dict[str, str] = {}
    for label, result in runs.completed():
        document = result_document(result)
        text = dump_document(document)
        if dump_document(result_document(result)) != text:
            violations.append(f"{label}: result_document serialization is "
                              "not byte-stable across dumps")
        try:
            check_document(json.loads(text))
        except ValueError as exc:
            violations.append(f"{label}: check_document rejected the "
                              f"document: {exc}")
        texts[label] = text
    # Determinism pairs must produce byte-equal documents.
    for base, repeat in (("single[{0},run0]", "single[{0},run1]"),):
        backend = runs.backend_of()
        a = texts.get(base.format(backend))
        b = texts.get(repeat.format(backend))
        if a is not None and b is not None and a != b:
            violations.append("repeat runs serialize to different "
                              "documents (byte identity broken)")
    return violations


#: Pluggable invariant suites, each ``fn(SpecRuns) -> [violation, ...]``.
#: Order matters mildly: the document suite audits whatever runs earlier
#: suites materialized.
INVARIANT_SUITES: dict[str, Callable[[SpecRuns], list[str]]] = {
    "conservation": _suite_conservation,
    "determinism": _suite_determinism,
    "sharding": _suite_sharding,
    "backend": _suite_backend,
    "document": _suite_document,
}


def check_spec(spec: ScenarioSpec,
               shard_counts: Sequence[int] = (2,),
               suites: Optional[Sequence[str]] = None) -> list[str]:
    """Run every invariant suite against ``spec``; return violations.

    An empty list means every invariant held.  Violations carry their
    suite name as a ``suite:`` prefix (``sharding: shards=2 ...``), which
    the minimizer uses as a failure signature.  Any exception out of a
    run (``ConservativeSyncError`` included) is itself a violation,
    reported rather than raised so a fuzz campaign sees all failures.
    """
    spec = spec.validate()
    violations = [f"blocker: unexpected sharding blocker: {reason}"
                  for reason in sharding_blockers(spec)]
    if violations:
        return violations
    runs = SpecRuns(spec, shard_counts=shard_counts)
    for name in (suites if suites is not None else INVARIANT_SUITES):
        suite = INVARIANT_SUITES[name]
        try:
            violations.extend(f"{name}: {reason}" for reason in suite(runs))
        except Exception as exc:  # noqa: BLE001 - a crashed suite is a finding
            violations.append(f"{name}: raised {type(exc).__name__}: {exc}")
    return violations


# --------------------------------------------------------------------------- #
# Campaign runner
# --------------------------------------------------------------------------- #
def _campaign_one(item: tuple) -> dict:
    """Check one seed (top-level so worker pools can pickle it)."""
    seed, duration_s, shard_counts, suites = item
    spec = random_spec(random.Random(seed), duration_s=duration_s)
    started = time.monotonic()
    violations = check_spec(spec, shard_counts=shard_counts, suites=suites)
    return {"seed": seed, "name": spec.name,
            "elapsed_s": round(time.monotonic() - started, 3),
            "violations": violations}


def _campaign_parallel(items: list, workers: int, out_of_time,
                       progress) -> tuple[list[dict], bool, int]:
    """Fan items across a process pool; ``workers == 1`` signals fallback.

    Mirrors the sweep runner's degradation contract: only pool *creation*
    failures (sandboxed platforms) and worker deaths fall back — they
    return ``workers=1`` so the caller re-runs sequentially; check
    failures are data, never exceptions.
    """
    import multiprocessing
    from concurrent.futures import (FIRST_COMPLETED, ProcessPoolExecutor,
                                    wait)
    from concurrent.futures.process import BrokenProcessPool
    try:
        pool = ProcessPoolExecutor(max_workers=workers,
                                   mp_context=multiprocessing.get_context())
    except (ImportError, NotImplementedError, OSError,
            PermissionError) as exc:
        warnings.warn(f"campaign process pool unavailable ({exc!r}); "
                      "checking seeds sequentially in this process",
                      RuntimeWarning, stacklevel=3)
        return [], False, 1
    records: list[dict] = []
    stopped_early = False
    try:
        with pool:
            pending = {pool.submit(_campaign_one, item) for item in items}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    record = future.result()
                    records.append(record)
                    if progress is not None:
                        progress(record)
                if pending and out_of_time():
                    stopped_early = True
                    for future in pending:
                        future.cancel()
                    break
    except BrokenProcessPool as exc:
        warnings.warn(f"campaign worker died ({exc!r}); re-checking all "
                      "seeds sequentially in this process",
                      RuntimeWarning, stacklevel=3)
        return [], False, 1
    records.sort(key=lambda record: record["seed"])
    return records, stopped_early, workers


def run_campaign(count: int, seed: int = 0, duration_s: float = 0.4,
                 shard_counts: Sequence[int] = (2,),
                 suites: Optional[Sequence[str]] = None,
                 workers: Optional[int] = None,
                 time_budget_s: Optional[float] = None,
                 progress: Optional[Callable[[dict], None]] = None) -> dict:
    """Fuzz ``count`` consecutive seeds; return the campaign report.

    Workers default to (and are always clamped by) the host's
    ``REPRO_CORE_BUDGET`` arbiter — a campaign shares the machine with
    whatever else runs under that budget.  ``time_budget_s`` stops the
    campaign early once the wall clock is spent (seeds already dispatched
    still finish); the report records how far it got.  Platforms without
    multiprocessing fall back to in-process checking, same report.
    """
    from repro.experiments.runner import core_budget
    budget = core_budget()
    if workers is None:
        workers = budget
    workers = max(1, min(int(workers), budget, count))
    items = [(seed + i, duration_s, tuple(shard_counts),
              tuple(suites) if suites is not None else None)
             for i in range(count)]
    started = time.monotonic()
    records: list[dict] = []
    stopped_early = False

    def out_of_time() -> bool:
        return (time_budget_s is not None
                and time.monotonic() - started >= time_budget_s)

    if workers > 1:
        records, stopped_early, workers = _campaign_parallel(
            items, workers, out_of_time, progress)
    if workers <= 1:
        for item in items:
            if out_of_time():
                stopped_early = True
                break
            record = _campaign_one(item)
            records.append(record)
            if progress is not None:
                progress(record)
    failures = [record for record in records if record["violations"]]
    return {
        "schema": 1,
        "params": {"count": count, "seed": seed, "duration_s": duration_s,
                   "shard_counts": list(shard_counts),
                   "suites": list(suites) if suites is not None else
                             list(INVARIANT_SUITES),
                   "time_budget_s": time_budget_s},
        "workers": workers,
        "seeds_checked": len(records),
        "stopped_early": stopped_early,
        "elapsed_s": round(time.monotonic() - started, 3),
        "failures": failures,
        "names": sorted({record["name"] for record in records}),
    }
