"""Fig. 15 -- effectiveness of feedback short-circuiting.

One UE, a local (low-RTT) server, Prague or CUBIC: compare the RTT and
throughput CDFs with the short-circuiting rewrite enabled versus disabled
(all other L4Span machinery unchanged).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.core.config import L4SpanConfig
from repro.api import ScenarioSpec, run
from repro.metrics.stats import cdf_points, percentile
from repro.units import ms


@dataclass
class ShortCircuitConfig:
    """Scaled-down short-circuiting experiment."""

    cc_names: tuple = ("prague", "cubic")
    duration_s: float = 8.0
    wan_rtt: float = ms(10)   # "local server" in the paper
    seed: int = 29


def run_fig15(config: Optional[ShortCircuitConfig] = None) -> list[dict]:
    """Run the ±short-circuit grid; one row per (algorithm, setting)."""
    config = config if config is not None else ShortCircuitConfig()
    rows = []
    for cc, shortcircuit in itertools.product(config.cc_names, (True, False)):
        l4span_config = L4SpanConfig(enable_shortcircuit=shortcircuit)
        result = run(ScenarioSpec(
            num_ues=1, duration_s=config.duration_s, cc_name=cc,
            marker="l4span", wan_rtt=config.wan_rtt,
            l4span_config=l4span_config, seed=config.seed))
        rtts = result.all_rtt_samples()
        rows.append({
            "cc": cc, "shortcircuit": shortcircuit,
            "rtt_mean_ms": (sum(rtts) / len(rtts) * 1e3) if rtts else None,
            "rtt_p999_ms": percentile(rtts, 99.9) * 1e3 if rtts else None,
            "rtt_cdf": cdf_points(rtts, max_points=50),
            "throughput_mbps": result.total_goodput_mbps(),
            "shortcircuited_acks": result.marker_summary.get(
                "shortcircuited_acks", 0),
        })
    return rows
