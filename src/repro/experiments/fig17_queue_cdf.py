"""Fig. 17 -- RLC queue length CDFs under L4Span.

Concurrent Prague or CUBIC downloads in static or mobile channels; the
output is the CDF of sampled RLC queue lengths (in SDUs).  The paper's point
is that the classic queue never drains to zero (no under-utilisation) while
the L4S queue stays very small.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.api import ScenarioSpec, run
from repro.metrics.stats import cdf_points, summarize


@dataclass
class QueueCdfConfig:
    """Scaled-down queue-occupancy experiment."""

    cc_names: tuple = ("prague", "cubic")
    channels: tuple = ("static", "mobile")
    num_ues: int = 4
    duration_s: float = 6.0
    seed: int = 37


def run_fig17(config: Optional[QueueCdfConfig] = None) -> list[dict]:
    """Run the queue-CDF grid under L4Span; one row per (cc, channel)."""
    config = config if config is not None else QueueCdfConfig()
    rows = []
    for cc, channel in itertools.product(config.cc_names, config.channels):
        result = run(ScenarioSpec(
            num_ues=config.num_ues, duration_s=config.duration_s,
            cc_name=cc, marker="l4span", channel_profile=channel,
            seed=config.seed))
        samples = result.queue_length_samples
        rows.append({
            "cc": cc, "channel": channel,
            "queue_summary": summarize(samples),
            "queue_cdf": cdf_points([float(s) for s in samples],
                                    max_points=50),
            "fraction_zero": (sum(1 for s in samples if s == 0) / len(samples)
                              if samples else float("nan")),
        })
    return rows
