"""Fig. 16 -- L4S and classic flows sharing one DRB.

A single UE without multi-DRB support carries one Prague and one CUBIC flow
in the same bearer.  Four marking strategies are compared: the per-class
"Original" strategies applied independently, marking both flows with the L4S
strategy, marking both with the classic strategy, and L4Span's coupled
strategy.  The metric is the L4S flow's share of throughput and of RTT
(0.5 = perfectly balanced).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.l4span import L4SpanLayer
from repro.core.marking import l4s_mark_probability
from repro.api import ScenarioSpec
from repro.experiments.scenario import build_scenario
from repro.metrics.stats import summarize
from repro.net.ecn import FlowClass
from repro.workloads.flows import FlowSpec

#: Strategy names accepted by :func:`run_shared_drb_case`.
SHARED_DRB_STRATEGIES = ("original", "l4s", "classic", "l4span")


class _ForcedStrategyLayer(L4SpanLayer):
    """An L4Span layer whose shared-DRB strategy is overridden for the ablation."""

    def __init__(self, *args, strategy: str = "l4span", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.strategy = strategy

    def mark_probability(self, state, flow):  # noqa: D102 - documented in base
        if self.strategy == "l4span" or not state.is_shared:
            return super().mark_probability(state, flow)
        prediction = state.prediction
        queued, rate, error = (prediction.queued_bytes, prediction.rate,
                               prediction.error_std)
        if rate <= 0:
            return 0.0
        sojourn = prediction.sojourn
        if self.strategy == "l4s":
            return l4s_mark_probability(queued, rate, error,
                                        self.config.sojourn_threshold)
        if self.strategy == "classic":
            return self._classic_probability(state, flow, sojourn, rate)
        # "original": apply each flow's own single-class strategy even though
        # the queue is shared.
        if flow.flow_class == FlowClass.L4S:
            return l4s_mark_probability(queued, rate, error,
                                        self.config.sojourn_threshold)
        return self._classic_probability(state, flow, sojourn, rate)


@dataclass
class SharedDrbConfig:
    """Scaled-down shared-DRB experiment."""

    duration_s: float = 8.0
    seed: int = 31


def run_shared_drb_case(strategy: str,
                        config: Optional[SharedDrbConfig] = None) -> dict:
    """Run one marking strategy on a shared DRB and return the share metrics."""
    config = config if config is not None else SharedDrbConfig()
    if strategy not in SHARED_DRB_STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}")
    flows = [FlowSpec(flow_id=0, ue_id=0, cc_name="prague", label="l4s"),
             FlowSpec(flow_id=1, ue_id=0, cc_name="cubic", label="classic")]
    scenario_config = ScenarioSpec(
        num_ues=1, duration_s=config.duration_s, marker="l4span",
        separate_drbs=False, flows=flows, seed=config.seed)
    built = build_scenario(scenario_config)
    built.marker = _ForcedStrategyLayer(built.sim,
                                        config=scenario_config.l4span_config,
                                        strategy=strategy)
    built.gnb.set_marker(built.marker)
    result = built.run()
    l4s_flow = result.flows_by_label("l4s")[0]
    classic_flow = result.flows_by_label("classic")[0]
    l4s_rtt = summarize(l4s_flow.rtt_samples).get("median", float("nan"))
    classic_rtt = summarize(classic_flow.rtt_samples).get("median",
                                                          float("nan"))
    total_tput = l4s_flow.goodput_mbps + classic_flow.goodput_mbps
    total_rtt = l4s_rtt + classic_rtt
    return {
        "strategy": strategy,
        "l4s_throughput_share": (l4s_flow.goodput_mbps / total_tput
                                 if total_tput > 0 else float("nan")),
        "l4s_rtt_share": (l4s_rtt / total_rtt if total_rtt > 0
                          else float("nan")),
        "l4s_tput_mbps": l4s_flow.goodput_mbps,
        "classic_tput_mbps": classic_flow.goodput_mbps,
    }


def run_fig16(config: Optional[SharedDrbConfig] = None) -> list[dict]:
    """Run all four shared-DRB strategies."""
    config = config if config is not None else SharedDrbConfig()
    return [run_shared_drb_case(strategy, config)
            for strategy in SHARED_DRB_STRATEGIES]
