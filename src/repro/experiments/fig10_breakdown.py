"""Fig. 10 -- one-way delay breakdown under RR and PF scheduling.

For each (scheduler, UE count, ±L4Span) combination, run concurrent Prague
downloads and report the average propagation / scheduling / queuing / other
components of the one-way delay.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.api import ScenarioSpec, run


@dataclass
class BreakdownConfig:
    """Scaled-down grid for the delay-breakdown figure."""

    schedulers: tuple = ("rr", "pf")
    ue_counts: tuple = (4,)
    markers: tuple = ("none", "l4span")
    cc_name: str = "prague"
    duration_s: float = 5.0
    seed: int = 5


def run_fig10(config: Optional[BreakdownConfig] = None) -> list[dict]:
    """Run the breakdown grid; returns one row per configuration."""
    config = config if config is not None else BreakdownConfig()
    rows = []
    for scheduler, ues, marker in itertools.product(
            config.schedulers, config.ue_counts, config.markers):
        result = run(ScenarioSpec(
            num_ues=ues, duration_s=config.duration_s,
            cc_name=config.cc_name, marker=marker, scheduler=scheduler,
            seed=config.seed))
        breakdown = result.delay_breakdown
        rows.append({
            "scheduler": scheduler, "ues": ues,
            "l4span": marker == "l4span",
            "propagation_ms": breakdown.get("propagation", 0.0) * 1e3,
            "queuing_ms": breakdown.get("queuing", 0.0) * 1e3,
            "scheduling_ms": breakdown.get("scheduling", 0.0) * 1e3,
            "other_ms": breakdown.get("other", 0.0) * 1e3,
            "total_ms": sum(breakdown.values()) * 1e3,
        })
    return rows
