"""Named, independently-seeded random streams.

Each subsystem (channel model for UE 3, loss process on the air interface,
marking coin flips, ...) draws from its own stream so that changing one part
of a scenario does not perturb the random sequence seen by the others.  This
is the standard trick for variance reduction and reproducibility in
discrete-event network simulators.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a child seed from ``master_seed`` and a label, deterministically.

    The single home of the SHA-256 construction used both for named streams
    inside one simulation and for per-cell sweep seeds -- keeping them on the
    same function is what guarantees they stay decorrelated from each other.
    """
    digest = hashlib.sha256(
        f"{int(master_seed)}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def chance(rng: np.random.Generator, probability: float) -> bool:
    """Bernoulli draw against a *cached* generator.

    Hot paths that have already looked their stream up (to avoid rebuilding
    name keys per event) must keep :meth:`RandomStreams.bernoulli`'s exact
    draw-count semantics -- no variate is consumed when the probability is
    degenerate -- or seeded runs stop being bit-reproducible.  This helper is
    the single home of that edge-case logic.
    """
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return True
    return float(rng.random()) < probability


class RandomStreams:
    """Factory of :class:`numpy.random.Generator` objects keyed by name."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed supplied at construction."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(
                derive_seed(self._seed, name))
        return self._streams[name]

    def uniform(self, name: str) -> float:
        """Draw a single uniform(0, 1) variate from the named stream."""
        return float(self.stream(name).random())

    def normal(self, name: str, loc: float = 0.0, scale: float = 1.0) -> float:
        """Draw a single Gaussian variate from the named stream."""
        if scale <= 0:
            return float(loc)
        return float(self.stream(name).normal(loc, scale))

    def exponential(self, name: str, mean: float) -> float:
        """Draw a single exponential variate with the given mean."""
        if mean <= 0:
            return 0.0
        return float(self.stream(name).exponential(mean))

    def bernoulli(self, name: str, probability: float) -> bool:
        """Return ``True`` with the given probability."""
        return chance(self.stream(name), probability)
