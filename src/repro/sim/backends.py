"""Engine backend registry: how the per-slot hot loops are executed.

The simulator has one canonical implementation of every mechanism -- the
pure-python event core, the MAC slot loop, the scalar channel processes.
Backends do not change *what* is simulated; they change *how* the dominant
per-slot work is executed:

* ``python`` (the default): every slot tick is a heap event, every channel
  read a scalar process step.  This is the reference implementation every
  other backend is measured against.
* ``numpy``: the three profiled per-slot hot loops run as batched kernels --
  the MAC slot clock moves onto the engine's off-heap timer wheel
  (:class:`repro.sim.engine.SlotTimer`) and batches consecutive slots, every
  UE channel is served from a per-cell block cache
  (:mod:`repro.channel.blockcache`) of pre-drawn variates, and the air
  interface's HARQ/jitter uniforms are pre-drawn in blocks.

Equivalence contract (asserted by ``tests/test_backends.py``): on static
channels the ``numpy`` backend produces **bit-identical per-flow metrics**
to ``python``, across repeats and ``--shards 1/2/4`` -- batched draws of a
single variate type consume a numpy ``Generator`` stream exactly like the
equivalent scalar draws, and wheel ticks consume heap sequence numbers at
the same logical points.  On fading channels the drift is confined to the
channel stream (the block cache advances the AR(1)/deep-fade process on the
slot grid instead of lazily), the same contract PR 3's draw batching
established; each backend remains individually deterministic.

Selection: the ``ScenarioSpec.engine`` block (``engine.backend``), the CLI
``--engine`` flag, or the ``REPRO_ENGINE`` environment variable for
anything that does not thread a spec through (CI matrix legs).  An explicit
``numpy`` selection without numpy installed fails with an actionable error;
the environment default falls back to ``python`` with a warning so a bare
interpreter still runs.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

from repro._numpy import numpy_available, require_numpy
from repro.registry import Registry

#: Engine backends, keyed by the names ``--engine`` / ``engine.backend``
#: accept.  Components are :class:`EngineBackend` subclasses.
ENGINE_BACKENDS = Registry("engine backend")

#: Environment variable naming the default backend when the spec leaves
#: ``engine.backend`` unset (e.g. the CI matrix leg running the whole test
#: suite under the numpy backend).
ENGINE_ENV = "REPRO_ENGINE"


class EngineBackend:
    """Base class (and behaviour) of an engine backend.

    Args:
        channel_block: variates/slots pre-computed per channel-cache block
            (``numpy`` backend only; carried by every backend so specs can
            set it independently of the backend choice).
    """

    #: Primary registry name; subclasses override.
    name = "python"
    #: True when the RAN should install the batched kernels (wheel slot
    #: clock, channel block cache, blocked air-interface draws).
    vectorized = False

    def __init__(self, channel_block: int = 256) -> None:
        self.channel_block = int(channel_block)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(channel_block={self.channel_block})"


@ENGINE_BACKENDS.register("python", "py")
class PythonBackend(EngineBackend):
    """The canonical pure-python execution path."""

    name = "python"
    vectorized = False


@ENGINE_BACKENDS.register("numpy", "np")
class NumpyBackend(EngineBackend):
    """Batched slot/channel kernels on the pure-python event core."""

    name = "numpy"
    vectorized = True

    def __init__(self, channel_block: int = 256) -> None:
        require_numpy(
            "the numpy engine backend",
            hint="select the default backend instead (--engine python, "
                 "spec engine.backend = \"python\", or unset REPRO_ENGINE)")
        super().__init__(channel_block)


def default_engine_name() -> str:
    """The backend name used when a spec leaves ``engine.backend`` unset.

    ``$REPRO_ENGINE`` when set (falling back to ``python`` with a warning
    if it names a vectorized backend and numpy is missing, so environment-
    driven runs skip cleanly instead of erroring), else ``python``.
    """
    name = os.environ.get(ENGINE_ENV, "").strip()
    if not name:
        return "python"
    resolved = ENGINE_BACKENDS.resolve(name)
    if ENGINE_BACKENDS.get(resolved).vectorized and not numpy_available():
        warnings.warn(
            f"{ENGINE_ENV}={name} selects a vectorized backend but numpy "
            "is not installed; falling back to the python backend",
            RuntimeWarning, stacklevel=2)
        return "python"
    return resolved


def available_backends() -> list[str]:
    """Primary backend names runnable in this interpreter, sorted.

    Vectorized backends are listed only when numpy is importable, so
    differential harnesses (the fuzzer's cross-backend suite, parametrized
    tests) can enumerate what to compare without try/except probing.
    """
    return [name for name in ENGINE_BACKENDS.names()
            if not ENGINE_BACKENDS.get(name).vectorized or numpy_available()]


def make_engine_backend(name: Optional[str] = None,
                        channel_block: int = 256) -> EngineBackend:
    """Instantiate a backend by name (None = the environment default)."""
    resolved = (ENGINE_BACKENDS.resolve(name) if name
                else default_engine_name())
    return ENGINE_BACKENDS.get(resolved)(channel_block=channel_block)
