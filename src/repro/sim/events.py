"""Event objects and the pending-event queue.

The queue is a binary heap keyed on ``(time, sequence)``.  The sequence number
breaks ties deterministically so two events scheduled for the same instant
always fire in the order they were scheduled, which keeps simulations
reproducible across runs and platforms.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time: absolute simulation time, in seconds, at which to fire.
        sequence: tie-breaking counter assigned by the queue.
        callback: callable invoked as ``callback(*args)``; not part of the
            ordering key.
        args: positional arguments for the callback.
        cancelled: events are cancelled lazily -- the queue skips them when
            they reach the head of the heap.
    """

    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark this event so the engine skips it when it pops."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[..., None],
             args: tuple = ()) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time`` and return the event."""
        event = Event(time=time, sequence=next(self._counter),
                      callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()


def never(*_args: Any) -> None:
    """A no-op callback, useful as a placeholder in tests."""
