"""Event objects and the pending-event queue.

The queue is a binary heap of plain ``(time, sequence, event)`` tuples.  The
sequence number breaks ties deterministically so two events scheduled for the
same instant always fire in the order they were scheduled, which keeps
simulations reproducible across runs and platforms.

Heap entries are tuples rather than the :class:`Event` objects themselves so
that heap sifting compares machine floats/ints instead of dispatching to a
dataclass ``__lt__`` -- the single hottest comparison in the simulator.  The
:class:`Event` is a plain slotted class (no dataclass machinery) for the same
reason: it is allocated once per scheduled callback, millions of times per
run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A single scheduled callback.

    Attributes:
        time: absolute simulation time, in seconds, at which to fire.
        sequence: tie-breaking counter assigned by the queue.
        callback: callable invoked as ``callback(*args)``; not part of the
            ordering key.
        args: positional arguments for the callback.
        cancelled: events are cancelled lazily -- the queue skips them when
            they reach the head of the heap.
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled")

    def __init__(self, time: float, sequence: int,
                 callback: Callable[..., None], args: tuple = ()) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so the engine skips it when it pops."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return (f"Event(time={self.time!r}, sequence={self.sequence}"
                f"{state})")


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    The internal heap holds ``(time, sequence, event)`` tuples; ``heap`` is
    exposed (read-only by convention) so :meth:`Simulator.run` can inline the
    pop loop without method-call overhead.
    """

    __slots__ = ("heap", "_next_seq")

    def __init__(self) -> None:
        self.heap: list[tuple[float, int, Event]] = []
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self.heap)

    def push(self, time: float, callback: Callable[..., None],
             args: tuple = ()) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time`` and return the event."""
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, seq, callback, args)
        heapq.heappush(self.heap, (time, seq, event))
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        heap = self.heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                return event
        return None

    # ``pop`` already skips cancelled entries in a single scan; the alias
    # exists so call sites can say what they mean (satellite of the old
    # pop/peek_time double-scan API).
    pop_pending = pop

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or ``None``."""
        heap = self.heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def clear(self) -> None:
        """Drop every pending event."""
        self.heap.clear()


def never(*_args: Any) -> None:
    """A no-op callback, useful as a placeholder in tests."""
