"""Periodic processes built on top of the event queue.

The MAC scheduler's TTI loop, channel-model updates and metric sampling all
run as :class:`PeriodicProcess` instances.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event


class PeriodicProcess:
    """Invoke a callback every ``period`` seconds until stopped.

    Args:
        sim: the simulator to schedule on.
        period: seconds between invocations; must be positive.
        callback: called with no arguments at every tick.
        start_at: absolute time of the first tick; defaults to ``sim.now + period``.
        jitter: optional uniform jitter (fraction of the period) added to each
            tick to avoid artificial phase locking between processes.
    """

    def __init__(self, sim: Simulator, period: float,
                 callback: Callable[[], None],
                 start_at: Optional[float] = None,
                 jitter: float = 0.0,
                 name: str = "periodic") -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._jitter = max(0.0, jitter)
        self._name = name
        self._stopped = False
        self._pending: Optional[Event] = None
        self.ticks = 0
        first = start_at if start_at is not None else sim.now + period
        self._pending = sim.schedule_at(max(first, sim.now), self._tick)

    @property
    def period(self) -> float:
        """Seconds between ticks."""
        return self._period

    def _tick(self) -> None:
        if self._stopped:
            return
        self.ticks += 1
        self._callback()
        if self._stopped:
            return
        delay = self._period
        if self._jitter:
            delay += self._period * self._jitter * self._sim.random.uniform(
                f"{self._name}-jitter")
        self._pending = self._sim.schedule(delay, self._tick)

    def stop(self) -> None:
        """Cancel future ticks.  Safe to call more than once."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
