"""The simulation engine: a clock plus an event queue.

Every component in the library receives a :class:`Simulator` and schedules
work on it.  The engine is deliberately small -- the interesting behaviour
lives in the network, RAN and congestion-control components.
"""

from __future__ import annotations

from heapq import heappop as _heappop
from typing import Callable, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.randomness import RandomStreams


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently (e.g. scheduling in the past)."""


class SlotTimer:
    """A recurring timer on the simulator's timer wheel.

    The wheel exists for the *dominant periodic* event classes -- above all
    the MAC slot clock, which fires every 0.5 ms for every cell and would
    otherwise account for the majority of heap pushes/pops in slot-bound
    scenarios.  A wheel timer never touches the heap: the run loop compares
    its ``(time, seq)`` key directly against the heap head.

    Determinism contract: a wheel timer consumes sequence numbers from the
    same :class:`~repro.sim.events.EventQueue` counter a heap push would, at
    the same logical points -- one at creation (where ``PeriodicProcess``
    pushes its first tick) and one after each firing (where the periodic
    callback re-schedules itself).  Same-instant ordering against heap
    events is therefore bit-identical to the heap-based implementation.

    The callback is invoked as ``callback(barrier_time, barrier_seq)`` with
    ``sim.now == timer.time``.  It must fire at least the current tick and
    call :meth:`advance` after every tick it processes; it *may* process
    further ticks (batching) while its next ``(time, seq)`` key stays below
    both the barrier key and the heap head.
    """

    __slots__ = ("time", "seq", "period", "callback", "stopped")

    def __init__(self, time: float, seq: int, period: float,
                 callback) -> None:
        self.time = time
        self.seq = seq
        self.period = period
        self.callback = callback
        self.stopped = False

    def advance(self, queue) -> None:
        """Move to the next tick, consuming one tie-break sequence number."""
        seq = queue._next_seq
        queue._next_seq = seq + 1
        self.seq = seq
        self.time += self.period

    def stop(self) -> None:
        """Stop firing; the run loop drops stopped timers lazily."""
        self.stopped = True


class Simulator:
    """Discrete-event simulator with a float-seconds clock.

    Args:
        seed: master seed for all random streams drawn via :attr:`random`.

    Example::

        sim = Simulator(seed=1)
        fired = []
        sim.schedule(0.5, lambda: fired.append(sim.now))
        sim.run(until=1.0)
        assert fired == [0.5]
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.events = EventQueue()
        self.random = RandomStreams(seed)
        self._running = False
        self._processed = 0
        #: Recurring timers living off-heap; empty unless a vectorized
        #: backend installed slot clocks (see :class:`SlotTimer`).
        self._wheel: list[SlotTimer] = []
        #: Bumped when a timer is added mid-run; tells the merged run loop
        #: its cached earliest-timer key may be stale.
        self._wheel_version = 0

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[..., None],
                 *args) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self.events.push(self.now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f} s, current time is {self.now:.6f} s")
        return self.events.push(time, callback, args)

    def call_soon(self, callback: Callable[..., None], *args) -> Event:
        """Schedule a callback for the current instant (after pending same-time events)."""
        return self.events.push(self.now, callback, args)

    def add_slot_timer(self, period: float, callback,
                       start_at: Optional[float] = None) -> SlotTimer:
        """Install a recurring off-heap timer (see :class:`SlotTimer`).

        ``callback(barrier_time, barrier_seq)`` fires at ``start_at``
        (default: now) and then every ``period`` seconds, interleaved with
        heap events in exact ``(time, sequence)`` order.  Only honoured by
        :meth:`run`; :meth:`step` processes heap events exclusively.
        """
        if period <= 0:
            raise SimulationError("slot timer period must be positive")
        first = self.now if start_at is None else max(start_at, self.now)
        # Consume the tie-break sequence number exactly where a heap-based
        # PeriodicProcess would push its first tick.
        queue = self.events
        seq = queue._next_seq
        queue._next_seq = seq + 1
        timer = SlotTimer(first, seq, period, callback)
        self._wheel.append(timer)
        self._wheel_version += 1
        return timer

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Process one event.  Returns ``False`` when the queue is empty."""
        event = self.events.pop_pending()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError("event queue returned an event in the past")
        self.now = event.time
        event.callback(*event.args)
        self._processed += 1
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the number of events processed by this call.

        The loop body is inlined over the queue's tuple heap -- one
        lazy-cancellation scan per iteration, locals bound outside the loop --
        because this is the hottest code in the library: every simulated
        packet, timer and channel update funnels through here.

        When wheel timers are installed (the ``numpy`` backend's slot
        clocks), the loop runs in a variant that merges the wheel with the
        heap; the classic loop below stays byte-for-byte untouched for the
        default backend.
        """
        if self._wheel:
            return self._run_with_wheel(until, max_events)
        self._running = True
        processed_before = self._processed
        # Hot-path local bindings (attribute loads hoisted out of the loop).
        heap = self.events.heap
        heappop = _heappop
        budget = max_events
        try:
            while self._running:
                if (budget is not None
                        and self._processed - processed_before >= budget):
                    break
                # Single combined scan: drop cancelled heads, then pop.
                while heap:
                    head_time = heap[0][0]
                    if heap[0][2].cancelled:
                        heappop(heap)
                        continue
                    break
                else:
                    break
                if until is not None and head_time > until:
                    self.now = until
                    break
                event = heappop(heap)[2]
                self.now = head_time
                event.callback(*event.args)
                # Per-event update keeps processed_events live for callbacks
                # (watchdog patterns read it mid-run).
                self._processed += 1
        finally:
            self._running = False
        return self._processed - processed_before

    def _run_with_wheel(self, until: Optional[float],
                        max_events: Optional[int]) -> int:
        """The run loop merged with the timer wheel.

        Events fire in exact ``(time, sequence)`` order across the heap and
        the wheel -- the key the heap itself orders by -- so firing order is
        bit-identical to scheduling every tick through the heap.  The wheel
        bookkeeping (compacting stopped timers, finding the earliest one)
        runs once per timer *firing*, not per event: heap events ahead of
        the cached earliest-timer key drain in an inner loop whose per-event
        cost matches the classic loop.  The cache can only go stale in one
        direction -- ``add_slot_timer`` may introduce an earlier key, which
        bumps ``_wheel_version`` and re-enters the bookkeeping; a timer
        *stopped* by a heap callback merely ends the inner drain early and
        is skipped on re-entry.  A firing wheel callback receives the
        barrier key (the next other wheel timer, capped by ``until``) and
        may batch multiple ticks up to that barrier and the heap head.
        """
        self._running = True
        processed_before = self._processed
        heap = self.events.heap
        heappop = _heappop
        budget = max_events
        try:
            while self._running:
                if (budget is not None
                        and self._processed - processed_before >= budget):
                    break
                wheel = self._wheel
                if any(timer.stopped for timer in wheel):
                    wheel = [t for t in wheel if not t.stopped]
                    self._wheel = wheel
                timer = None
                for candidate in wheel:
                    if (timer is None or candidate.time < timer.time
                            or (candidate.time == timer.time
                                and candidate.seq < timer.seq)):
                        timer = candidate
                if timer is None:
                    timer_time = timer_seq = float("inf")
                else:
                    timer_time = timer.time
                    timer_seq = timer.seq
                version = self._wheel_version
                finished = False
                fire = False
                while True:
                    # Drop cancelled heads, then read the live head key.
                    while heap:
                        head = heap[0]
                        if head[2].cancelled:
                            heappop(heap)
                            continue
                        break
                    else:
                        head = None
                    if head is None or head[0] > timer_time or (
                            head[0] == timer_time and head[1] > timer_seq):
                        # The timer is next (sequence numbers are unique, so
                        # exact key ties cannot happen).
                        fire = timer is not None
                        finished = head is None and timer is None
                        break
                    # Heap event first: same body as the classic loop.
                    head_time = head[0]
                    if until is not None and head_time > until:
                        self.now = until
                        finished = True
                        break
                    event = heappop(heap)[2]
                    self.now = head_time
                    event.callback(*event.args)
                    self._processed += 1
                    if not self._running:
                        finished = True
                        break
                    if (budget is not None
                            and self._processed - processed_before >= budget):
                        finished = True
                        break
                    if self._wheel_version != version:
                        break  # a new timer may now be the earliest
                if finished:
                    break
                if not fire or timer.stopped:
                    continue
                if until is not None and timer_time > until:
                    self.now = until
                    break
                # Barrier for batching: the next other live timer, capped by
                # ``until`` (ticks exactly at ``until`` still fire, hence the
                # +inf sequence).  A max_events budget forbids batching.
                barrier_time = until if until is not None else float("inf")
                barrier_seq: float = float("inf")
                for other in wheel:
                    if other is timer or other.stopped:
                        continue
                    if (other.time < barrier_time
                            or (other.time == barrier_time
                                and other.seq < barrier_seq)):
                        barrier_time = other.time
                        barrier_seq = other.seq
                if budget is not None:
                    barrier_time = timer_time
                    barrier_seq = timer_seq
                self.now = timer_time
                timer.callback(barrier_time, barrier_seq)
        finally:
            self._running = False
        return self._processed - processed_before

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._running = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def peek_time(self) -> Optional[float]:
        """Firing time of the earliest live event, or ``None`` when idle.

        Lets windowed callers (``run(until=t)`` invoked repeatedly) observe
        how far ahead this loop could safely run and whether it has work
        left at all — the hook an adaptive shard synchronizer needs (see
        the ROADMAP's open item; today the sharded runtime's windows are
        spec-derived and this is exercised by the engine tests only).

        Live wheel timers count as work: a shard whose only future activity
        is its slot clock must not look idle to the barrier synchronizer.
        """
        heap_time = self.events.peek_time()
        wheel_time: Optional[float] = None
        for timer in self._wheel:
            if not timer.stopped and (wheel_time is None
                                      or timer.time < wheel_time):
                wheel_time = timer.time
        if wheel_time is None:
            return heap_time
        if heap_time is None:
            return wheel_time
        return heap_time if heap_time < wheel_time else wheel_time

    @property
    def pending_events(self) -> int:
        """Number of heap entries still queued (including cancelled ones)."""
        return len(self.events)

    @property
    def processed_events(self) -> int:
        """Total number of events processed since construction."""
        return self._processed
