"""The simulation engine: a clock plus an event queue.

Every component in the library receives a :class:`Simulator` and schedules
work on it.  The engine is deliberately small -- the interesting behaviour
lives in the network, RAN and congestion-control components.
"""

from __future__ import annotations

from heapq import heappop as _heappop
from typing import Callable, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.randomness import RandomStreams


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently (e.g. scheduling in the past)."""


class Simulator:
    """Discrete-event simulator with a float-seconds clock.

    Args:
        seed: master seed for all random streams drawn via :attr:`random`.

    Example::

        sim = Simulator(seed=1)
        fired = []
        sim.schedule(0.5, lambda: fired.append(sim.now))
        sim.run(until=1.0)
        assert fired == [0.5]
    """

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.events = EventQueue()
        self.random = RandomStreams(seed)
        self._running = False
        self._processed = 0

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[..., None],
                 *args) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self.events.push(self.now + delay, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time:.6f} s, current time is {self.now:.6f} s")
        return self.events.push(time, callback, args)

    def call_soon(self, callback: Callable[..., None], *args) -> Event:
        """Schedule a callback for the current instant (after pending same-time events)."""
        return self.events.push(self.now, callback, args)

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Process one event.  Returns ``False`` when the queue is empty."""
        event = self.events.pop_pending()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError("event queue returned an event in the past")
        self.now = event.time
        event.callback(*event.args)
        self._processed += 1
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events`` fire.

        Returns the number of events processed by this call.

        The loop body is inlined over the queue's tuple heap -- one
        lazy-cancellation scan per iteration, locals bound outside the loop --
        because this is the hottest code in the library: every simulated
        packet, timer and channel update funnels through here.
        """
        self._running = True
        processed_before = self._processed
        # Hot-path local bindings (attribute loads hoisted out of the loop).
        heap = self.events.heap
        heappop = _heappop
        budget = max_events
        try:
            while self._running:
                if (budget is not None
                        and self._processed - processed_before >= budget):
                    break
                # Single combined scan: drop cancelled heads, then pop.
                while heap:
                    head_time = heap[0][0]
                    if heap[0][2].cancelled:
                        heappop(heap)
                        continue
                    break
                else:
                    break
                if until is not None and head_time > until:
                    self.now = until
                    break
                event = heappop(heap)[2]
                self.now = head_time
                event.callback(*event.args)
                # Per-event update keeps processed_events live for callbacks
                # (watchdog patterns read it mid-run).
                self._processed += 1
        finally:
            self._running = False
        return self._processed - processed_before

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._running = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def peek_time(self) -> Optional[float]:
        """Firing time of the earliest live event, or ``None`` when idle.

        Lets windowed callers (``run(until=t)`` invoked repeatedly) observe
        how far ahead this loop could safely run and whether it has work
        left at all — the hook an adaptive shard synchronizer needs (see
        the ROADMAP's open item; today the sharded runtime's windows are
        spec-derived and this is exercised by the engine tests only).
        """
        return self.events.peek_time()

    @property
    def pending_events(self) -> int:
        """Number of heap entries still queued (including cancelled ones)."""
        return len(self.events)

    @property
    def processed_events(self) -> int:
        """Total number of events processed since construction."""
        return self._processed
