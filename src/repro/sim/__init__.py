"""Discrete-event simulation engine used by every substrate in the library."""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.process import PeriodicProcess
from repro.sim.randomness import RandomStreams

__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "PeriodicProcess",
    "RandomStreams",
]
