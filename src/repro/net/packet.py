"""The packet object that flows through every component in the simulation.

A single :class:`Packet` class models both data segments and ACKs; transport
semantics live in boolean flags and optional fields rather than separate
classes so that network elements (queues, the RAN, L4Span) can treat all
traffic uniformly, exactly as a real middlebox sees opaque IP datagrams.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.net.addresses import FiveTuple
from repro.net.ecn import ECN, FlowClass, classify_ecn

#: Default maximum segment size used throughout the library (bytes of payload).
DEFAULT_MSS = 1400

#: Bytes of IP + TCP header accounted on top of the payload.
HEADER_BYTES = 40

_packet_ids = itertools.count(1)


@dataclass(slots=True)
class AccEcnCounters:
    """Accurate-ECN feedback counters carried in an ACK (draft-ietf-tcpm-accurate-ecn).

    The receiver (or L4Span when short-circuiting) reports the running totals
    of CE-marked packets and CE / ECT(1) / ECT(0) bytes it has seen; the sender
    differences successive ACKs to recover the per-RTT mark fraction.
    """

    ce_packets: int = 0
    ce_bytes: int = 0
    ect1_bytes: int = 0
    ect0_bytes: int = 0

    def copy(self) -> "AccEcnCounters":
        """Return an independent copy of the counters."""
        return AccEcnCounters(self.ce_packets, self.ce_bytes,
                              self.ect1_bytes, self.ect0_bytes)

    def add_packet(self, size: int, ecn: ECN) -> None:
        """Account one received data packet of ``size`` bytes with ECN field ``ecn``."""
        if ecn == ECN.CE:
            self.ce_packets += 1
            self.ce_bytes += size
        elif ecn == ECN.ECT1:
            self.ect1_bytes += size
        elif ecn == ECN.ECT0:
            self.ect0_bytes += size


@dataclass(slots=True)
class Packet:
    """A simulated IP datagram.

    Attributes:
        packet_id: globally unique identifier (monotonic).
        flow_id: identifier of the transport flow the packet belongs to.
        five_tuple: addressing; ACKs carry the reverse tuple of their data flow.
        size: total size in bytes (payload + :data:`HEADER_BYTES`).
        ecn: the IP ECN codepoint; mutated in place by markers.
        protocol: ``"tcp"`` or ``"udp"``.
        seq: first payload byte carried (data packets).
        end_seq: one past the last payload byte carried.
        is_ack: True for pure acknowledgements travelling uplink.
        ack_seq: cumulative acknowledgement (next expected byte).
        ece / cwr: classic ECN TCP flags (RFC 3168 echo and reduced-window).
        accecn: AccECN counters when the flow negotiated accurate ECN.
        sent_time: transport-layer send timestamp at the server.
        timestamps: free-form measurement points stamped by components
            (``"core_ingress"``, ``"rlc_enqueue"``, ``"rlc_head"``,
            ``"rlc_dequeue"``, ``"ue_delivered"``, ...).
        marked_by: name of the component that set CE, for accounting.
        retransmission: True when the transport re-sent these bytes.
    """

    flow_id: int
    five_tuple: FiveTuple
    size: int
    ecn: ECN = ECN.NOT_ECT
    protocol: str = "tcp"
    seq: int = 0
    end_seq: int = 0
    is_ack: bool = False
    ack_seq: int = 0
    ece: bool = False
    cwr: bool = False
    accecn: Optional[AccEcnCounters] = None
    sent_time: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    timestamps: dict = field(default_factory=dict)
    marked_by: Optional[str] = None
    retransmission: bool = False
    payload_info: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def payload_bytes(self) -> int:
        """Bytes of transport payload carried (never negative)."""
        return max(0, self.size - HEADER_BYTES)

    @property
    def flow_class(self) -> FlowClass:
        """Service class derived from the ECN codepoint."""
        return classify_ecn(self.ecn)

    @property
    def is_ce(self) -> bool:
        """True when the packet carries a congestion-experienced mark."""
        return self.ecn == ECN.CE

    def mark_ce(self, by: str = "") -> bool:
        """Set the CE codepoint if the packet is ECN-capable.

        Returns True if the mark was applied, False for a Not-ECT packet
        (which a real AQM would have to drop instead).
        """
        if self.ecn == ECN.NOT_ECT:
            return False
        if self.ecn != ECN.CE:
            self.ecn = ECN.CE
            self.marked_by = by or self.marked_by
        return True

    def stamp(self, name: str, time: float) -> None:
        """Record a measurement timestamp; the first stamp of a name wins."""
        self.timestamps.setdefault(name, time)

    def stamp_override(self, name: str, time: float) -> None:
        """Record a measurement timestamp, overwriting any previous value."""
        self.timestamps[name] = time

    def elapsed(self, start: str, end: str) -> Optional[float]:
        """Seconds between two stamps, or None when either is missing."""
        if start not in self.timestamps or end not in self.timestamps:
            return None
        return self.timestamps[end] - self.timestamps[start]


def make_data_packet(flow_id: int, five_tuple: FiveTuple, seq: int,
                     payload: int, ecn: ECN, now: float,
                     protocol: str = "tcp",
                     retransmission: bool = False) -> Packet:
    """Create a downlink data segment carrying ``payload`` bytes starting at ``seq``."""
    return Packet(flow_id=flow_id, five_tuple=five_tuple,
                  size=payload + HEADER_BYTES, ecn=ecn, protocol=protocol,
                  seq=seq, end_seq=seq + payload, sent_time=now,
                  retransmission=retransmission)


def make_ack_packet(data_packet: Packet, ack_seq: int, now: float,
                    ece: bool = False,
                    accecn: Optional[AccEcnCounters] = None) -> Packet:
    """Create the uplink acknowledgement elicited by ``data_packet``."""
    ack = Packet(flow_id=data_packet.flow_id,
                 five_tuple=data_packet.five_tuple.reversed(),
                 size=HEADER_BYTES, ecn=ECN.NOT_ECT,
                 protocol=data_packet.protocol, is_ack=True,
                 ack_seq=ack_seq, ece=ece,
                 accecn=accecn.copy() if accecn is not None else None,
                 sent_time=now)
    ack.payload_info["data_sent_time"] = data_packet.sent_time
    ack.payload_info["data_packet_id"] = data_packet.packet_id
    if "app" in data_packet.payload_info:
        ack.payload_info["app"] = data_packet.payload_info["app"]
    return ack
