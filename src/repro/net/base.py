"""Common interfaces for packet-processing components.

Every element of the data path -- wired links, queues, the RAN layers, the
L4Span layer and the transport endpoints -- implements the tiny
:class:`PacketSink` protocol: a single ``receive(packet)`` method.  Components
are chained by assigning ``sink`` attributes, which keeps topology wiring
explicit and easy to rearrange in experiment code.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from repro.net.packet import Packet


@runtime_checkable
class PacketSink(Protocol):
    """Anything that can accept a packet."""

    def receive(self, packet: Packet) -> None:
        """Consume ``packet``; ownership transfers to the callee."""
        ...


class NullSink:
    """A sink that counts and discards everything it receives."""

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0

    def receive(self, packet: Packet) -> None:
        self.packets += 1
        self.bytes += packet.size


class CollectorSink:
    """A sink that stores received packets, for tests and probes."""

    def __init__(self) -> None:
        self.received: list[Packet] = []

    def receive(self, packet: Packet) -> None:
        self.received.append(packet)

    def __len__(self) -> int:
        return len(self.received)

    def clear(self) -> None:
        self.received.clear()


class Tap:
    """Pass-through element that invokes a callback on every packet.

    Useful for inserting measurement probes anywhere in a path without
    changing component behaviour.
    """

    def __init__(self, callback, sink: Optional[PacketSink] = None) -> None:
        self._callback = callback
        self.sink = sink

    def receive(self, packet: Packet) -> None:
        self._callback(packet)
        if self.sink is not None:
            self.sink.receive(packet)
