"""Internet checksum (RFC 1071) and lightweight header serialisation.

The real L4Span prototype must recompute the IP checksum after rewriting the
ECN field and the TCP checksum after rewriting ACK feedback (paper §5).  The
simulation does not need checksums for correctness, but we model the same
operations so the processing-cost benchmark (Fig. 21 / Table 1) exercises a
comparable amount of per-packet work, and so tests can verify that marking a
packet keeps its headers internally consistent.
"""

from __future__ import annotations

import struct
import sys

from repro.net.ecn import ECN
from repro.net.packet import Packet

_LITTLE_ENDIAN = sys.byteorder == "little"


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement checksum of ``data``.

    The one's-complement sum is invariant under a consistent byte swap of
    every word, so the words are summed in *native* order through a zero-copy
    ``memoryview`` cast (no per-word unpacking loop) and the folded result is
    swapped back to network order once at the end -- several times faster
    than the ``iter_unpack`` formulation this replaces, which matters because
    every marked packet and short-circuited ACK pays this cost.
    """
    if len(data) % 2:
        data += b"\x00"
    total = sum(memoryview(data).cast("H"))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    if _LITTLE_ENDIAN:
        total = ((total & 0xFF) << 8) | (total >> 8)
    return (~total) & 0xFFFF


def incremental_checksum_update(checksum: int, old_words, new_words) -> int:
    """RFC 1624 (Eq. 3) incremental checksum update.

    Given the checksum of a header and the 16-bit words (network order) that
    changed, produce the checksum of the rewritten header without touching
    the unchanged bytes: ``HC' = ~(~HC + ~m + m')`` in one's-complement
    arithmetic.  This is exactly what L4Span's datapath does after rewriting
    the ECN field or short-circuiting ACK feedback -- a handful of adds
    instead of re-serializing and re-summing the whole header.

    Results agree with a full :func:`internet_checksum` recompute modulo
    the one's-complement ±0 representation: for an all-zero rewritten
    header (impossible for real IP/TCP headers, whose first word is never
    zero) this returns 0x0000 where the full sum returns 0xFFFF.  Compare
    checksums with :func:`checksums_equal` to absorb that edge.
    """
    total = (~checksum) & 0xFFFF
    for old, new in zip(old_words, new_words):
        total += ((~old) & 0xFFFF) + new
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def checksums_equal(a: int, b: int) -> bool:
    """Equality modulo the one's-complement ±0 ambiguity (RFC 1624 §3).

    0x0000 and 0xFFFF both encode a zero sum; incremental updates and full
    recomputes may land on different representatives, so checksum
    comparisons must treat them as the same value.
    """
    return a == b or {a & 0xFFFF, b & 0xFFFF} == {0x0000, 0xFFFF}


def ip_tos_word(packet: Packet) -> int:
    """The first 16-bit word of the IP header (version/IHL and ToS/ECN).

    The only IP word a marker rewrite can change (CE lives in the two ECN
    bits of the ToS byte), so CE marking updates the checksum incrementally
    from this word alone.
    """
    return (0x45 << 8) | (int(packet.ecn) & 0x03)


def tcp_rewrite_words(packet: Packet) -> tuple:
    """The TCP header words an ACK short-circuit rewrite can change.

    Word 0 is the data-offset/flags word (ECE/CWR live here); when the flow
    negotiated AccECN the four 32-bit counters follow as eight 16-bit words.
    Capture before the rewrite, compare after: the pair feeds
    :func:`incremental_checksum_update`.
    """
    flags = 0x10
    if packet.ece:
        flags |= 0x40
    if packet.cwr:
        flags |= 0x80
    words = [(0x50 << 8) | flags]
    if packet.accecn is not None:
        for value in (packet.accecn.ce_packets, packet.accecn.ce_bytes,
                      packet.accecn.ect1_bytes, packet.accecn.ect0_bytes):
            value &= 0xFFFFFFFF
            words.append(value >> 16)
            words.append(value & 0xFFFF)
    return tuple(words)


def verify_checksum(data: bytes, checksum: int) -> bool:
    """True when ``checksum`` is the valid internet checksum of ``data``."""
    return internet_checksum(data) == checksum


def serialize_ip_header(packet: Packet) -> bytes:
    """Produce a 20-byte IPv4-style header for checksum purposes.

    The encoding is simplified (addresses are hashed into 32 bits) but is
    deterministic and sensitive to every field a marker may rewrite, which is
    what the tests and the processing-cost model need.
    """
    tos = int(packet.ecn) & 0x03
    total_length = packet.size & 0xFFFF
    proto = 6 if packet.protocol == "tcp" else 17
    src = hash(packet.five_tuple.src_ip) & 0xFFFFFFFF
    dst = hash(packet.five_tuple.dst_ip) & 0xFFFFFFFF
    header = struct.pack("!BBHHHBBH", 0x45, tos, total_length,
                         packet.packet_id & 0xFFFF, 0, 64, proto, 0)
    header += struct.pack("!II", src, dst)
    return header


def serialize_tcp_header(packet: Packet) -> bytes:
    """Produce a 20-byte TCP-style header covering the feedback fields."""
    flags = 0x10  # ACK
    if packet.ece:
        flags |= 0x40
    if packet.cwr:
        flags |= 0x80
    src_port = packet.five_tuple.src_port & 0xFFFF
    dst_port = packet.five_tuple.dst_port & 0xFFFF
    header = struct.pack("!HHIIBBHHH", src_port, dst_port,
                         packet.seq & 0xFFFFFFFF, packet.ack_seq & 0xFFFFFFFF,
                         0x50, flags, 0xFFFF, 0, 0)
    if packet.accecn is not None:
        header += struct.pack("!IIII", packet.accecn.ce_packets & 0xFFFFFFFF,
                              packet.accecn.ce_bytes & 0xFFFFFFFF,
                              packet.accecn.ect1_bytes & 0xFFFFFFFF,
                              packet.accecn.ect0_bytes & 0xFFFFFFFF)
    return header


def ip_checksum_of(packet: Packet) -> int:
    """Checksum of the (simplified) IP header of ``packet``."""
    return internet_checksum(serialize_ip_header(packet))


def tcp_checksum_of(packet: Packet) -> int:
    """Checksum of the (simplified) TCP header of ``packet``."""
    return internet_checksum(serialize_tcp_header(packet))


def recompute_checksums(packet: Packet) -> tuple[int, int]:
    """Recompute both checksums, mirroring what L4Span does after rewriting.

    Returns ``(ip_checksum, tcp_checksum)`` and stores them in
    ``packet.payload_info`` so later verification can detect a stale value.
    """
    ip_sum = ip_checksum_of(packet)
    tcp_sum = tcp_checksum_of(packet) if packet.protocol == "tcp" else 0
    packet.payload_info["ip_checksum"] = ip_sum
    packet.payload_info["tcp_checksum"] = tcp_sum
    return ip_sum, tcp_sum


def checksums_valid(packet: Packet) -> bool:
    """True when the stored checksums match the current header contents."""
    if "ip_checksum" not in packet.payload_info:
        return False
    if not checksums_equal(packet.payload_info["ip_checksum"],
                           ip_checksum_of(packet)):
        return False
    if packet.protocol == "tcp":
        stored = packet.payload_info.get("tcp_checksum")
        return stored is not None and checksums_equal(stored,
                                                      tcp_checksum_of(packet))
    return True


def mark_ce_with_checksum(packet: Packet, by: str) -> bool:
    """Mark CE and refresh the IP checksum, as the prototype's datapath does.

    A packet whose checksum is already known is updated incrementally per
    RFC 1624 from the one changed word; otherwise the header is summed once
    (there is no old checksum to update from).
    """
    stored = packet.payload_info.get("ip_checksum")
    old_word = ip_tos_word(packet)
    marked = packet.mark_ce(by)
    if marked:
        if stored is not None:
            packet.payload_info["ip_checksum"] = incremental_checksum_update(
                stored, (old_word,), (ip_tos_word(packet),))
        else:
            packet.payload_info["ip_checksum"] = ip_checksum_of(packet)
    return marked


def update_checksums_after_ack_rewrite(packet: Packet,
                                       old_words: tuple) -> tuple[int, int]:
    """Refresh stored checksums after a feedback short-circuit rewrite.

    ``old_words`` is :func:`tcp_rewrite_words` captured before the rewrite.
    The IP header is untouched by an ACK rewrite, so its checksum is never
    recomputed (only computed once if absent); the TCP checksum is updated
    incrementally per RFC 1624 when known, and summed once otherwise.
    Returns ``(ip_checksum, tcp_checksum)`` like :func:`recompute_checksums`.
    """
    info = packet.payload_info
    ip_sum = info.get("ip_checksum")
    if ip_sum is None:
        ip_sum = ip_checksum_of(packet)
        info["ip_checksum"] = ip_sum
    tcp_sum = info.get("tcp_checksum")
    if tcp_sum is not None:
        tcp_sum = incremental_checksum_update(tcp_sum, old_words,
                                              tcp_rewrite_words(packet))
    else:
        tcp_sum = tcp_checksum_of(packet)
    info["tcp_checksum"] = tcp_sum
    return ip_sum, tcp_sum


__all__ = [
    "internet_checksum",
    "incremental_checksum_update",
    "checksums_equal",
    "verify_checksum",
    "serialize_ip_header",
    "serialize_tcp_header",
    "ip_checksum_of",
    "ip_tos_word",
    "tcp_checksum_of",
    "tcp_rewrite_words",
    "recompute_checksums",
    "checksums_valid",
    "mark_ce_with_checksum",
    "update_checksums_after_ack_rewrite",
    "ECN",
]
