"""Internet checksum (RFC 1071) and lightweight header serialisation.

The real L4Span prototype must recompute the IP checksum after rewriting the
ECN field and the TCP checksum after rewriting ACK feedback (paper §5).  The
simulation does not need checksums for correctness, but we model the same
operations so the processing-cost benchmark (Fig. 21 / Table 1) exercises a
comparable amount of per-packet work, and so tests can verify that marking a
packet keeps its headers internally consistent.
"""

from __future__ import annotations

import struct

from repro.net.ecn import ECN
from repro.net.packet import Packet


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement checksum of ``data``."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes, checksum: int) -> bool:
    """True when ``checksum`` is the valid internet checksum of ``data``."""
    return internet_checksum(data) == checksum


def serialize_ip_header(packet: Packet) -> bytes:
    """Produce a 20-byte IPv4-style header for checksum purposes.

    The encoding is simplified (addresses are hashed into 32 bits) but is
    deterministic and sensitive to every field a marker may rewrite, which is
    what the tests and the processing-cost model need.
    """
    tos = int(packet.ecn) & 0x03
    total_length = packet.size & 0xFFFF
    proto = 6 if packet.protocol == "tcp" else 17
    src = hash(packet.five_tuple.src_ip) & 0xFFFFFFFF
    dst = hash(packet.five_tuple.dst_ip) & 0xFFFFFFFF
    header = struct.pack("!BBHHHBBH", 0x45, tos, total_length,
                         packet.packet_id & 0xFFFF, 0, 64, proto, 0)
    header += struct.pack("!II", src, dst)
    return header


def serialize_tcp_header(packet: Packet) -> bytes:
    """Produce a 20-byte TCP-style header covering the feedback fields."""
    flags = 0x10  # ACK
    if packet.ece:
        flags |= 0x40
    if packet.cwr:
        flags |= 0x80
    src_port = packet.five_tuple.src_port & 0xFFFF
    dst_port = packet.five_tuple.dst_port & 0xFFFF
    header = struct.pack("!HHIIBBHHH", src_port, dst_port,
                         packet.seq & 0xFFFFFFFF, packet.ack_seq & 0xFFFFFFFF,
                         0x50, flags, 0xFFFF, 0, 0)
    if packet.accecn is not None:
        header += struct.pack("!IIII", packet.accecn.ce_packets & 0xFFFFFFFF,
                              packet.accecn.ce_bytes & 0xFFFFFFFF,
                              packet.accecn.ect1_bytes & 0xFFFFFFFF,
                              packet.accecn.ect0_bytes & 0xFFFFFFFF)
    return header


def ip_checksum_of(packet: Packet) -> int:
    """Checksum of the (simplified) IP header of ``packet``."""
    return internet_checksum(serialize_ip_header(packet))


def tcp_checksum_of(packet: Packet) -> int:
    """Checksum of the (simplified) TCP header of ``packet``."""
    return internet_checksum(serialize_tcp_header(packet))


def recompute_checksums(packet: Packet) -> tuple[int, int]:
    """Recompute both checksums, mirroring what L4Span does after rewriting.

    Returns ``(ip_checksum, tcp_checksum)`` and stores them in
    ``packet.payload_info`` so later verification can detect a stale value.
    """
    ip_sum = ip_checksum_of(packet)
    tcp_sum = tcp_checksum_of(packet) if packet.protocol == "tcp" else 0
    packet.payload_info["ip_checksum"] = ip_sum
    packet.payload_info["tcp_checksum"] = tcp_sum
    return ip_sum, tcp_sum


def checksums_valid(packet: Packet) -> bool:
    """True when the stored checksums match the current header contents."""
    if "ip_checksum" not in packet.payload_info:
        return False
    if packet.payload_info["ip_checksum"] != ip_checksum_of(packet):
        return False
    if packet.protocol == "tcp":
        return packet.payload_info.get("tcp_checksum") == tcp_checksum_of(packet)
    return True


def mark_ce_with_checksum(packet: Packet, by: str) -> bool:
    """Mark CE and refresh the IP checksum, as the prototype's datapath does."""
    marked = packet.mark_ce(by)
    if marked:
        packet.payload_info["ip_checksum"] = ip_checksum_of(packet)
    return marked


__all__ = [
    "internet_checksum",
    "verify_checksum",
    "serialize_ip_header",
    "serialize_tcp_header",
    "ip_checksum_of",
    "tcp_checksum_of",
    "recompute_checksums",
    "checksums_valid",
    "mark_ce_with_checksum",
    "ECN",
]
