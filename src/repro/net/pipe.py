"""Fixed-delay pass-through elements.

The wide-area path between the content server and the 5G core is modelled as
a :class:`DelayPipe` whose one-way delay is half the uncongested ping time
reported in the paper (38 ms or 106 ms RTT to the Azure instances).
"""

from __future__ import annotations

from typing import Optional

from repro.net.base import PacketSink
from repro.net.packet import Packet
from repro.sim.engine import Simulator


class DelayPipe:
    """Deliver each packet to ``sink`` after a constant delay.

    The pipe has infinite capacity: it models propagation, not queueing.
    """

    def __init__(self, sim: Simulator, delay: float,
                 sink: Optional[PacketSink] = None,
                 name: str = "pipe") -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self._sim = sim
        self.delay = delay
        self.sink = sink
        self.name = name
        self.forwarded_packets = 0
        self.forwarded_bytes = 0

    def receive(self, packet: Packet) -> None:
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size
        if self.delay == 0:
            self._deliver(packet)
        else:
            self._sim.schedule(self.delay, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        if self.sink is not None:
            self.sink.receive(packet)


class VariableDelayPipe(DelayPipe):
    """A delay pipe whose latency can be changed while the simulation runs.

    Packets in flight keep the delay that was current when they entered, so
    reordering cannot be introduced by lowering the delay mid-run unless the
    caller wants exactly that behaviour (``allow_reorder=True``).
    """

    def __init__(self, sim: Simulator, delay: float,
                 sink: Optional[PacketSink] = None,
                 name: str = "vpipe", allow_reorder: bool = False) -> None:
        super().__init__(sim, delay, sink, name)
        self._allow_reorder = allow_reorder
        self._last_delivery = 0.0

    def receive(self, packet: Packet) -> None:
        self.forwarded_packets += 1
        self.forwarded_bytes += packet.size
        delivery = self._sim.now + self.delay
        if not self._allow_reorder:
            delivery = max(delivery, self._last_delivery)
        self._last_delivery = delivery
        self._sim.schedule_at(delivery, self._deliver, packet)
