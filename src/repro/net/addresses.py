"""Flow identification: the classic five-tuple.

L4Span keeps a mapping from the downlink five-tuple to the (UE, DRB) pair so
that an uplink ACK can be reverse-mapped to the DRB whose marking state it
should carry (paper §4.1, Fig. 22/23 pseudocode).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FiveTuple:
    """Source/destination addresses and ports plus the transport protocol.

    Instances are hashable so they can key the five-tuple -> DRB map.
    """

    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    protocol: str = "tcp"

    def reversed(self) -> "FiveTuple":
        """The five-tuple of traffic flowing in the opposite direction."""
        return FiveTuple(src_ip=self.dst_ip, src_port=self.dst_port,
                         dst_ip=self.src_ip, dst_port=self.src_port,
                         protocol=self.protocol)

    def __str__(self) -> str:
        return (f"{self.protocol}:{self.src_ip}:{self.src_port}->"
                f"{self.dst_ip}:{self.dst_port}")


def make_flow_tuple(flow_id: int, protocol: str = "tcp",
                    server_ip: str = "10.0.0.1",
                    ue_subnet: str = "10.45.0") -> FiveTuple:
    """Build a deterministic downlink five-tuple for a synthetic flow.

    The server always uses port 443; each flow gets its own UE address and
    client port derived from ``flow_id`` so tuples never collide.
    """
    return FiveTuple(src_ip=server_ip, src_port=443,
                     dst_ip=f"{ue_subnet}.{(flow_id % 250) + 2}",
                     dst_port=50_000 + flow_id, protocol=protocol)
