"""Packet model and wired network elements (links, queues, delay pipes)."""

from repro.net.addresses import FiveTuple
from repro.net.ecn import ECN, FlowClass, classify_ecn
from repro.net.packet import AccEcnCounters, Packet
from repro.net.link import Link
from repro.net.pipe import DelayPipe
from repro.net.queueing import DropTailQueue
from repro.net.router import BottleneckRouter

__all__ = [
    "FiveTuple",
    "ECN",
    "FlowClass",
    "classify_ecn",
    "AccEcnCounters",
    "Packet",
    "Link",
    "DelayPipe",
    "DropTailQueue",
    "BottleneckRouter",
]
