"""A bottleneck router: an AQM-managed link plus simple next-hop forwarding.

The wired topology of the motivation experiment (server -> L4S router ->
client) is a :class:`BottleneckRouter` with a DualPi2 AQM; the 5G topologies
use it (without an AQM) to model wired middleboxes whose capacity can be
throttled to move the bottleneck out of the RAN and back (Fig. 2b/2c).
"""

from __future__ import annotations

from typing import Optional

from repro.net.base import PacketSink
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.engine import Simulator


class BottleneckRouter:
    """One input, one output link, optional AQM.

    The router itself adds no processing delay; all queueing happens in the
    output :class:`~repro.net.link.Link`.
    """

    def __init__(self, sim: Simulator, rate: float, delay: float = 0.0,
                 sink: Optional[PacketSink] = None, aqm=None,
                 queue_bytes: Optional[int] = None,
                 queue_packets: Optional[int] = None,
                 name: str = "router") -> None:
        self._sim = sim
        self.name = name
        self.link = Link(sim, rate=rate, delay=delay, sink=sink,
                         queue_bytes=queue_bytes, queue_packets=queue_packets,
                         aqm=aqm, name=f"{name}-out")

    @property
    def sink(self) -> Optional[PacketSink]:
        """Downstream component fed by the output link."""
        return self.link.sink

    @sink.setter
    def sink(self, value: Optional[PacketSink]) -> None:
        self.link.sink = value

    @property
    def aqm(self):
        """The active-queue-management object attached to the output link."""
        return self.link.aqm

    def receive(self, packet: Packet) -> None:
        packet.stamp("router_ingress", self._sim.now)
        self.link.receive(packet)

    def set_rate(self, rate: float) -> None:
        """Throttle or restore the output rate (bytes/s)."""
        self.link.set_rate(rate)

    @property
    def queued_bytes(self) -> int:
        """Bytes currently buffered at the bottleneck."""
        return self.link.queued_bytes
