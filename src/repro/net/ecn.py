"""ECN codepoints and flow classification.

The two-bit ECN field in the IP header distinguishes (RFC 3168, RFC 9331):

* ``NOT_ECT`` (00) -- sender does not understand ECN.
* ``ECT1``   (01) -- ECN-capable, L4S identifier (scalable congestion control).
* ``ECT0``   (10) -- ECN-capable, classic.
* ``CE``     (11) -- congestion experienced, set by a marking middlebox.

L4Span classifies each downlink packet into the L4S or classic service by this
field (paper §4.1: "01 for L4S ECN flows, 10 for classic ECN flows").
"""

from __future__ import annotations

import enum


class ECN(enum.IntEnum):
    """The ECN codepoint carried in the IP header."""

    NOT_ECT = 0b00
    ECT1 = 0b01
    ECT0 = 0b10
    CE = 0b11


class FlowClass(enum.Enum):
    """Service class L4Span assigns to a flow from its ECN codepoint."""

    L4S = "l4s"
    CLASSIC = "classic"
    NON_ECN = "non_ecn"


def classify_ecn(codepoint: ECN) -> FlowClass:
    """Map an ECN codepoint to the service class used for marking decisions.

    A ``CE``-marked arrival is ambiguous (an upstream router already marked
    it); we treat it as L4S because only scalable flows are expected to see
    frequent CE, matching DualPi2's classifier which keys on ECT(1) or CE.
    """
    if codepoint == ECN.ECT1 or codepoint == ECN.CE:
        return FlowClass.L4S
    if codepoint == ECN.ECT0:
        return FlowClass.CLASSIC
    return FlowClass.NON_ECN


def is_ecn_capable(codepoint: ECN) -> bool:
    """True when the packet may be CE-marked instead of dropped."""
    return codepoint != ECN.NOT_ECT
