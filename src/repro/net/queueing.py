"""Drop-tail FIFO queues with byte and packet limits.

These are used for the wired bottleneck's buffer and as the building block
inside the RLC entity's transmission queue.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.net.packet import Packet


class DropTailQueue:
    """A FIFO of packets bounded in packets and/or bytes.

    Args:
        max_packets: drop arrivals once this many packets are queued
            (``None`` for unlimited).
        max_bytes: drop arrivals once this many bytes are queued
            (``None`` for unlimited).
    """

    def __init__(self, max_packets: Optional[int] = None,
                 max_bytes: Optional[int] = None) -> None:
        self._queue: deque[Packet] = deque()
        self.max_packets = max_packets
        self.max_bytes = max_bytes
        self.bytes = 0
        self.dropped_packets = 0
        self.dropped_bytes = 0
        self.enqueued_packets = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._queue)

    @property
    def empty(self) -> bool:
        """True when no packet is queued."""
        return not self._queue

    def would_overflow(self, packet: Packet) -> bool:
        """True when enqueueing ``packet`` would exceed a limit."""
        if self.max_packets is not None and len(self._queue) >= self.max_packets:
            return True
        if self.max_bytes is not None and self.bytes + packet.size > self.max_bytes:
            return True
        return False

    def enqueue(self, packet: Packet) -> bool:
        """Append ``packet``; returns False (and counts a drop) on overflow."""
        if self.would_overflow(packet):
            self.dropped_packets += 1
            self.dropped_bytes += packet.size
            return False
        self._queue.append(packet)
        self.bytes += packet.size
        self.enqueued_packets += 1
        return True

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the head packet, or None when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self.bytes -= packet.size
        return packet

    def peek(self) -> Optional[Packet]:
        """Return the head packet without removing it."""
        if not self._queue:
            return None
        return self._queue[0]

    def clear(self) -> None:
        """Discard every queued packet."""
        self._queue.clear()
        self.bytes = 0
