"""A serialising link: finite rate plus propagation delay.

Used for the wired bottleneck in the motivation experiment (Fig. 2a) and for
any fixed-rate middlebox placed between the content server and the 5G core.
"""

from __future__ import annotations

from typing import Optional

from repro.net.base import PacketSink
from repro.net.packet import Packet
from repro.net.queueing import DropTailQueue
from repro.sim.engine import Simulator
from repro.units import transmission_time


class Link:
    """A point-to-point link with an output queue.

    Packets received while the link is busy wait in an internal drop-tail
    queue.  An optional AQM object (anything with ``on_enqueue(packet, queue)``
    and ``on_dequeue(packet, queue, now)`` hooks) can mark or drop packets;
    see :mod:`repro.aqm`.

    Args:
        sim: simulator.
        rate: bytes per second; ``float('inf')`` disables serialisation delay.
        delay: propagation delay in seconds.
        sink: downstream component.
        queue_bytes / queue_packets: buffer limits.
        aqm: optional active-queue-management hook object.
    """

    def __init__(self, sim: Simulator, rate: float, delay: float = 0.0,
                 sink: Optional[PacketSink] = None,
                 queue_bytes: Optional[int] = None,
                 queue_packets: Optional[int] = None,
                 aqm=None, name: str = "link") -> None:
        self._sim = sim
        self.rate = rate
        self.delay = delay
        self.sink = sink
        self.aqm = aqm
        self.name = name
        self.queue = DropTailQueue(max_packets=queue_packets,
                                   max_bytes=queue_bytes)
        self._busy = False
        self.transmitted_packets = 0
        self.transmitted_bytes = 0
        self.dropped_by_aqm = 0

    # ------------------------------------------------------------------ #
    def receive(self, packet: Packet) -> None:
        packet.stamp("link_enqueue", self._sim.now)
        if self.aqm is not None:
            verdict = self.aqm.on_enqueue(packet, self.queue, self._sim.now)
            if verdict is False:
                self.dropped_by_aqm += 1
                return
        if not self.queue.enqueue(packet):
            return
        if not self._busy:
            self._transmit_next()

    # ------------------------------------------------------------------ #
    def _transmit_next(self) -> None:
        packet = self.queue.dequeue()
        if packet is None:
            self._busy = False
            return
        if self.aqm is not None:
            verdict = self.aqm.on_dequeue(packet, self.queue, self._sim.now)
            if verdict is False:
                self.dropped_by_aqm += 1
                self._sim.call_soon(self._transmit_next)
                return
        self._busy = True
        serialization = transmission_time(packet.size, self.rate)
        if serialization == float("inf"):
            # Link with zero rate: hold the packet until the rate changes.
            self.queue._queue.appendleft(packet)  # noqa: SLF001 - re-queue head
            self.queue.bytes += packet.size
            self._busy = False
            return
        self._sim.schedule(serialization, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        self.transmitted_packets += 1
        self.transmitted_bytes += packet.size
        if self.sink is not None:
            if self.delay > 0:
                self._sim.schedule(self.delay, self.sink.receive, packet)
            else:
                self.sink.receive(packet)
        self._transmit_next()

    # ------------------------------------------------------------------ #
    @property
    def queued_bytes(self) -> int:
        """Bytes currently waiting in the output buffer."""
        return self.queue.bytes

    def set_rate(self, rate: float) -> None:
        """Change the link rate; takes effect for the next serialisation."""
        was_stalled = self.rate <= 0 and not self._busy and not self.queue.empty
        self.rate = rate
        if was_stalled and rate > 0:
            self._transmit_next()
