"""The stdlib HTTP layer of the scenario service.

Routes (see ``docs/service.md`` for the full reference):

========================  ====================================================
``GET  /health``          liveness probe: status, schema version, run counts
``GET  /schema``          the result-document JSON Schema (``result_schema``)
``POST /runs``            submit a run request; 202 with the new run id
``GET  /runs``            query the archive (``?preset=&status=&label=``)
``GET  /runs/{id}``       status envelope, embedding the document when done
``GET  /runs/{id}/document``  the canonical result document, exact bytes
``GET  /runs/{id}/events``    live progress snapshots as Server-Sent Events
========================  ====================================================

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
connection, which is what lets an ``/events`` stream stay open while other
clients poll.  Run execution itself happens on the
:class:`~repro.service.jobs.JobManager` pool, never on request threads.
"""

from __future__ import annotations

import json
from http import HTTPStatus
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

from repro.experiments.options import RuntimeOptions
from repro.experiments.results import SCHEMA_VERSION, result_schema
from repro.registry import UnknownComponentError
from repro.service.archive import RunArchive
from repro.service.jobs import JobManager

#: Default bind address and port for ``python -m repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8757

#: Longest one SSE poll blocks before re-checking run liveness, seconds.
_STREAM_POLL_S = 0.5


class _Handler(BaseHTTPRequestHandler):
    """Request handler; the owning :class:`ScenarioService` is on the server."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-scenario-service"

    # ------------------------------------------------------------------ #
    # plumbing
    @property
    def service(self) -> "ScenarioService":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.service.verbose:
            super().log_message(format, *args)

    def _send_json(self, payload, status: HTTPStatus = HTTPStatus.OK) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self._send_body(body, "application/json", status)

    def _send_text(self, text: str, content_type: str,
                   status: HTTPStatus = HTTPStatus.OK) -> None:
        self._send_body(text.encode("utf-8"), content_type, status)

    def _send_body(self, body: bytes, content_type: str,
                   status: HTTPStatus) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: HTTPStatus, message: str) -> None:
        self._send_json({"error": message, "status": int(status)}, status)

    # ------------------------------------------------------------------ #
    # routing
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        try:
            if parts == ["health"]:
                self._get_health()
            elif parts == ["schema"]:
                self._send_json(result_schema())
            elif parts == ["runs"]:
                self._get_runs(parse_qs(url.query))
            elif len(parts) == 2 and parts[0] == "runs":
                self._get_run(parts[1])
            elif (len(parts) == 3 and parts[0] == "runs"
                    and parts[2] == "document"):
                self._get_run_document(parts[1])
            elif (len(parts) == 3 and parts[0] == "runs"
                    and parts[2] == "events"):
                self._get_run_events(parts[1])
            else:
                self._send_error_json(HTTPStatus.NOT_FOUND,
                                      f"no such route: GET {url.path}")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        if parts != ["runs"]:
            self._send_error_json(HTTPStatus.NOT_FOUND,
                                  f"no such route: POST {url.path}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._send_error_json(HTTPStatus.BAD_REQUEST,
                                      f"request body is not JSON: {exc}")
                return
            try:
                state = self.service.jobs.submit(payload)
            except (UnknownComponentError, ValueError) as exc:
                self._send_error_json(HTTPStatus.BAD_REQUEST, str(exc))
                return
            self._send_json(
                {"run_id": state.run_id, "status": state.status,
                 "url": f"/runs/{state.run_id}"},
                HTTPStatus.ACCEPTED)
        except (BrokenPipeError, ConnectionResetError):
            pass

    # ------------------------------------------------------------------ #
    # endpoints
    def _get_health(self) -> None:
        states = self.service.jobs.states()
        counts: dict[str, int] = {}
        for state in states:
            counts[state.status] = counts.get(state.status, 0) + 1
        self._send_json({"status": "ok", "schema_version": SCHEMA_VERSION,
                         "slots": self.service.jobs.slots, "runs": counts})

    def _get_runs(self, query: dict) -> None:
        def param(name: str) -> Optional[str]:
            values = query.get(name)
            return values[-1] if values else None

        unknown = sorted(set(query) - {"preset", "status", "label"})
        if unknown:
            self._send_error_json(
                HTTPStatus.BAD_REQUEST,
                f"unknown query parameter(s) {unknown}; "
                "supported: preset, status, label")
            return
        entries = self.service.archive.query(
            preset=param("preset"), status=param("status"),
            label=param("label"))
        self._send_json({"runs": entries, "count": len(entries)})

    def _run_or_404(self, run_id: str):
        state = self.service.jobs.get(run_id)
        if state is None:
            self._send_error_json(
                HTTPStatus.NOT_FOUND,
                f"no run {run_id!r} in this service process; the archive "
                "index (GET /runs) spans past service runs too")
        return state

    def _get_run(self, run_id: str) -> None:
        state = self._run_or_404(run_id)
        if state is None:
            return
        envelope = state.to_entry()
        envelope["snapshots"] = len(state.snapshots)
        if state.document is not None:
            envelope["document"] = json.loads(state.document)
        self._send_json(envelope)

    def _get_run_document(self, run_id: str) -> None:
        state = self.service.jobs.get(run_id)
        document = state.document if state is not None else None
        if document is None:
            # Fall back to the archive so documents survive a restart.
            document = self.service.archive.read_document(run_id)
        if document is None:
            status = "no finished document for run"
            if state is not None:
                status = f"run is {state.status}; no document for run"
            self._send_error_json(HTTPStatus.NOT_FOUND,
                                  f"{status} {run_id!r}")
            return
        # Exact canonical bytes: identical to the archive file and to
        # ``repro scenario --json`` for the same spec and seed.
        self._send_text(document, "application/json")

    def _get_run_events(self, run_id: str) -> None:
        state = self._run_or_404(run_id)
        if state is None:
            return
        self.send_response(HTTPStatus.OK)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE is an unbounded stream; close delimits it under HTTP/1.1.
        self.send_header("Connection", "close")
        self.end_headers()
        index = 0
        while True:
            if state.wait_snapshot(index, timeout=_STREAM_POLL_S):
                snapshot = state.snapshots[index]
                data = json.dumps(snapshot, sort_keys=True)
                self.wfile.write(f"id: {index}\nevent: {snapshot.get('kind', 'snapshot')}\n"
                                 f"data: {data}\n\n".encode("utf-8"))
                self.wfile.flush()
                index += 1
                continue
            if state.status in ("done", "failed"):
                final = {"run_id": run_id, "status": state.status,
                         "snapshots": len(state.snapshots)}
                if state.error is not None:
                    final["error"] = state.error
                self.wfile.write(
                    ("event: end\ndata: "
                     f"{json.dumps(final, sort_keys=True)}\n\n").encode())
                self.wfile.flush()
                self.close_connection = True
                return


class ScenarioService:
    """The long-lived service: archive + job manager + threading server.

    Usable embedded (tests start it on a daemon thread via
    :meth:`start_background`) or blocking (:meth:`serve_forever`, which is
    what ``python -m repro serve`` calls).
    """

    def __init__(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
                 runs_dir: Optional[str] = None,
                 defaults: Optional[RuntimeOptions] = None,
                 max_runs: int = 1, verbose: bool = False,
                 progress_interval_s: float = 0.25) -> None:
        self.archive = RunArchive(runs_dir)
        self.jobs = JobManager(self.archive, defaults=defaults,
                               max_runs=max_runs,
                               progress_interval_s=progress_interval_s)
        self.verbose = verbose
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = self  # type: ignore[attr-defined]
        self._thread = None
        self._serving = False

    @property
    def address(self) -> tuple[str, int]:
        """The actually bound (host, port) — port 0 resolves here."""
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------ #
    def serve_forever(self) -> None:
        self.jobs.start()
        self._serving = True
        try:
            self.httpd.serve_forever(poll_interval=0.2)
        finally:
            self.close()

    def start_background(self) -> "ScenarioService":
        import threading

        self.jobs.start()
        self._serving = True
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        kwargs={"poll_interval": 0.1},
                                        name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        if self._serving:
            # shutdown() blocks on serve_forever's exit handshake, so it
            # must only run once a serve loop has actually started.
            self._serving = False
            self.httpd.shutdown()
        self.httpd.server_close()
        self.jobs.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def serve(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT,
          runs_dir: Optional[str] = None,
          defaults: Optional[RuntimeOptions] = None, max_runs: int = 1,
          verbose: bool = False,
          announce=None) -> None:
    """Boot the scenario service and block until interrupted."""
    service = ScenarioService(host=host, port=port, runs_dir=runs_dir,
                              defaults=defaults, max_runs=max_runs,
                              verbose=verbose)
    if announce is not None:
        announce(service)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        service.close()
