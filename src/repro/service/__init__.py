"""The scenario service: a long-lived HTTP front end over the runtime.

``python -m repro serve`` boots :class:`ScenarioService`; clients submit
:class:`~repro.experiments.spec.ScenarioSpec` documents (or preset names)
over ``POST /runs``, poll ``GET /runs/{id}``, stream live progress from
``GET /runs/{id}/events`` and query past runs from the persistent archive
behind ``GET /runs``.  See ``docs/service.md`` for the API reference.

The package splits along responsibility lines:

* :mod:`repro.service.archive` — the on-disk run archive (JSON-lines
  index plus one canonical result document per run).
* :mod:`repro.service.jobs` — request parsing, the run queue and its
  worker pool under the core-budget arbiter, live progress fan-out.
* :mod:`repro.service.server` — the stdlib HTTP layer mapping routes
  onto the two modules above.
"""

from repro.service.archive import RunArchive, runs_dir
from repro.service.jobs import JobManager, spec_from_request
from repro.service.server import ScenarioService, serve

__all__ = [
    "JobManager",
    "RunArchive",
    "ScenarioService",
    "runs_dir",
    "serve",
    "spec_from_request",
]
