"""The persistent run archive behind the scenario service.

Layout (under ``.repro_runs/`` by default, or ``$REPRO_RUNS_DIR``)::

    .repro_runs/
      index.jsonl        # one JSON line per status transition, append-only
      <run_id>.json      # the canonical result document, exact bytes

The index is *append-only*: every status transition (queued, running,
done, failed) appends one line, and readers collapse lines by ``run_id``
(later lines win field-by-field).  Appends are atomic at the line level on
POSIX, so a crash mid-run leaves at worst a truncated final line, which
readers skip — never a corrupted archive.  Environment-specific metadata
(submission timestamps, the error text of a failed run) lives only here;
the per-run ``<run_id>.json`` holds exactly the canonical document bytes
from :func:`repro.experiments.results.dump_document`, which is what makes
``repro scenario --json``, the archive and ``GET /runs/{id}/document``
byte-identical for the same spec and seed.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Optional

#: Environment variable overriding where the run archive lives.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: Default archive directory, relative to the working directory.
DEFAULT_RUNS_DIR = ".repro_runs"

#: Name of the JSON-lines status index inside the archive directory.
INDEX_NAME = "index.jsonl"


def runs_dir(root: Optional[str] = None) -> Path:
    """Resolve the archive directory: explicit arg, env var, or default."""
    return Path(root or os.environ.get(RUNS_DIR_ENV) or DEFAULT_RUNS_DIR)


class RunArchive:
    """Append-only JSON-lines index plus one document file per run.

    Safe for concurrent use from the service's worker threads (a lock
    serializes appends); concurrent *processes* are safe for readers and
    for writers of distinct runs, which covers the service's single-writer
    deployment model.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = runs_dir(root)

    # ------------------------------------------------------------------ #
    # writing
    _append_lock = threading.Lock()

    @property
    def index_path(self) -> Path:
        return self.root / INDEX_NAME

    def document_path(self, run_id: str) -> Path:
        return self.root / f"{run_id}.json"

    def record(self, entry: dict) -> None:
        """Append one status line for ``entry['run_id']`` to the index."""
        if "run_id" not in entry:
            raise ValueError("archive entries need a 'run_id'")
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        self.root.mkdir(parents=True, exist_ok=True)
        with self._append_lock:
            with open(self.index_path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")

    def write_document(self, run_id: str, text: str) -> Path:
        """Store a run's canonical document, byte for byte."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.document_path(run_id)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
        return path

    # ------------------------------------------------------------------ #
    # reading
    def read_document(self, run_id: str) -> Optional[str]:
        """The stored canonical document text, or None if absent."""
        path = self.document_path(run_id)
        try:
            return path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None

    def entries(self) -> list[dict]:
        """Collapsed index entries, in first-seen (submission) order.

        Later lines for the same ``run_id`` update the collapsed entry
        field-by-field; malformed (e.g. crash-truncated) lines are skipped.
        """
        collapsed: dict[str, dict] = {}
        try:
            lines = self.index_path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            return []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            run_id = entry.get("run_id")
            if not isinstance(run_id, str):
                continue
            collapsed.setdefault(run_id, {}).update(entry)
        return list(collapsed.values())

    def get(self, run_id: str) -> Optional[dict]:
        """The collapsed entry for one run, or None."""
        for entry in self.entries():
            if entry.get("run_id") == run_id:
                return entry
        return None

    def query(self, preset: Optional[str] = None,
              status: Optional[str] = None,
              label: Optional[str] = None) -> list[dict]:
        """Collapsed entries filtered by preset / status / label."""
        matches = []
        for entry in self.entries():
            if preset is not None and entry.get("preset") != preset:
                continue
            if status is not None and entry.get("status") != status:
                continue
            if label is not None and entry.get("label") != label:
                continue
            matches.append(entry)
        return matches
