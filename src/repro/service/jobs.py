"""Run submission, queueing and live progress for the scenario service.

:func:`spec_from_request` turns a ``POST /runs`` body into a validated
:class:`~repro.experiments.spec.ScenarioSpec` — the same
:func:`~repro.experiments.options.apply_runtime_options` path the CLI
flags take, so a served spec accepts exactly the runtime overrides
``repro scenario`` does.  :class:`JobManager` owns the worker pool that
executes accepted runs: its slot count is clamped by the same
``REPRO_CORE_BUDGET`` arbiter that bounds sweep workers and scenario
shards, and while the pool is open it exports the active-worker count the
shard planner divides the budget by, so concurrently served sharded runs
cannot oversubscribe the host any more than a sweep can.

Every state transition is mirrored into the :class:`~repro.service.
archive.RunArchive`, so ``GET /runs`` queries see queued and running
runs, not just finished ones, and the archive remains authoritative
across service restarts.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro.experiments.options import RuntimeOptions, apply_runtime_options
from repro.experiments.presets import make_preset, preset_names
from repro.experiments.results import dump_document, result_document
from repro.experiments.runner import ACTIVE_WORKERS_ENV, core_budget
from repro.experiments.spec import ScenarioSpec

#: Run lifecycle states, in order.
RUN_STATUSES = ("queued", "running", "done", "failed")

#: Request body keys :func:`spec_from_request` understands.
REQUEST_KEYS = ("preset", "spec", "overrides")


def spec_from_request(payload, defaults: Optional[RuntimeOptions] = None):
    """Parse a ``POST /runs`` body into ``(spec, meta)``.

    The body is a JSON object holding either ``{"preset": name}`` or
    ``{"spec": {...}}`` (a full ScenarioSpec dict), plus an optional
    ``{"overrides": {...}}`` object carrying the shared runtime options
    (``engine`` / ``shards`` / ``workers`` / ``shard_windows``).  Request
    overrides win over the service's own defaults; both are applied by the
    one :func:`~repro.experiments.options.apply_runtime_options`
    implementation the CLI uses.

    Raises :class:`ValueError` (or a registry
    :class:`~repro.registry.UnknownComponentError`, which is one) with an
    actionable message for every malformed body — the HTTP layer maps
    these to 400 responses.
    """
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object, got "
                         f"{type(payload).__name__}")
    unknown = sorted(set(payload) - set(REQUEST_KEYS))
    if unknown:
        raise ValueError(f"unknown request key(s) {unknown}; a run request "
                         f"holds {list(REQUEST_KEYS)}")
    preset = payload.get("preset")
    spec_data = payload.get("spec")
    if (preset is None) == (spec_data is None):
        raise ValueError(
            "a run request needs exactly one of 'preset' or 'spec'")
    if preset is not None:
        if not isinstance(preset, str):
            raise ValueError("'preset' must be a string")
        if preset not in preset_names():
            raise ValueError(f"unknown preset {preset!r}; available: "
                             f"{preset_names()}")
        spec = make_preset(preset)
    else:
        if not isinstance(spec_data, dict):
            raise ValueError("'spec' must be a JSON object (a ScenarioSpec "
                             "document, e.g. from 'repro scenario "
                             "--dump-spec')")
        try:
            spec = ScenarioSpec.from_dict(spec_data)
        except (TypeError, KeyError) as exc:
            raise ValueError(f"malformed scenario spec: {exc}") from exc
    options = RuntimeOptions.from_mapping(payload.get("overrides") or {})
    if defaults is not None:
        options = options.merged_over(defaults)
    spec = apply_runtime_options(spec, options).validate()
    meta = {"preset": preset, "label": spec.label(), "seed": spec.seed,
            "duration_s": spec.duration_s}
    return spec, meta


class RunState:
    """One submitted run: status, live snapshots and the final document.

    The condition variable lets SSE streams block for the next snapshot
    instead of polling; every mutation happens under the lock and
    notifies.
    """

    def __init__(self, run_id: str, spec: ScenarioSpec, meta: dict) -> None:
        self.run_id = run_id
        self.spec = spec
        self.meta = meta
        self.status = "queued"
        self.error: Optional[str] = None
        self.document: Optional[str] = None
        self.snapshots: list[dict] = []
        self.condition = threading.Condition()

    def to_entry(self) -> dict:
        """The run's archive/status view (no document payload)."""
        entry = {"run_id": self.run_id, "status": self.status,
                 "snapshots": len(self.snapshots)}
        entry.update(self.meta)
        if self.error is not None:
            entry["error"] = self.error
        return entry

    # ------------------------------------------------------------------ #
    def push_snapshot(self, snapshot: dict) -> None:
        with self.condition:
            self.snapshots.append(dict(snapshot))
            self.condition.notify_all()

    def finish(self, status: str, document: Optional[str] = None,
               error: Optional[str] = None) -> None:
        with self.condition:
            self.status = status
            self.document = document
            self.error = error
            self.condition.notify_all()

    def wait_snapshot(self, index: int, timeout: float = 1.0) -> bool:
        """Block until snapshot ``index`` exists or the run settles."""
        with self.condition:
            if len(self.snapshots) > index or self.status in ("done",
                                                              "failed"):
                return len(self.snapshots) > index
            self.condition.wait(timeout)
            return len(self.snapshots) > index


class JobManager:
    """The service's run queue: bounded workers under the core budget.

    Args:
        archive: the persistent :class:`~repro.service.archive.RunArchive`
            every transition is mirrored into.
        defaults: service-level runtime options (from the ``serve`` CLI
            flags) applied under any request-level overrides.
        max_runs: cap on concurrently executing runs; clamped to the
            host's core budget.  Defaults to 1 — scenario runs are
            CPU-bound, so serial is the safe default and ``--max-runs``
            is the explicit opt-in to concurrency.
        progress_interval_s: simulated-time spacing of live snapshots.
    """

    def __init__(self, archive, defaults: Optional[RuntimeOptions] = None,
                 max_runs: int = 1,
                 progress_interval_s: float = 0.25) -> None:
        self.archive = archive
        self.defaults = defaults or RuntimeOptions()
        self.slots = max(1, min(int(max_runs), core_budget()))
        self.progress_interval_s = progress_interval_s
        self._runs: dict[str, RunState] = {}
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._saved_active: Optional[str] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    def start(self) -> None:
        if self._pool is not None:
            return
        self._pool = ThreadPoolExecutor(
            max_workers=self.slots, thread_name_prefix="repro-run")
        # Sharded runs divide the core budget by the active worker count,
        # exactly as nested shards under a parallel sweep do.
        self._saved_active = os.environ.get(ACTIVE_WORKERS_ENV)
        if self.slots > 1:
            os.environ[ACTIVE_WORKERS_ENV] = str(self.slots)

    def close(self, wait: bool = True) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)
            if self.slots > 1:
                if self._saved_active is None:
                    os.environ.pop(ACTIVE_WORKERS_ENV, None)
                else:
                    os.environ[ACTIVE_WORKERS_ENV] = self._saved_active

    # ------------------------------------------------------------------ #
    # submission and lookup
    def submit(self, payload: dict) -> RunState:
        """Validate a request body, enqueue the run, return its state."""
        if self._pool is None:
            self.start()
        spec, meta = spec_from_request(payload, self.defaults)
        with self._lock:
            run_id = f"run-{next(self._counter):04d}-{uuid.uuid4().hex[:8]}"
            state = RunState(run_id, spec, meta)
            self._runs[run_id] = state
        self._record(state, submitted_at=time.time())
        self._pool.submit(self._execute, state)
        return state

    def get(self, run_id: str) -> Optional[RunState]:
        with self._lock:
            return self._runs.get(run_id)

    def states(self) -> list[RunState]:
        with self._lock:
            return list(self._runs.values())

    # ------------------------------------------------------------------ #
    def _record(self, state: RunState, **extra) -> None:
        entry = state.to_entry()
        entry.update(extra)
        self.archive.record(entry)

    def _execute(self, state: RunState) -> None:
        # Imported here so worker threads never race the module import of
        # the full scenario stack during service start-up.
        from repro.experiments.scenario import run_scenario

        with state.condition:
            state.status = "running"
            state.condition.notify_all()
        self._record(state, started_at=time.time())
        try:
            result = run_scenario(
                state.spec, progress=state.push_snapshot,
                progress_interval_s=self.progress_interval_s)
            document = dump_document(result_document(result))
        except Exception as exc:  # noqa: BLE001 - surfaced via the API
            state.finish("failed", error=f"{type(exc).__name__}: {exc}")
            self._record(state, finished_at=time.time())
            return
        self.archive.write_document(state.run_id, document)
        state.finish("done", document=document)
        self._record(state, finished_at=time.time())
