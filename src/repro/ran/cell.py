"""Cell-level radio configuration and capacity accounting.

The paper's testbed cell is TDD band n78, 3750 MHz centre frequency, 20 MHz
bandwidth with 30 kHz subcarrier spacing, yielding roughly a 40 Mbit/s
downlink capacity.  :class:`CellConfig` captures those numbers and converts a
spectral efficiency (bits per resource element, from the channel model) into
transport-block bytes per slot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import to_mbps


@dataclass
class CellConfig:
    """Static configuration of the simulated cell.

    Attributes:
        bandwidth_mhz: carrier bandwidth.
        subcarrier_spacing_khz: numerology (30 kHz -> 0.5 ms slots).
        num_prb: physical resource blocks available per slot (51 for
            20 MHz / 30 kHz).
        tdd_dl_fraction: fraction of slots (equivalently, of resources)
            usable for downlink data in the TDD pattern.
        overhead: fraction of resource elements consumed by control channels,
            reference signals and other overhead.
        efficiency_backoff: implementation-loss factor accounting for SISO
            operation, link-adaptation margin and scheduler quantisation;
            calibrated so a single good-channel UE sees roughly the paper's
            40 Mbit/s.
        slot_duration: derived slot length in seconds.
    """

    bandwidth_mhz: float = 20.0
    subcarrier_spacing_khz: int = 30
    num_prb: int = 51
    tdd_dl_fraction: float = 0.6
    overhead: float = 0.14
    efficiency_backoff: float = 0.65
    carrier_ghz: float = 3.75

    #: Resource elements per PRB per slot: 12 subcarriers x 14 OFDM symbols.
    RE_PER_PRB_PER_SLOT = 12 * 14

    @property
    def slot_duration(self) -> float:
        """Slot length in seconds (1 ms / 2^mu for numerology mu)."""
        return 0.001 * 15.0 / self.subcarrier_spacing_khz

    def bytes_per_prb(self, efficiency: float) -> float:
        """Usable transport-block bytes one PRB carries in one slot."""
        usable_re = self.RE_PER_PRB_PER_SLOT * (1.0 - self.overhead)
        bits = usable_re * efficiency * self.efficiency_backoff
        return bits * self.tdd_dl_fraction / 8.0

    def slot_capacity_bytes(self, efficiency: float,
                            num_prb: int | None = None) -> int:
        """Transport-block bytes available in one slot at ``efficiency``."""
        prbs = self.num_prb if num_prb is None else num_prb
        return int(prbs * self.bytes_per_prb(efficiency))

    def peak_rate_bytes_per_s(self, efficiency: float = 6.8) -> float:
        """Sustained downlink rate at a given efficiency, bytes per second."""
        return self.slot_capacity_bytes(efficiency) / self.slot_duration

    def peak_rate_mbps(self, efficiency: float = 6.8) -> float:
        """Sustained downlink rate in Mbit/s (defaults to CQI-14 efficiency)."""
        return to_mbps(self.peak_rate_bytes_per_s(efficiency))

    def describe(self) -> str:
        """One-line human-readable summary used in experiment reports."""
        return (f"{self.bandwidth_mhz:.0f} MHz @ {self.subcarrier_spacing_khz} kHz SCS, "
                f"{self.num_prb} PRB, peak ~{self.peak_rate_mbps():.1f} Mbit/s DL")
