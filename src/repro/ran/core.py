"""The 5G core / UPF: routing between the WAN and the RAN.

The core forwards downlink datagrams to the gNB serving their destination UE
and uplink datagrams back onto the wide-area path of their flow.  A small GTP-U
encapsulation/processing latency is modelled; the core performs no queueing of
its own (the paper's bottleneck is always the RAN or an explicit wired
middlebox).

When a scenario is sharded across processes the core additionally acts as the
*shard boundary*: packets whose destination is not registered locally are
handed to :attr:`FiveGCore.remote_sink` (the sharded runtime's outbound
batch buffer) instead of raising, so one core instance per shard collectively
behaves like the single shared core of the unsharded run.
"""

from __future__ import annotations

from typing import Optional

from repro.net.base import PacketSink
from repro.net.packet import Packet
from repro.ran.identifiers import UeId
from repro.sim.engine import Simulator
from repro.units import us

#: GTP-U encapsulation/processing latency of the core, shared with the
#: sharded runtime (the conservative window bound of a shared middlebox's
#: egress→remote-core hop is exactly this constant).
CORE_PROCESSING_DELAY = us(150)


class FiveGCore:
    """UPF-style router between the WAN and one or more gNBs."""

    def __init__(self, sim: Simulator,
                 processing_delay: float = CORE_PROCESSING_DELAY,
                 name: str = "5gc") -> None:
        self._sim = sim
        self.name = name
        self.processing_delay = processing_delay
        self._downlink_routes: dict[str, tuple[object, UeId]] = {}
        self._uplink_routes: dict[int, PacketSink] = {}
        self._default_uplink: Optional[PacketSink] = None
        #: Where packets with no local route go.  ``None`` (the default)
        #: keeps the historical behaviour: unroutable downlink raises,
        #: unroutable uplink is dropped.  The sharded runtime installs its
        #: boundary buffer here so cross-shard traffic is batched instead.
        self.remote_sink: Optional[PacketSink] = None
        self.downlink_packets = 0
        self.uplink_packets = 0
        self.remote_packets = 0

    # ------------------------------------------------------------------ #
    # Routing table management
    # ------------------------------------------------------------------ #
    def register_ue_address(self, ip_address: str, gnb, ue_id: UeId) -> None:
        """Route downlink packets destined to ``ip_address`` to ``gnb``/``ue_id``."""
        self._downlink_routes[ip_address] = (gnb, ue_id)

    def unregister_ue_address(self, ip_address: str) -> None:
        """Drop the downlink route for ``ip_address`` (no-op when absent).

        The sharded runtime's alias routing uses this on shards hosting a
        *losing* UE of a wrapped (>250-UE) address space: the single shared
        core resolves the collision last-registration-wins, so a shard that
        does not host the winning UE must treat the address as remote.
        """
        self._downlink_routes.pop(ip_address, None)

    def register_uplink_route(self, flow_id: int, sink: PacketSink) -> None:
        """Route uplink packets of ``flow_id`` (ACKs) onto their WAN return path."""
        self._uplink_routes[flow_id] = sink

    def set_default_uplink(self, sink: PacketSink) -> None:
        """Fallback WAN sink for uplink packets of unregistered flows."""
        self._default_uplink = sink

    def knows_ue_address(self, ip_address: str) -> bool:
        """True when a downlink route for ``ip_address`` is registered here."""
        return ip_address in self._downlink_routes

    # ------------------------------------------------------------------ #
    # Data plane
    # ------------------------------------------------------------------ #
    def receive(self, packet: Packet) -> None:
        """Downlink entry point (the WAN path's sink)."""
        route = self._downlink_routes.get(packet.five_tuple.dst_ip)
        if route is None:
            if self.remote_sink is not None:
                self.remote_packets += 1
                self.remote_sink.receive(packet)
                return
            raise KeyError(
                f"no UE registered for {packet.five_tuple.dst_ip}")
        gnb, ue_id = route
        self.downlink_packets += 1
        packet.stamp("core_ingress", self._sim.now)
        self._sim.schedule(self.processing_delay, gnb.receive_downlink,
                           packet, ue_id)

    def deliver_downlink(self, packet: Packet) -> None:
        """Hand an already-processed downlink packet to its serving gNB.

        The sharded runtime's shared-middlebox path uses this for packets
        that crossed the shard boundary *after* core ingress: the packet is
        pre-stamped (``core_ingress`` at the middlebox egress time) and the
        boundary delivery already accounts for :attr:`processing_delay`, so
        this routes and forwards immediately instead of re-delaying.
        """
        route = self._downlink_routes.get(packet.five_tuple.dst_ip)
        if route is None:
            raise KeyError(
                f"no UE registered for {packet.five_tuple.dst_ip}")
        gnb, ue_id = route
        self.downlink_packets += 1
        gnb.receive_downlink(packet, ue_id)

    def receive_uplink(self, packet: Packet) -> None:
        """Uplink entry point (the gNB's CU feeds packets here)."""
        self.uplink_packets += 1
        sink = self._uplink_routes.get(packet.flow_id, self._default_uplink)
        if sink is None:
            if self.remote_sink is not None:
                self.remote_packets += 1
                self.remote_sink.receive(packet)
            return
        self._sim.schedule(self.processing_delay, sink.receive, packet)
