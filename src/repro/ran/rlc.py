"""The RLC entity: the queue where 5G downlink latency is born.

One :class:`RlcEntity` exists per (UE, DRB).  Downlink PDCP SDUs wait in its
transmission queue until the MAC scheduler grants the UE transmission
opportunities; the entity then segments SDUs into the granted transport-block
bytes, hands them to the air interface, and -- in acknowledged mode --
retransmits blocks the air interface ultimately fails to deliver.

The entity reports *downlink data delivery status* over F1-U whenever it
transmits an SDU (highest transmitted SN) and, in AM, whenever the UE's RLC
acknowledges delivery (highest delivered SN).  These reports are the only
visibility L4Span has into the queue (paper §4.3.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.packet import Packet
from repro.ran.identifiers import DrbConfig, DrbId, RlcMode, UeId
from repro.ran.phy import AirInterface
from repro.sim.engine import Simulator
from repro.units import ms


@dataclass
class RlcSdu:
    """One PDCP SDU sitting in (or moving through) the RLC."""

    sn: int
    packet: Packet
    size: int
    ingress_time: float
    remaining: int = field(default=0)
    retransmissions: int = 0
    transmitted_time: Optional[float] = None
    delivered_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.remaining == 0:
            self.remaining = self.size


class RlcEntity:
    """Transmission (and, for AM, retransmission) queue of one bearer.

    Args:
        sim: simulator.
        ue_id / config: owning UE and bearer configuration.
        air: the air-interface delay model used for transmitted blocks.
        deliver: callback ``deliver(packet, delivery_time)`` invoked when an
            SDU reaches the UE.
        send_status: callback taking ``(highest_txed_sn, highest_delivered_sn,
            timestamp)`` used to emit F1-U delivery-status reports.
        status_delay: latency between a delivery event at the UE and the RLC
            ACK reaching the DU (models the UE status-reporting cadence).
    """

    def __init__(self, sim: Simulator, ue_id: UeId, config: DrbConfig,
                 air: AirInterface,
                 deliver: Callable[[Packet, float], None],
                 send_status: Callable[[Optional[int], Optional[int], float], None],
                 status_delay: float = ms(10.0)) -> None:
        self._sim = sim
        self.ue_id = ue_id
        self.config = config
        self.drb_id: DrbId = config.drb_id
        self._air = air
        self._deliver = deliver
        self._send_status = send_status
        self.status_delay = status_delay

        self._tx_queue: deque[RlcSdu] = deque()
        self._retx_queue: deque[RlcSdu] = deque()
        self.highest_txed_sn: Optional[int] = None
        self.highest_delivered_sn: Optional[int] = None

        self.enqueued_sdus = 0
        self.dropped_sdus = 0
        self.delivered_sdus = 0
        self.lost_sdus = 0
        self.transmitted_bytes = 0
        self._queue_bytes = 0

        # In-order delivery towards the UE's upper layers: SDUs whose air
        # transfer finished out of order wait here until the gap closes (or,
        # in UM, until the reassembly timer gives up on the gap).
        self._next_delivery_sn = 0
        self._pending_delivery: dict[int, tuple[RlcSdu, float]] = {}
        self._skipped_sns: set[int] = set()
        self.reassembly_timeout = ms(40.0)
        self._delivery_report_pending = False

    # ------------------------------------------------------------------ #
    # Ingress (from PDCP over F1-U)
    # ------------------------------------------------------------------ #
    def enqueue(self, sn: int, packet: Packet) -> bool:
        """Append one SDU to the transmission queue.

        Returns False (and drops the SDU) when the queue already holds
        ``max_queue_sdus`` SDUs, mirroring srsRAN's bounded RLC queue.
        """
        if self.queue_length_sdus >= self.config.max_queue_sdus:
            self.dropped_sdus += 1
            return False
        now = self._sim.now
        packet.stamp("rlc_enqueue", now)
        sdu = RlcSdu(sn=sn, packet=packet, size=packet.size, ingress_time=now)
        if not self._tx_queue and not self._retx_queue:
            packet.stamp("rlc_head", now)
        self._tx_queue.append(sdu)
        self._queue_bytes += sdu.size
        self.enqueued_sdus += 1
        return True

    # ------------------------------------------------------------------ #
    # Queue state
    # ------------------------------------------------------------------ #
    @property
    def backlog_bytes(self) -> int:
        """Bytes waiting for a transmission grant (tx + re-tx queues)."""
        return self._queue_bytes

    @property
    def queue_length_sdus(self) -> int:
        """Number of SDUs waiting (the unit the paper's Fig. 17 reports)."""
        return len(self._tx_queue) + len(self._retx_queue)

    def head_of_line_wait(self) -> float:
        """Seconds the current head SDU has waited since reaching the head."""
        head = self._head()
        if head is None:
            return 0.0
        stamp = head.packet.timestamps.get("rlc_head", head.ingress_time)
        return max(0.0, self._sim.now - stamp)

    def _head(self) -> Optional[RlcSdu]:
        if self._retx_queue:
            return self._retx_queue[0]
        if self._tx_queue:
            return self._tx_queue[0]
        return None

    # ------------------------------------------------------------------ #
    # Egress (MAC grant)
    # ------------------------------------------------------------------ #
    def pull(self, grant_bytes: int) -> int:
        """Consume up to ``grant_bytes`` from the queues; returns bytes used.

        SDUs are segmented: a grant smaller than the head SDU reduces its
        ``remaining`` counter, and the SDU is only considered *transmitted*
        (triggering the F1-U report and the air-interface transfer) when its
        last segment leaves.  One delivery-status report is emitted per grant
        (not per SDU), mirroring the batched DDDS reports of a real DU.
        """
        now = self._sim.now
        used = 0
        transmitted_any = False
        while grant_bytes - used > 0:
            queue = self._retx_queue if self._retx_queue else self._tx_queue
            if not queue:
                break
            sdu = queue[0]
            sdu.packet.stamp("rlc_head", now)
            take = min(sdu.remaining, grant_bytes - used)
            sdu.remaining -= take
            used += take
            if sdu.remaining > 0:
                break
            queue.popleft()
            self._queue_bytes -= sdu.size
            self._on_sdu_transmitted(sdu)
            transmitted_any = True
            nxt = self._head()
            if nxt is not None:
                nxt.packet.stamp("rlc_head", now)
        self.transmitted_bytes += used
        if transmitted_any:
            self._send_status(self.highest_txed_sn, self.highest_delivered_sn,
                              now)
        return used

    # ------------------------------------------------------------------ #
    # Transmission outcome handling
    # ------------------------------------------------------------------ #
    def _on_sdu_transmitted(self, sdu: RlcSdu) -> None:
        now = self._sim.now
        sdu.transmitted_time = now
        sdu.packet.stamp_override("rlc_dequeue", now)
        if self.highest_txed_sn is None or sdu.sn > self.highest_txed_sn:
            self.highest_txed_sn = sdu.sn
        self._air.transmit(
            self.ue_id,
            on_delivered=lambda t, s=sdu: self._on_sdu_delivered(s, t),
            on_failed=lambda t, s=sdu: self._on_sdu_failed(s, t))

    def _on_sdu_delivered(self, sdu: RlcSdu, delivery_time: float) -> None:
        sdu.delivered_time = delivery_time
        self.delivered_sdus += 1
        self._pending_delivery[sdu.sn] = (sdu, delivery_time)
        self._flush_in_order()
        if (self.config.rlc_mode == RlcMode.UM
                and sdu.sn > self._next_delivery_sn):
            # A gap ahead of this SDU will never be retransmitted in UM;
            # give it one reassembly-timer's grace, then skip it.
            self._sim.schedule(self.reassembly_timeout,
                               self._um_reassembly_expiry, sdu.sn)
        if self.config.rlc_mode == RlcMode.AM:
            if self.highest_delivered_sn is None or sdu.sn > self.highest_delivered_sn:
                self.highest_delivered_sn = sdu.sn
            if not self._delivery_report_pending:
                self._delivery_report_pending = True
                self._sim.schedule(self.status_delay, self._report_delivery)

    def _flush_in_order(self) -> None:
        """Hand every in-sequence pending SDU to the UE, in SN order."""
        while True:
            if self._next_delivery_sn in self._skipped_sns:
                self._skipped_sns.discard(self._next_delivery_sn)
                self._next_delivery_sn += 1
                continue
            item = self._pending_delivery.pop(self._next_delivery_sn, None)
            if item is None:
                return
            sdu, delivery_time = item
            sdu.packet.stamp("ue_delivered", self._sim.now)
            self._deliver(sdu.packet, self._sim.now)
            self._next_delivery_sn += 1

    def _um_reassembly_expiry(self, received_sn: int) -> None:
        """UM reassembly timer: give up on gaps below an SDU already received."""
        if received_sn < self._next_delivery_sn:
            return
        for sn in range(self._next_delivery_sn, received_sn):
            if sn not in self._pending_delivery:
                self._skipped_sns.add(sn)
        self._flush_in_order()

    def _report_delivery(self) -> None:
        self._delivery_report_pending = False
        self._send_status(self.highest_txed_sn, self.highest_delivered_sn,
                          self._sim.now)

    def _on_sdu_failed(self, sdu: RlcSdu, failure_time: float) -> None:
        if self.config.rlc_mode == RlcMode.AM and sdu.retransmissions < 8:
            sdu.retransmissions += 1
            sdu.remaining = sdu.size
            self._retx_queue.append(sdu)
            self._queue_bytes += sdu.size
        else:
            self.lost_sdus += 1
            # Never block in-order delivery on an SDU that will not arrive.
            if sdu.sn >= self._next_delivery_sn:
                self._skipped_sns.add(sdu.sn)
                self._flush_in_order()

    # ------------------------------------------------------------------ #
    def queued_sdu_sizes(self) -> list[int]:
        """Sizes of every SDU still waiting, head first (used by probes)."""
        return ([s.size for s in self._retx_queue]
                + [s.size for s in self._tx_queue])
