"""The RLC entity: the queue where 5G downlink latency is born.

One :class:`RlcEntity` exists per (UE, DRB).  Downlink PDCP SDUs wait in its
transmission queue until the MAC scheduler grants the UE transmission
opportunities; the entity then segments SDUs into the granted transport-block
bytes, hands them to the air interface, and -- in acknowledged mode --
retransmits blocks the air interface ultimately fails to deliver.

The entity reports *downlink data delivery status* over F1-U whenever it
transmits an SDU (highest transmitted SN) and, in AM, whenever the UE's RLC
acknowledges delivery (highest delivered SN).  These reports are the only
visibility L4Span has into the queue (paper §4.3.1).

Hot-path notes (this module runs once per MAC grant and once per delivered
transport block):

* ``rlc_head`` timestamps are written only when the head of the queue
  actually changes (enqueue into an empty queue, head pop, retransmission
  takeover) instead of once per grant iteration, and a re-queued SDU that
  (re)reaches the head gets a *fresh* stamp -- so
  :meth:`head_of_line_wait` measures the current head tenure rather than the
  first time the SDU ever saw the head.
* In-order delivery is event-driven: an SDU is parked only when it arrives
  ahead of ``_next_delivery_sn``; there is no speculative flush walk per
  delivered SDU.
* A caller that issues several sub-grants in one scheduling decision (the DU
  splitting a MAC grant across bearers) can pass ``report=False`` and flush
  one combined F1-U report afterwards via :meth:`flush_status`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.packet import Packet
from repro.ran.identifiers import DrbConfig, DrbId, RlcMode, UeId
from repro.ran.phy import AirInterface
from repro.sim.engine import Simulator
from repro.units import ms


@dataclass(slots=True)
class RlcSdu:
    """One PDCP SDU sitting in (or moving through) the RLC."""

    sn: int
    packet: Packet
    size: int
    ingress_time: float
    remaining: int = field(default=0)
    retransmissions: int = 0
    transmitted_time: Optional[float] = None
    delivered_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.remaining == 0:
            self.remaining = self.size


class RlcEntity:
    """Transmission (and, for AM, retransmission) queue of one bearer.

    Args:
        sim: simulator.
        ue_id / config: owning UE and bearer configuration.
        air: the air-interface delay model used for transmitted blocks.
        deliver: callback ``deliver(packet, delivery_time)`` invoked when an
            SDU reaches the UE.
        send_status: callback taking ``(highest_txed_sn, highest_delivered_sn,
            timestamp)`` used to emit F1-U delivery-status reports.
        status_delay: latency between a delivery event at the UE and the RLC
            ACK reaching the DU (models the UE status-reporting cadence).
    """

    __slots__ = ("_sim", "ue_id", "config", "drb_id", "_air", "_deliver",
                 "_send_status", "status_delay", "_tx_queue", "_retx_queue",
                 "highest_txed_sn", "highest_delivered_sn", "enqueued_sdus",
                 "dropped_sdus", "delivered_sdus", "lost_sdus",
                 "transmitted_bytes", "backlog_bytes", "_next_delivery_sn",
                 "_pending_delivery", "_skipped_sns", "reassembly_timeout",
                 "_delivery_report_pending", "_status_dirty", "_is_am",
                 "_max_queue_sdus", "_released", "abandoned_sdus")

    def __init__(self, sim: Simulator, ue_id: UeId, config: DrbConfig,
                 air: AirInterface,
                 deliver: Callable[[Packet, float], None],
                 send_status: Callable[[Optional[int], Optional[int], float], None],
                 status_delay: float = ms(10.0)) -> None:
        self._sim = sim
        self.ue_id = ue_id
        self.config = config
        self.drb_id: DrbId = config.drb_id
        self._air = air
        self._deliver = deliver
        self._send_status = send_status
        self.status_delay = status_delay

        self._tx_queue: deque[RlcSdu] = deque()
        self._retx_queue: deque[RlcSdu] = deque()
        self.highest_txed_sn: Optional[int] = None
        self.highest_delivered_sn: Optional[int] = None

        self.enqueued_sdus = 0
        self.dropped_sdus = 0
        self.delivered_sdus = 0
        self.lost_sdus = 0
        self.transmitted_bytes = 0
        #: Bytes waiting for a transmission grant (tx + re-tx queues); a plain
        #: attribute because the MAC reads it for every UE on every slot.
        self.backlog_bytes = 0

        # In-order delivery towards the UE's upper layers: SDUs whose air
        # transfer finished out of order wait here, keyed by SN, until the
        # gap closes (or, in UM, until the reassembly timer gives up on it).
        self._next_delivery_sn = 0
        self._pending_delivery: dict[int, tuple[RlcSdu, float]] = {}
        self._skipped_sns: set[int] = set()
        self.reassembly_timeout = ms(40.0)
        self._delivery_report_pending = False
        self._status_dirty = False
        # Mode/limit resolved once: reading enum-valued dataclass fields per
        # delivered block is measurable at scenario event rates.
        self._is_am = config.rlc_mode == RlcMode.AM
        self._max_queue_sdus = config.max_queue_sdus
        # Set by release() when the UE hands over away from this cell; air
        # blocks still in flight then complete against a dead entity.
        self._released = False
        self.abandoned_sdus = 0

    # ------------------------------------------------------------------ #
    # Ingress (from PDCP over F1-U)
    # ------------------------------------------------------------------ #
    def enqueue(self, sn: int, packet: Packet) -> bool:
        """Append one SDU to the transmission queue.

        Returns False (and drops the SDU) when the queue already holds
        ``max_queue_sdus`` SDUs, mirroring srsRAN's bounded RLC queue.
        """
        if len(self._tx_queue) + len(self._retx_queue) >= self._max_queue_sdus:
            self.dropped_sdus += 1
            return False
        now = self._sim.now
        packet.stamp("rlc_enqueue", now)
        sdu = RlcSdu(sn=sn, packet=packet, size=packet.size, ingress_time=now)
        if not self._tx_queue and not self._retx_queue:
            packet.stamp("rlc_head", now)
        self._tx_queue.append(sdu)
        self.backlog_bytes += sdu.size
        self.enqueued_sdus += 1
        return True

    # ------------------------------------------------------------------ #
    # Queue state
    # ------------------------------------------------------------------ #
    @property
    def queue_length_sdus(self) -> int:
        """Number of SDUs waiting (the unit the paper's Fig. 17 reports)."""
        return len(self._tx_queue) + len(self._retx_queue)

    def head_of_line_wait(self) -> float:
        """Seconds the current head SDU has waited since (re)reaching the head."""
        head = self._head()
        if head is None:
            return 0.0
        stamp = head.packet.timestamps.get("rlc_head", head.ingress_time)
        return max(0.0, self._sim.now - stamp)

    def _head(self) -> Optional[RlcSdu]:
        if self._retx_queue:
            return self._retx_queue[0]
        if self._tx_queue:
            return self._tx_queue[0]
        return None

    # ------------------------------------------------------------------ #
    # Egress (MAC grant)
    # ------------------------------------------------------------------ #
    def pull(self, grant_bytes: int, report: bool = True) -> int:
        """Consume up to ``grant_bytes`` from the queues; returns bytes used.

        SDUs are segmented: a grant smaller than the head SDU reduces its
        ``remaining`` counter, and the SDU is only considered *transmitted*
        (triggering the F1-U report and the air-interface transfer) when its
        last segment leaves.  One delivery-status report is emitted per grant
        (not per SDU), mirroring the batched DDDS reports of a real DU; with
        ``report=False`` even that report is deferred until
        :meth:`flush_status`, letting the DU coalesce several sub-grants of
        one scheduling decision into a single report.
        """
        now = self._sim.now
        retx = self._retx_queue
        tx = self._tx_queue
        used = 0
        transmitted_any = False
        while used < grant_bytes:
            queue = retx if retx else tx
            if not queue:
                break
            sdu = queue[0]
            budget = grant_bytes - used
            remaining = sdu.remaining
            if remaining > budget:
                sdu.remaining = remaining - budget
                used += budget
                break
            used += remaining
            sdu.remaining = 0
            queue.popleft()
            self.backlog_bytes -= sdu.size
            self._on_sdu_transmitted(sdu)
            transmitted_any = True
            nxt = retx[0] if retx else (tx[0] if tx else None)
            if nxt is not None:
                nxt.packet.stamp_override("rlc_head", now)
        self.transmitted_bytes += used
        if transmitted_any:
            if report:
                self._send_status(self.highest_txed_sn,
                                  self.highest_delivered_sn, now)
            else:
                self._status_dirty = True
        return used

    def flush_status(self) -> None:
        """Emit the delivery-status report deferred by ``pull(report=False)``.

        A no-op unless a deferred pull actually transmitted something, so the
        DU can call it unconditionally after splitting a grant.
        """
        if self._status_dirty:
            self._status_dirty = False
            self._send_status(self.highest_txed_sn, self.highest_delivered_sn,
                              self._sim.now)

    # ------------------------------------------------------------------ #
    # Handover release
    # ------------------------------------------------------------------ #
    def release(self) -> tuple[list[Packet], int]:
        """Detach this entity from service (the UE handed over away).

        Returns ``(queued_packets, pending_dropped)``: the SDU packets still
        waiting for a grant, in the order they would have been served
        (retransmissions first), and the count of SDUs that had crossed the
        air but were still parked in the in-order delivery buffer (those are
        dropped -- the UE left before the gap below them closed).  After
        release the entity ignores the outcomes of air blocks still in
        flight (counted in :attr:`abandoned_sdus`) and emits no further
        F1-U reports.
        """
        packets = ([sdu.packet for sdu in self._retx_queue]
                   + [sdu.packet for sdu in self._tx_queue])
        pending_dropped = len(self._pending_delivery)
        self._retx_queue.clear()
        self._tx_queue.clear()
        self._pending_delivery.clear()
        self._skipped_sns.clear()
        self.backlog_bytes = 0
        self._status_dirty = False
        self._released = True
        return packets, pending_dropped

    @property
    def released(self) -> bool:
        """True once :meth:`release` detached this entity from service."""
        return self._released

    # ------------------------------------------------------------------ #
    # Transmission outcome handling
    # ------------------------------------------------------------------ #
    def _on_sdu_transmitted(self, sdu: RlcSdu) -> None:
        now = self._sim.now
        sdu.transmitted_time = now
        sdu.packet.stamp_override("rlc_dequeue", now)
        if self.highest_txed_sn is None or sdu.sn > self.highest_txed_sn:
            self.highest_txed_sn = sdu.sn
        self._air.transmit(self.ue_id, self._on_sdu_delivered,
                           self._on_sdu_failed, sdu)

    def _on_sdu_delivered(self, sdu: RlcSdu, delivery_time: float) -> None:
        if self._released:
            self.abandoned_sdus += 1
            return
        sdu.delivered_time = delivery_time
        self.delivered_sdus += 1
        sn = sdu.sn
        next_sn = self._next_delivery_sn
        if sn < next_sn:
            # The reassembly timer (or a permanent failure bookkeeping bug)
            # already advanced past this SN: a late-but-successful delivery
            # must still reach the UE immediately -- parking it in
            # ``_pending_delivery`` would leak it forever.
            self._skipped_sns.discard(sn)
            now = self._sim.now
            sdu.packet.stamp("ue_delivered", now)
            self._deliver(sdu.packet, now)
        elif sn == next_sn:
            self._pending_delivery[sn] = (sdu, delivery_time)
            self._flush_in_order()
        else:
            self._pending_delivery[sn] = (sdu, delivery_time)
            if not self._is_am:
                # A gap ahead of this SDU will never be retransmitted in UM;
                # give it one reassembly-timer's grace, then skip it.
                self._sim.schedule(self.reassembly_timeout,
                                   self._um_reassembly_expiry, sn)
        if self._is_am:
            if self.highest_delivered_sn is None or sn > self.highest_delivered_sn:
                self.highest_delivered_sn = sn
            if not self._delivery_report_pending:
                self._delivery_report_pending = True
                self._sim.schedule(self.status_delay, self._report_delivery)

    def _flush_in_order(self) -> None:
        """Hand every in-sequence pending SDU to the UE, in SN order."""
        pending = self._pending_delivery
        skipped = self._skipped_sns
        next_sn = self._next_delivery_sn
        now = self._sim.now
        while True:
            if skipped and next_sn in skipped:
                skipped.discard(next_sn)
                next_sn += 1
                continue
            item = pending.pop(next_sn, None)
            if item is None:
                break
            sdu = item[0]
            sdu.packet.stamp("ue_delivered", now)
            self._deliver(sdu.packet, now)
            next_sn += 1
        self._next_delivery_sn = next_sn

    def _um_reassembly_expiry(self, received_sn: int) -> None:
        """UM reassembly timer: give up on gaps below an SDU already received."""
        if self._released or received_sn < self._next_delivery_sn:
            return
        for sn in range(self._next_delivery_sn, received_sn):
            if sn not in self._pending_delivery:
                self._skipped_sns.add(sn)
        self._flush_in_order()

    def _report_delivery(self) -> None:
        self._delivery_report_pending = False
        if self._released:
            return
        self._send_status(self.highest_txed_sn, self.highest_delivered_sn,
                          self._sim.now)

    def _on_sdu_failed(self, sdu: RlcSdu, failure_time: float) -> None:
        if self._released:
            self.abandoned_sdus += 1
            return
        if self._is_am and sdu.retransmissions < 8:
            sdu.retransmissions += 1
            sdu.remaining = sdu.size
            if not self._retx_queue:
                # The re-queued SDU takes over the head (the re-tx queue has
                # priority): give it a fresh head stamp so head-of-line wait
                # is not inflated by its first pass through the queue.
                sdu.packet.stamp_override("rlc_head", self._sim.now)
            self._retx_queue.append(sdu)
            self.backlog_bytes += sdu.size
        else:
            self.lost_sdus += 1
            # Never block in-order delivery on an SDU that will not arrive.
            if sdu.sn >= self._next_delivery_sn:
                self._skipped_sns.add(sdu.sn)
                self._flush_in_order()

    # ------------------------------------------------------------------ #
    def queued_sdu_sizes(self) -> list[int]:
        """Sizes of every SDU still waiting, head first (used by probes)."""
        return ([s.size for s in self._retx_queue]
                + [s.size for s in self._tx_queue])
