"""SDAP entity: QoS-flow to DRB mapping.

The SDAP layer in the CU-UP maps each downlink packet, by its QoS flow
identifier, to one of the UE's data radio bearers.  In this reproduction the
mapping is driven by the packet's ECN codepoint when the UE is provisioned
with separate L4S and classic bearers (the paper's recommended configuration,
§4.2), and falls back to the UE's single default bearer otherwise (the
"shared DRB" scenario of §4.2.3 and Fig. 16).
"""

from __future__ import annotations

from typing import Optional

from repro.net.ecn import FlowClass
from repro.net.packet import Packet
from repro.ran.identifiers import DrbConfig, DrbId, DrbServiceClass, QosFlowId, UeId


class SdapEntity:
    """Per-UE QFI -> DRB mapping."""

    def __init__(self, ue_id: UeId, drb_configs: list[DrbConfig]) -> None:
        if not drb_configs:
            raise ValueError("a UE needs at least one DRB")
        self.ue_id = ue_id
        self.drb_configs = {cfg.drb_id: cfg for cfg in drb_configs}
        self._by_class: dict[DrbServiceClass, DrbId] = {}
        for cfg in drb_configs:
            self._by_class.setdefault(cfg.service_class, cfg.drb_id)
        self._default_drb = drb_configs[0].drb_id
        self._qfi_map: dict[QosFlowId, DrbId] = {}

    # ------------------------------------------------------------------ #
    def map_qfi(self, qfi: QosFlowId, drb_id: DrbId) -> None:
        """Pin a QoS flow to a specific bearer (administrative configuration)."""
        if drb_id not in self.drb_configs:
            raise KeyError(f"UE {self.ue_id} has no DRB {drb_id}")
        self._qfi_map[qfi] = drb_id

    def drb_for_packet(self, packet: Packet,
                       qfi: Optional[QosFlowId] = None) -> DrbId:
        """Choose the bearer for a downlink packet.

        Preference order: an explicit QFI pin, then a bearer provisioned for
        the packet's traffic class, then the default bearer.
        """
        if qfi is not None and qfi in self._qfi_map:
            return self._qfi_map[qfi]
        flow_class = packet.flow_class
        if flow_class == FlowClass.L4S and DrbServiceClass.L4S in self._by_class:
            return self._by_class[DrbServiceClass.L4S]
        if (flow_class == FlowClass.CLASSIC
                and DrbServiceClass.CLASSIC in self._by_class):
            return self._by_class[DrbServiceClass.CLASSIC]
        if DrbServiceClass.MIXED in self._by_class:
            return self._by_class[DrbServiceClass.MIXED]
        return self._default_drb

    @property
    def drb_ids(self) -> list[DrbId]:
        """All bearers configured for this UE."""
        return list(self.drb_configs)
