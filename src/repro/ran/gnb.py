"""The gNB: CU-UP + F1-U + DU assembled into one attachable unit."""

from __future__ import annotations

from typing import Optional

from repro.net.base import PacketSink
from repro.net.packet import Packet
from repro.ran.cell import CellConfig
from repro.ran.cu import CentralUnitUserPlane
from repro.ran.du import DistributedUnit
from repro.ran.f1u import F1UInterface
from repro.ran.identifiers import UeId
from repro.ran.mac import SchedulerPolicy
from repro.ran.marker import RanMarker
from repro.ran.phy import AirInterfaceConfig
from repro.ran.ue import UeContext
from repro.sim.backends import EngineBackend
from repro.sim.engine import Simulator


class GNodeB:
    """A complete base station.

    Args:
        sim: simulator.
        cell: radio configuration.
        scheduler_policy: MAC policy (RR / PF).
        marker: the in-RAN marking layer (defaults to no-op).
        air_config: air-interface delay/HARQ configuration.
        engine_backend: engine backend executing the per-slot hot loops
            (None = the classic python path; see :mod:`repro.sim.backends`).
    """

    def __init__(self, sim: Simulator, cell: Optional[CellConfig] = None,
                 scheduler_policy: SchedulerPolicy = SchedulerPolicy.ROUND_ROBIN,
                 marker: Optional[RanMarker] = None,
                 air_config: Optional[AirInterfaceConfig] = None,
                 name: str = "gnb",
                 engine_backend: Optional[EngineBackend] = None) -> None:
        self._sim = sim
        self.name = name
        self.cell = cell if cell is not None else CellConfig()
        self.f1u = F1UInterface(sim, name=f"{name}-f1u")
        self.cu = CentralUnitUserPlane(sim, self.f1u, marker=marker,
                                       name=f"{name}-cu")
        self.du = DistributedUnit(sim, self.cell, self.f1u,
                                  scheduler_policy=scheduler_policy,
                                  air_config=air_config,
                                  engine_backend=engine_backend)
        self._ues: dict[UeId, UeContext] = {}

    # ------------------------------------------------------------------ #
    # Attachment and wiring
    # ------------------------------------------------------------------ #
    def attach_ue(self, ue: UeContext, *, bearer_tag: str = "",
                  register_mac: bool = True) -> None:
        """Attach a UE: creates CU and DU state and wires the uplink path.

        ``bearer_tag`` and ``register_mac`` support handover re-attachment:
        the tag keeps the fresh bearers' report labels unique, and deferring
        MAC registration models the interruption window (see
        :meth:`repro.ran.du.DistributedUnit.attach_ue`).
        """
        if ue.ue_id in self._ues:
            raise ValueError(f"UE {ue.ue_id} already attached to {self.name}")
        self._ues[ue.ue_id] = ue
        self.cu.attach_ue(ue)
        self.du.attach_ue(ue, bearer_tag=bearer_tag, register_mac=register_mac)
        ue.uplink_sink = self.cu.receive_uplink
        ue.uplink.active_ue_count = lambda: len(self._ues)

    def detach_ue(self, ue_id: UeId) -> list:
        """Detach a UE (handover departure); returns its released bearers.

        The returned ``(drb_id, entity)`` pairs still hold the SDUs that
        were awaiting a grant; the mobility manager forwards or flushes
        them per the scenario's handover mode.
        """
        self._ues.pop(ue_id, None)
        self.cu.detach_ue(ue_id)
        return self.du.detach_ue(ue_id)

    def set_marker(self, marker: RanMarker) -> None:
        """Attach the in-RAN marking layer (L4Span, a baseline, or no-op)."""
        self.cu.set_marker(marker)

    @property
    def marker(self) -> RanMarker:
        """The currently attached marking layer."""
        return self.cu.marker

    @property
    def uplink_sink(self) -> Optional[PacketSink]:
        """Where uplink packets go after the CU (normally the 5G core)."""
        return self.cu.uplink_sink

    @uplink_sink.setter
    def uplink_sink(self, sink: Optional[PacketSink]) -> None:
        self.cu.uplink_sink = sink

    # ------------------------------------------------------------------ #
    # Data plane entry points
    # ------------------------------------------------------------------ #
    def receive_downlink(self, packet: Packet, ue_id: UeId) -> None:
        """Downlink datagram from the core destined to ``ue_id``."""
        self.cu.receive_downlink(packet, ue_id)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def ue(self, ue_id: UeId) -> UeContext:
        """Look up an attached UE."""
        return self._ues[ue_id]

    @property
    def ue_ids(self) -> list[UeId]:
        """Identifiers of every attached UE."""
        return list(self._ues)

    def rlc_queue_lengths(self) -> dict[str, int]:
        """RLC queue length (SDUs) per bearer, keyed by "ueX/drbY".

        Labels carry the attach tag of handed-over UEs (``"ue0/drb1#a1"``)
        so a re-attached UE's fresh bearers never alias its old ones.
        """
        return {label: entity.queue_length_sdus
                for label, entity in self.du.labeled_rlc_items()}

    def stop(self) -> None:
        """Stop periodic machinery (MAC slot clock)."""
        self.du.stop()
