"""Interface between the RAN's CU-UP and an in-RAN marking layer.

The CU-UP invokes the attached marker on exactly the three events the paper's
pseudocode defines (Appendix A):

* a downlink IP datagram arriving from the 5G core,
* a downlink-data-delivery-status report arriving over F1-U, and
* an uplink packet (potentially a TCP ACK to rewrite) passing through.

:class:`~repro.core.l4span.L4SpanLayer`, the TC-RAN baseline and the in-RAN
DualPi2 baseline all implement this protocol; :class:`NoopMarker` is the
"no L4Span deployed" configuration.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.net.packet import Packet
from repro.ran.f1u import DeliveryStatus
from repro.ran.identifiers import DrbId, UeId
from repro.registry import MARKERS


@runtime_checkable
class RanMarker(Protocol):
    """Protocol implemented by every in-RAN marking layer."""

    def on_downlink_packet(self, packet: Packet, ue_id: UeId, drb_id: DrbId,
                           now: float) -> None:
        """Observe (and possibly mark) a downlink datagram entering the CU."""
        ...

    def on_ran_feedback(self, status: DeliveryStatus, now: float) -> None:
        """Consume an F1-U delivery-status report."""
        ...

    def on_uplink_packet(self, packet: Packet, now: float) -> None:
        """Observe (and possibly rewrite) an uplink packet leaving the RAN."""
        ...


class NoopMarker:
    """The baseline RAN: no in-network congestion signalling at all."""

    name = "none"

    def __init__(self) -> None:
        self.downlink_packets = 0
        self.feedback_messages = 0
        self.uplink_packets = 0

    def on_downlink_packet(self, packet: Packet, ue_id: UeId, drb_id: DrbId,
                           now: float) -> None:
        self.downlink_packets += 1

    def on_ran_feedback(self, status: DeliveryStatus, now: float) -> None:
        self.feedback_messages += 1

    def on_uplink_packet(self, packet: Packet, now: float) -> None:
        self.uplink_packets += 1


@MARKERS.register("none", "off", "baseline")
def _build_noop_marker(sim, l4span_config=None) -> NoopMarker:
    """The "no in-RAN marking" baseline (``sim``/config are unused)."""
    return NoopMarker()
