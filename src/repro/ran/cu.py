"""The Central Unit user plane: SDAP + PDCP per UE, plus the marker hook.

Downlink packets from the 5G core enter here.  The CU asks the attached
marker (L4Span, a baseline, or the no-op) to observe/mark the packet, maps it
to a bearer via SDAP, numbers it in PDCP and ships it to the DU over F1-U.
Uplink packets pass through the marker on their way back to the core, which is
where feedback short-circuiting happens.
"""

from __future__ import annotations

from typing import Optional

from repro.net.base import PacketSink
from repro.net.packet import Packet
from repro.ran.f1u import DeliveryStatus, F1UInterface
from repro.ran.identifiers import DrbId, UeId
from repro.ran.marker import NoopMarker, RanMarker
from repro.ran.pdcp import PdcpEntity
from repro.ran.sdap import SdapEntity
from repro.ran.ue import UeContext
from repro.sim.engine import Simulator


class CentralUnitUserPlane:
    """Per-UE SDAP/PDCP state and the in-RAN marker attachment point."""

    def __init__(self, sim: Simulator, f1u: F1UInterface,
                 marker: Optional[RanMarker] = None,
                 name: str = "cu-up") -> None:
        self._sim = sim
        self.f1u = f1u
        self.name = name
        self.marker: RanMarker = marker if marker is not None else NoopMarker()
        self._sdap: dict[UeId, SdapEntity] = {}
        self._pdcp: dict[tuple[UeId, DrbId], PdcpEntity] = {}
        #: uplink packets leave the RAN through this sink (towards the UPF).
        self.uplink_sink: Optional[PacketSink] = None
        #: Mobility sets this: downlink datagrams racing a detach through the
        #: core's processing pipeline are dropped (and counted) instead of
        #: raising for the departed UE.
        self.drop_unknown_ue = False
        self.unknown_ue_packets = 0
        self.downlink_packets = 0
        self.uplink_packets = 0
        f1u.connect_cu(self._on_delivery_status)

    # ------------------------------------------------------------------ #
    # Attachment
    # ------------------------------------------------------------------ #
    def attach_ue(self, ue: UeContext) -> None:
        """Create the SDAP and PDCP entities for a newly attached UE."""
        drb_configs = ue.config.drb_configs()
        self._sdap[ue.ue_id] = SdapEntity(ue.ue_id, drb_configs)
        for config in drb_configs:
            self._pdcp[(ue.ue_id, config.drb_id)] = PdcpEntity(
                ue.ue_id, config, self.f1u.send_downlink_sdu)

    def detach_ue(self, ue_id: UeId) -> None:
        """Drop a UE's SDAP/PDCP state (handover departure)."""
        sdap = self._sdap.pop(ue_id, None)
        if sdap is not None:
            for drb_id in sdap.drb_ids:
                self._pdcp.pop((ue_id, drb_id), None)

    def set_marker(self, marker: RanMarker) -> None:
        """Attach (or replace) the in-RAN marking layer."""
        self.marker = marker

    # ------------------------------------------------------------------ #
    # Downlink
    # ------------------------------------------------------------------ #
    def receive_downlink(self, packet: Packet, ue_id: UeId) -> None:
        """Process a downlink datagram from the 5G core for ``ue_id``."""
        sdap = self._sdap.get(ue_id)
        if sdap is None:
            if self.drop_unknown_ue:
                self.unknown_ue_packets += 1
                return
            raise KeyError(f"UE {ue_id} is not attached to {self.name}")
        self.downlink_packets += 1
        packet.stamp("cu_ingress", self._sim.now)
        drb_id = sdap.drb_for_packet(packet)
        self.marker.on_downlink_packet(packet, ue_id, drb_id, self._sim.now)
        self._pdcp[(ue_id, drb_id)].submit(packet)

    def resubmit_downlink(self, ue_id: UeId, drb_id: DrbId,
                          packet: Packet) -> None:
        """Enqueue a handover-forwarded SDU on the target cell's bearer.

        Forwarded SDUs were already observed (and possibly marked) by the
        source cell's marker, so they enter PDCP directly -- the Xn
        data-forwarding path, not a second trip through SDAP/marking.  SDUs
        racing a further detach are dropped like any unknown-UE packet.
        """
        pdcp = self._pdcp.get((ue_id, drb_id))
        if pdcp is None:
            self.unknown_ue_packets += 1
            return
        packet.stamp("cu_ingress", self._sim.now)
        pdcp.submit(packet)

    # ------------------------------------------------------------------ #
    # Uplink
    # ------------------------------------------------------------------ #
    def receive_uplink(self, packet: Packet, ue_id: UeId) -> None:
        """Process an uplink packet from ``ue_id`` on its way to the core."""
        self.uplink_packets += 1
        self.marker.on_uplink_packet(packet, self._sim.now)
        if self.uplink_sink is not None:
            self.uplink_sink.receive(packet)

    # ------------------------------------------------------------------ #
    # F1-U feedback
    # ------------------------------------------------------------------ #
    def _on_delivery_status(self, status: DeliveryStatus) -> None:
        self.marker.on_ran_feedback(status, self._sim.now)
