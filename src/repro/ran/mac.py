"""MAC scheduler: slot-by-slot allocation of cell resources to UEs.

Every slot (0.5 ms for the paper's 30 kHz numerology) the scheduler looks at
which UEs have backlogged RLC data, samples each one's channel, and divides
the cell's PRBs among them:

* **round robin (RR)** -- equal PRB shares for every backlogged UE;
* **proportional fair (PF)** -- shares proportional to
  ``instantaneous_rate / average_throughput``, which trades some short-term
  fairness for multi-user diversity gain.

The allocated PRBs are converted to transport-block bytes using the UE's
spectral efficiency and handed to the DU's per-UE ``pull`` callback, which
drains the RLC queues.  The paper's Fig. 10 evaluates L4Span under both
policies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro._numpy import np
from repro.channel.base import ChannelModel
from repro.ran.cell import CellConfig
from repro.ran.identifiers import UeId
from repro.registry import SCHEDULERS
from repro.sim.backends import EngineBackend
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess

#: Below these many backlogged UEs the scalar allocation loops beat the
#: numpy ones (array construction and ``tolist`` overhead are fixed costs
#: of several microseconds per slot).  Crossovers measured on the dev
#: container; tests force the vector paths by patching these down.
_VECTOR_MIN_UES_RR = 160
_VECTOR_MIN_UES_PF = 48


class SchedulerPolicy(enum.Enum):
    """Supported MAC scheduling policies."""

    ROUND_ROBIN = "rr"
    PROPORTIONAL_FAIR = "pf"


SCHEDULERS.add("rr", SchedulerPolicy.ROUND_ROBIN, "round_robin")
SCHEDULERS.add("pf", SchedulerPolicy.PROPORTIONAL_FAIR, "proportional_fair")


def resolve_scheduler(name) -> SchedulerPolicy:
    """Map a policy name (or a policy member) onto :class:`SchedulerPolicy`."""
    if isinstance(name, SchedulerPolicy):
        return name
    return SCHEDULERS.get(name)


@dataclass(slots=True)
class _UeSchedulingState:
    """Book-keeping the scheduler maintains for each attached UE."""

    ue_id: UeId
    channel: ChannelModel
    backlog_bytes: Callable[[], int]
    pull: Callable[[int], int]
    average_throughput: float = 1.0  # bytes/s, seeded > 0 to avoid div-by-zero
    served_bytes_total: int = 0
    scheduled_slots: int = 0
    #: Bytes served in the slot being processed (scratch for the EWMA pass).
    slot_served: int = 0


class MacScheduler:
    """The cell's downlink scheduler.

    Args:
        sim: simulator.
        cell: static cell configuration.
        policy: RR or PF.
        pf_time_constant: averaging horizon (seconds) of the PF throughput
            EWMA.
        start: when to start the slot clock (defaults to time zero).
        backend: engine backend; a vectorized backend moves the slot clock
            onto the simulator's timer wheel (batching consecutive slots
            off-heap), serves channels through a per-cell
            :class:`~repro.channel.blockcache.ChannelBlockCache` and takes
            numpy allocation paths for large UE counts.  None (or the
            ``python`` backend) keeps the classic heap-driven loop.
    """

    def __init__(self, sim: Simulator, cell: CellConfig,
                 policy: SchedulerPolicy = SchedulerPolicy.ROUND_ROBIN,
                 pf_time_constant: float = 0.1,
                 start: Optional[float] = None,
                 backend: Optional[EngineBackend] = None) -> None:
        self._sim = sim
        self.cell = cell
        self.policy = policy
        self.pf_time_constant = pf_time_constant
        self._ues: dict[UeId, _UeSchedulingState] = {}
        #: Registration-ordered view of the states; the slot loop iterates
        #: this list instead of allocating a ``dict.values()`` view per slot.
        self._ue_states: list[_UeSchedulingState] = []
        #: Aggregated background population sharing the cell, or None.
        self._background = None
        self._rr_offset = 0
        self._quiet_active_count = 0
        self.slots = 0
        self.busy_slots = 0
        # Per-slot constants hoisted off the hot loop.
        self._decay = cell.slot_duration / pf_time_constant
        self._inv_slot_duration = 1.0 / cell.slot_duration
        self._round_robin = policy == SchedulerPolicy.ROUND_ROBIN
        self._vectorized = backend is not None and backend.vectorized
        start_at = start if start is not None else sim.now
        if self._vectorized:
            # Both clocks consume one tie-break sequence number here, at
            # construction, so same-instant ordering against other events
            # is identical whichever clock drives the slots.
            from repro.channel.blockcache import ChannelBlockCache
            self._channel_cache = ChannelBlockCache(
                cell.slot_duration, block=backend.channel_block)
            self._process = None
            self._timer = sim.add_slot_timer(
                cell.slot_duration, self._run_slot_batch, start_at=start_at)
        else:
            self._channel_cache = None
            self._timer = None
            self._process = PeriodicProcess(
                sim, cell.slot_duration, self._on_slot,
                start_at=start_at, name="mac-slot")

    # ------------------------------------------------------------------ #
    # Attachment
    # ------------------------------------------------------------------ #
    def register_ue(self, ue_id: UeId, channel: ChannelModel,
                    backlog_bytes: Callable[[], int],
                    pull: Callable[[int], int]) -> ChannelModel:
        """Attach a UE: the DU provides backlog and pull callbacks.

        Returns the channel the scheduler will actually query -- under a
        vectorized backend this is the block-cache view of ``channel``, and
        the caller should read link quality through it (not the raw model)
        so every consumer sees one consistent variate sequence.
        """
        if self._channel_cache is not None:
            channel = self._channel_cache.view(channel)
        state = _UeSchedulingState(
            ue_id=ue_id, channel=channel, backlog_bytes=backlog_bytes,
            pull=pull)
        previous = self._ues.get(ue_id)
        if previous is not None:
            self._ue_states[self._ue_states.index(previous)] = state
        else:
            self._ue_states.append(state)
        self._ues[ue_id] = state
        return channel

    def unregister_ue(self, ue_id: UeId) -> None:
        """Stop scheduling a UE (it detached or handed over away)."""
        state = self._ues.pop(ue_id, None)
        if state is not None:
            self._ue_states.remove(state)

    def attach_background(self, population) -> None:
        """Attach the cell's aggregated background population.

        The population (see :class:`repro.ran.background.BackgroundPopulation`)
        enters every slot as ``population.demand_count`` extra round-robin
        claimants; the PRBs not granted to foreground UEs are accumulated via
        ``population.on_slot`` and served by its next batched kernel step.
        """
        self._background = population

    @property
    def num_ues(self) -> int:
        """Number of attached UEs."""
        return len(self._ues)

    def stop(self) -> None:
        """Stop the slot clock (end of scenario)."""
        if self._process is not None:
            self._process.stop()
        if self._timer is not None:
            self._timer.stop()

    # ------------------------------------------------------------------ #
    # Slot processing
    # ------------------------------------------------------------------ #
    def _run_slot_batch(self, barrier_time: float, barrier_seq) -> None:
        """Timer-wheel callback: run consecutive slot ticks up to a barrier.

        Mirrors :class:`~repro.sim.process.PeriodicProcess` exactly -- the
        slot body runs first, then the re-arm consumes one tie-break
        sequence number -- so events a slot schedules at precisely the next
        tick time still fire before that tick.  The batch ends when the
        next tick's ``(time, seq)`` key would not be the globally next
        event: another wheel timer (the ``barrier_*`` arguments), the heap
        head (a cancelled head conservatively ends the batch too; the
        engine loop discards it and re-enters), the run window, or a
        ``stop()``.
        """
        sim = self._sim
        queue = sim.events
        heap = queue.heap
        timer = self._timer
        slot = self.cell.slot_duration
        # A predicted run of zero-service ticks (see
        # :meth:`_quiet_run_length`) is executed wholesale by
        # :meth:`_quiet_bulk`; everything else goes through the exact
        # per-slot path.  The prediction is recomputed at batch start,
        # after every serving slot and after each population kernel-step
        # boundary; heap events fire only between batches, so any state
        # they change (RLC enqueues, attach/detach) naturally invalidates
        # it.
        while True:
            quiet = self._quiet_run_length()
            if quiet > 0:
                if self._quiet_bulk(quiet, barrier_time, barrier_seq):
                    return
                continue
            self._on_slot()
            # Each tick counts as one processed event, keeping event totals
            # identical to the heap-driven clock.
            sim._processed += 1
            seq = queue._next_seq
            queue._next_seq = seq + 1
            nxt = sim.now + slot
            timer.time = nxt
            timer.seq = seq
            if timer.stopped or not sim._running:
                return
            if nxt > barrier_time or (nxt == barrier_time
                                      and seq > barrier_seq):
                return
            if heap:
                head = heap[0]
                if head[0] < nxt or (head[0] == nxt and head[1] < seq):
                    return
            sim.now = nxt

    def _quiet_run_length(self) -> int:
        """Upcoming ticks guaranteed to grant zero foreground service.

        Inside a slot batch no heap events fire, so foreground backlogs can
        only change through the scheduler's own pulls -- a slot that grants
        nothing leaves the next slot's inputs untouched.  Under round robin
        with an oversubscribed background population (``base == 0``), which
        UEs receive the remainder PRBs is pure modular arithmetic over the
        rotation offset, so the run of grantless slots ahead is computable
        without executing them.  :meth:`_quiet_bulk` then replays only the
        bookkeeping those slots would have done, in one pass.

        The run is capped at the population's next kernel-step boundary
        (``demand_count`` may change there) and is zero whenever any
        foreground UE would be granted, under proportional fair with
        backlogged UEs, or without a background population.
        """
        background = self._background
        if background is None:
            return 0
        boundary = (background._slots_per_step
                    - background._slot_count % background._slots_per_step)
        n_active = 0
        for state in self._ue_states:
            if state.backlog_bytes() > 0:
                n_active += 1
        self._quiet_active_count = n_active
        if n_active == 0:
            # The idle-foreground branch of _on_slot is policy-independent
            # and constant until the boundary refreshes demand_count.
            return boundary
        bg_demand = background.demand_count
        if not bg_demand or not self._round_robin:
            return 0
        total = n_active + bg_demand
        num_prb = self.cell.num_prb
        if num_prb // total > 0:
            return 0  # every backlogged UE gets PRBs every slot
        remainder = num_prb  # base == 0
        offset = self._rr_offset
        quiet = boundary
        for i in range(n_active):
            pos = (i + offset) % total
            if pos < remainder:
                return 0  # the very next slot grants this UE
            until_grant = total - pos  # wraps to 0, which is < remainder
            if until_grant < quiet:
                quiet = until_grant
        return quiet

    def _quiet_bulk(self, quiet: int, barrier_time: float,
                    barrier_seq) -> bool:
        """Run up to ``quiet`` predicted zero-service ticks in one pass.

        Per-tick this replicates exactly the bookkeeping :meth:`_on_slot`
        performs on a slot whose grants are all zero -- slot/busy counters,
        the round-robin rotation, the background PRB hand-off (whole cell:
        foreground got nothing) and the PF throughput-EWMA decay -- and the
        batching collapses are all bit-exact:

        * the tick count that fits before the barrier/heap head is decided
          up front (quiet ticks push nothing onto the heap, so the head key
          is fixed for the whole run);
        * rotating the offset by ``count`` equals ``count`` single steps
          (modular arithmetic; ``demand_count`` is constant up to the
          kernel-step boundary the run is capped at);
        * the background PRB accumulator adds ``prbs * count`` -- all
          integer-valued floats, so repeated ``+= prbs`` sums identically;
        * the EWMA is ``count`` sequential multiplies, and ``keep < 1``
          means a clamped average stays clamped, so the decay loop may
          break early (``keep * average + 0.0 == keep * average``
          bit-exactly, matching both the served- and idle-loop forms).

        Returns ``True`` when the slot batch is over (the tick after the
        last one processed crosses the barrier, the heap head, or the
        timer was stopped).
        """
        sim = self._sim
        queue = sim.events
        heap = queue.heap
        timer = self._timer
        slot = self.cell.slot_duration
        if heap:
            head = heap[0]
            head_time = head[0]
            head_seq = head[1]
        else:
            head_time = None
            head_seq = 0
        seq0 = queue._next_seq
        t = sim.now
        count = 1  # the tick at sim.now is due unconditionally
        over = False
        while count < quiet:
            # Re-arm check of tick ``count``: would tick ``count + 1`` at
            # ``nxt`` with sequence ``seq`` still be the globally next
            # event?  Identical comparisons to the per-tick loop.
            nxt = t + slot
            seq = seq0 + count - 1
            if nxt > barrier_time or (nxt == barrier_time
                                      and seq > barrier_seq):
                over = True
                break
            if head_time is not None and (
                    head_time < nxt or (head_time == nxt and head_seq < seq)):
                over = True
                break
            t = nxt
            count += 1
        background = self._background
        bg_demand = background.demand_count
        self.slots += count
        if self._quiet_active_count:
            self.busy_slots += count
            total = self._quiet_active_count + bg_demand
            self._rr_offset = (self._rr_offset + count) % total
            prbs = self.cell.num_prb
        elif bg_demand:
            self.busy_slots += count
            prbs = self.cell.num_prb
        else:
            prbs = 0
        if prbs:
            background._pending_prb_slots += prbs * count
        background._slot_count += count
        if background._slot_count % background._slots_per_step == 0:
            # ``quiet <= boundary`` caps the run, so the only possible
            # kernel step is at the final tick, whose time is ``t``.
            background._step(t)
        keep = 1.0 - self._decay
        for state in self._ue_states:
            average = state.average_throughput
            for _ in range(count):
                average = keep * average
                if average <= 1.0:
                    average = 1.0  # keep < 1: stays clamped from here on
                    break
            state.average_throughput = average
        sim.now = t
        sim._processed += count
        queue._next_seq = seq0 + count
        seq = seq0 + count - 1
        nxt = t + slot
        timer.time = nxt
        timer.seq = seq
        if over or timer.stopped or not sim._running:
            return True
        if nxt > barrier_time or (nxt == barrier_time and seq > barrier_seq):
            return True
        if heap:
            head = heap[0]
            if head[0] < nxt or (head[0] == nxt and head[1] < seq):
                return True
        sim.now = nxt
        return False

    def _on_slot(self) -> None:
        """One TTI: sample channels, allocate PRBs, drain RLC queues.

        This fires at the slot rate (2 kHz for 30 kHz SCS) for every cell, so
        the loop avoids per-slot dict building where it can: the common
        single-backlogged-UE case takes a direct path, and the PF throughput
        EWMA reads a scratch field instead of a per-slot ``served`` dict.
        """
        self.slots += 1
        now = self._sim.now
        states = self._ue_states
        active = [state for state in states if state.backlog_bytes() > 0]
        decay = self._decay
        keep = 1.0 - decay
        background = self._background
        bg_demand = background.demand_count if background is not None else 0
        if not active:
            if background is not None:
                # The background aggregate owns the whole cell this slot.
                if bg_demand:
                    self.busy_slots += 1
                    background.on_slot(self.cell.num_prb)
                else:
                    background.on_slot(0)
            for state in states:
                average = state.average_throughput * keep
                state.average_throughput = average if average > 1.0 else 1.0
            return
        self.busy_slots += 1
        cell = self.cell
        if bg_demand:
            self._serve_with_background(active, bg_demand, now)
        elif len(active) == 1:
            # Fast path: one backlogged UE owns the whole cell this slot.
            # Mirrors the generic policies exactly: RR (and PF's zero-weight
            # fallback to RR) resets the rotation offset, ``(x + 1) % 1 == 0``.
            state = active[0]
            grant = cell.slot_capacity_bytes(state.channel.efficiency(now))
            if self._round_robin or grant <= 0:
                self._rr_offset = 0
            used = state.pull(grant) if grant > 0 else 0
            state.served_bytes_total += used
            state.scheduled_slots += 1
            state.slot_served = used
        else:
            efficiencies = {s.ue_id: s.channel.efficiency(now)
                            for s in active}
            allocations = self._allocate_prbs(active, efficiencies)
            for state in active:
                prbs = allocations.get(state.ue_id, 0)
                if prbs <= 0:
                    continue
                grant = cell.slot_capacity_bytes(
                    efficiencies[state.ue_id], num_prb=prbs)
                used = state.pull(grant) if grant > 0 else 0
                state.served_bytes_total += used
                state.scheduled_slots += 1
                state.slot_served = used
        if background is not None and not bg_demand:
            # Keep the kernel's batch clock ticking even in idle slots.
            background.on_slot(0)
        inv_slot = self._inv_slot_duration
        for state in states:
            average = (keep * state.average_throughput
                       + decay * (state.slot_served * inv_slot))
            state.average_throughput = average if average > 1.0 else 1.0
            state.slot_served = 0

    def _serve_with_background(self, active: list[_UeSchedulingState],
                               bg_demand: int, now: float) -> None:
        """Split the slot between foreground UEs and the background aggregate.

        Round robin treats the population as ``bg_demand`` extra equal-share
        claimants rotating through the same remainder offset as the
        foreground UEs.  Proportional fair first carves out the background's
        equal aggregate share, then runs PF over the remaining budget.
        """
        cell = self.cell
        num_prb = cell.num_prb
        total_claimants = len(active) + bg_demand
        if self._round_robin:
            base = num_prb // total_claimants
            remainder = num_prb - base * total_claimants
            offset = self._rr_offset
            fg_prbs = 0
            ordered = active if len(active) == 1 \
                else sorted(active, key=lambda s: s.ue_id)
            if self._vectorized and len(ordered) >= _VECTOR_MIN_UES_RR:
                # Pure integer arithmetic: identical to the per-index
                # modcheck in the else-branch, one vector op instead of n.
                grants = (base + ((np.arange(len(ordered)) + offset)
                                  % total_claimants < remainder)).tolist()
            else:
                grants = None
            for index, state in enumerate(ordered):
                if grants is not None:
                    prbs = grants[index]
                else:
                    extra = 1 if ((index + offset) % total_claimants
                                  < remainder) else 0
                    prbs = base + extra
                if prbs <= 0:
                    continue
                fg_prbs += prbs
                grant = cell.slot_capacity_bytes(
                    state.channel.efficiency(now), num_prb=prbs)
                used = state.pull(grant) if grant > 0 else 0
                state.served_bytes_total += used
                state.scheduled_slots += 1
                state.slot_served = used
            self._rr_offset = (offset + 1) % total_claimants
            self._background.on_slot(num_prb - fg_prbs)
            return
        bg_prbs = (num_prb * bg_demand) // total_claimants
        fg_budget = num_prb - bg_prbs
        efficiencies = {s.ue_id: s.channel.efficiency(now) for s in active}
        allocations = self._allocate_proportional_fair(
            active, efficiencies, total_prb=fg_budget)
        for state in active:
            prbs = allocations.get(state.ue_id, 0)
            if prbs <= 0:
                continue
            grant = cell.slot_capacity_bytes(
                efficiencies[state.ue_id], num_prb=prbs)
            used = state.pull(grant) if grant > 0 else 0
            state.served_bytes_total += used
            state.scheduled_slots += 1
            state.slot_served = used
        self._background.on_slot(bg_prbs)

    # ------------------------------------------------------------------ #
    # PRB allocation policies
    # ------------------------------------------------------------------ #
    def _allocate_prbs(self, active: list[_UeSchedulingState],
                       efficiencies: dict[UeId, float]) -> dict[UeId, int]:
        if self.policy == SchedulerPolicy.ROUND_ROBIN:
            return self._allocate_round_robin(active)
        return self._allocate_proportional_fair(active, efficiencies)

    def _allocate_round_robin(
            self, active: list[_UeSchedulingState],
            total_prb: Optional[int] = None) -> dict[UeId, int]:
        total = self.cell.num_prb if total_prb is None else total_prb
        n = len(active)
        base = total // n
        remainder = total - base * n
        allocations: dict[UeId, int] = {}
        ordered = sorted(active, key=lambda s: s.ue_id)
        if self._vectorized and n >= _VECTOR_MIN_UES_RR:
            # Pure integer arithmetic, so the numpy path is trivially equal
            # to the scalar loop below.
            prbs = (base + ((np.arange(n) + self._rr_offset) % n
                            < remainder)).tolist()
            for index, state in enumerate(ordered):
                allocations[state.ue_id] = prbs[index]
        else:
            for index, state in enumerate(ordered):
                extra = 1 if (index + self._rr_offset) % n < remainder else 0
                allocations[state.ue_id] = base + extra
        self._rr_offset = (self._rr_offset + 1) % max(1, n)
        return allocations

    def _allocate_proportional_fair(
            self, active: list[_UeSchedulingState],
            efficiencies: dict[UeId, float],
            total_prb: Optional[int] = None) -> dict[UeId, int]:
        budget = self.cell.num_prb if total_prb is None else total_prb
        weights: dict[UeId, float] = {}
        if self._vectorized and len(active) >= _VECTOR_MIN_UES_PF:
            weights = self._pf_weights_vector(active, efficiencies)
        else:
            for state in active:
                instantaneous = self.cell.slot_capacity_bytes(
                    efficiencies[state.ue_id]) / self.cell.slot_duration
                weights[state.ue_id] = instantaneous / state.average_throughput
        # Builtin sum over insertion order -- np.sum's pairwise reduction
        # would round differently and break cross-backend bit-identity.
        total_weight = sum(weights.values())
        if total_weight <= 0:
            return self._allocate_round_robin(active, total_prb=total_prb)
        allocations: dict[UeId, int] = {}
        assigned = 0
        ordered = sorted(active, key=lambda s: -weights[s.ue_id])
        for state in ordered:
            share = int(round(budget * weights[state.ue_id]
                              / total_weight))
            share = min(share, budget - assigned)
            allocations[state.ue_id] = share
            assigned += share
        leftover = budget - assigned
        if leftover > 0 and ordered:
            allocations[ordered[0].ue_id] += leftover
        return allocations

    def _pf_weights_vector(self, active: list[_UeSchedulingState],
                           efficiencies: dict[UeId, float]
                           ) -> dict[UeId, float]:
        """Numpy PF weights, bit-identical to the scalar loop.

        Every operation replicates the scalar evaluation order of
        ``CellConfig.bytes_per_prb`` / ``slot_capacity_bytes`` elementwise
        (same doubles in, same doubles out), and the int truncation matches
        ``int()`` for the non-negative capacities involved.
        """
        cell = self.cell
        effs = np.array([efficiencies[state.ue_id] for state in active])
        averages = np.array([state.average_throughput for state in active])
        usable_re = cell.RE_PER_PRB_PER_SLOT * (1.0 - cell.overhead)
        bits = (usable_re * effs) * cell.efficiency_backoff
        bytes_per_prb = (bits * cell.tdd_dl_fraction) / 8.0
        capacities = (cell.num_prb * bytes_per_prb).astype(np.int64)
        instantaneous = capacities / cell.slot_duration
        values = (instantaneous / averages).tolist()
        return {state.ue_id: values[index]
                for index, state in enumerate(active)}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def throughput_report(self) -> dict[UeId, float]:
        """Average served rate (bytes/s) per UE since the start of the run."""
        elapsed = max(self._sim.now, self.cell.slot_duration)
        return {ue_id: state.served_bytes_total / elapsed
                for ue_id, state in self._ues.items()}
