"""MAC scheduler: slot-by-slot allocation of cell resources to UEs.

Every slot (0.5 ms for the paper's 30 kHz numerology) the scheduler looks at
which UEs have backlogged RLC data, samples each one's channel, and divides
the cell's PRBs among them:

* **round robin (RR)** -- equal PRB shares for every backlogged UE;
* **proportional fair (PF)** -- shares proportional to
  ``instantaneous_rate / average_throughput``, which trades some short-term
  fairness for multi-user diversity gain.

The allocated PRBs are converted to transport-block bytes using the UE's
spectral efficiency and handed to the DU's per-UE ``pull`` callback, which
drains the RLC queues.  The paper's Fig. 10 evaluates L4Span under both
policies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.channel.base import ChannelModel
from repro.ran.cell import CellConfig
from repro.ran.identifiers import UeId
from repro.registry import SCHEDULERS
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess


class SchedulerPolicy(enum.Enum):
    """Supported MAC scheduling policies."""

    ROUND_ROBIN = "rr"
    PROPORTIONAL_FAIR = "pf"


SCHEDULERS.add("rr", SchedulerPolicy.ROUND_ROBIN, "round_robin")
SCHEDULERS.add("pf", SchedulerPolicy.PROPORTIONAL_FAIR, "proportional_fair")


def resolve_scheduler(name) -> SchedulerPolicy:
    """Map a policy name (or a policy member) onto :class:`SchedulerPolicy`."""
    if isinstance(name, SchedulerPolicy):
        return name
    return SCHEDULERS.get(name)


@dataclass
class _UeSchedulingState:
    """Book-keeping the scheduler maintains for each attached UE."""

    ue_id: UeId
    channel: ChannelModel
    backlog_bytes: Callable[[], int]
    pull: Callable[[int], int]
    average_throughput: float = 1.0  # bytes/s, seeded > 0 to avoid div-by-zero
    served_bytes_total: int = 0
    scheduled_slots: int = 0


class MacScheduler:
    """The cell's downlink scheduler.

    Args:
        sim: simulator.
        cell: static cell configuration.
        policy: RR or PF.
        pf_time_constant: averaging horizon (seconds) of the PF throughput
            EWMA.
        start: when to start the slot clock (defaults to time zero).
    """

    def __init__(self, sim: Simulator, cell: CellConfig,
                 policy: SchedulerPolicy = SchedulerPolicy.ROUND_ROBIN,
                 pf_time_constant: float = 0.1,
                 start: Optional[float] = None) -> None:
        self._sim = sim
        self.cell = cell
        self.policy = policy
        self.pf_time_constant = pf_time_constant
        self._ues: dict[UeId, _UeSchedulingState] = {}
        self._rr_offset = 0
        self.slots = 0
        self.busy_slots = 0
        self._process = PeriodicProcess(
            sim, cell.slot_duration, self._on_slot,
            start_at=start if start is not None else sim.now,
            name="mac-slot")

    # ------------------------------------------------------------------ #
    # Attachment
    # ------------------------------------------------------------------ #
    def register_ue(self, ue_id: UeId, channel: ChannelModel,
                    backlog_bytes: Callable[[], int],
                    pull: Callable[[int], int]) -> None:
        """Attach a UE: the DU provides backlog and pull callbacks."""
        self._ues[ue_id] = _UeSchedulingState(
            ue_id=ue_id, channel=channel, backlog_bytes=backlog_bytes,
            pull=pull)

    @property
    def num_ues(self) -> int:
        """Number of attached UEs."""
        return len(self._ues)

    def stop(self) -> None:
        """Stop the slot clock (end of scenario)."""
        self._process.stop()

    # ------------------------------------------------------------------ #
    # Slot processing
    # ------------------------------------------------------------------ #
    def _on_slot(self) -> None:
        self.slots += 1
        now = self._sim.now
        active = [state for state in self._ues.values()
                  if state.backlog_bytes() > 0]
        decay = self.cell.slot_duration / self.pf_time_constant
        if not active:
            for state in self._ues.values():
                state.average_throughput *= (1.0 - decay)
                state.average_throughput = max(state.average_throughput, 1.0)
            return
        self.busy_slots += 1
        efficiencies = {s.ue_id: s.channel.efficiency(now) for s in active}
        allocations = self._allocate_prbs(active, efficiencies)
        served: dict[UeId, int] = {}
        for state in active:
            prbs = allocations.get(state.ue_id, 0)
            if prbs <= 0:
                served[state.ue_id] = 0
                continue
            grant = self.cell.slot_capacity_bytes(
                efficiencies[state.ue_id], num_prb=prbs)
            used = state.pull(grant) if grant > 0 else 0
            state.served_bytes_total += used
            state.scheduled_slots += 1
            served[state.ue_id] = used
        for state in self._ues.values():
            rate = served.get(state.ue_id, 0) / self.cell.slot_duration
            state.average_throughput = ((1.0 - decay) * state.average_throughput
                                        + decay * rate)
            state.average_throughput = max(state.average_throughput, 1.0)

    # ------------------------------------------------------------------ #
    # PRB allocation policies
    # ------------------------------------------------------------------ #
    def _allocate_prbs(self, active: list[_UeSchedulingState],
                       efficiencies: dict[UeId, float]) -> dict[UeId, int]:
        if self.policy == SchedulerPolicy.ROUND_ROBIN:
            return self._allocate_round_robin(active)
        return self._allocate_proportional_fair(active, efficiencies)

    def _allocate_round_robin(
            self, active: list[_UeSchedulingState]) -> dict[UeId, int]:
        total = self.cell.num_prb
        n = len(active)
        base = total // n
        remainder = total - base * n
        allocations: dict[UeId, int] = {}
        ordered = sorted(active, key=lambda s: s.ue_id)
        for index, state in enumerate(ordered):
            extra = 1 if (index + self._rr_offset) % n < remainder else 0
            allocations[state.ue_id] = base + extra
        self._rr_offset = (self._rr_offset + 1) % max(1, n)
        return allocations

    def _allocate_proportional_fair(
            self, active: list[_UeSchedulingState],
            efficiencies: dict[UeId, float]) -> dict[UeId, int]:
        weights: dict[UeId, float] = {}
        for state in active:
            instantaneous = self.cell.slot_capacity_bytes(
                efficiencies[state.ue_id]) / self.cell.slot_duration
            weights[state.ue_id] = instantaneous / state.average_throughput
        total_weight = sum(weights.values())
        if total_weight <= 0:
            return self._allocate_round_robin(active)
        allocations: dict[UeId, int] = {}
        assigned = 0
        ordered = sorted(active, key=lambda s: -weights[s.ue_id])
        for state in ordered:
            share = int(round(self.cell.num_prb * weights[state.ue_id]
                              / total_weight))
            share = min(share, self.cell.num_prb - assigned)
            allocations[state.ue_id] = share
            assigned += share
        leftover = self.cell.num_prb - assigned
        if leftover > 0 and ordered:
            allocations[ordered[0].ue_id] += leftover
        return allocations

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def throughput_report(self) -> dict[UeId, float]:
        """Average served rate (bytes/s) per UE since the start of the run."""
        elapsed = max(self._sim.now, self.cell.slot_duration)
        return {ue_id: state.served_bytes_total / elapsed
                for ue_id, state in self._ues.items()}
