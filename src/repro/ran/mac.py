"""MAC scheduler: slot-by-slot allocation of cell resources to UEs.

Every slot (0.5 ms for the paper's 30 kHz numerology) the scheduler looks at
which UEs have backlogged RLC data, samples each one's channel, and divides
the cell's PRBs among them:

* **round robin (RR)** -- equal PRB shares for every backlogged UE;
* **proportional fair (PF)** -- shares proportional to
  ``instantaneous_rate / average_throughput``, which trades some short-term
  fairness for multi-user diversity gain.

The allocated PRBs are converted to transport-block bytes using the UE's
spectral efficiency and handed to the DU's per-UE ``pull`` callback, which
drains the RLC queues.  The paper's Fig. 10 evaluates L4Span under both
policies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.channel.base import ChannelModel
from repro.ran.cell import CellConfig
from repro.ran.identifiers import UeId
from repro.registry import SCHEDULERS
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess


class SchedulerPolicy(enum.Enum):
    """Supported MAC scheduling policies."""

    ROUND_ROBIN = "rr"
    PROPORTIONAL_FAIR = "pf"


SCHEDULERS.add("rr", SchedulerPolicy.ROUND_ROBIN, "round_robin")
SCHEDULERS.add("pf", SchedulerPolicy.PROPORTIONAL_FAIR, "proportional_fair")


def resolve_scheduler(name) -> SchedulerPolicy:
    """Map a policy name (or a policy member) onto :class:`SchedulerPolicy`."""
    if isinstance(name, SchedulerPolicy):
        return name
    return SCHEDULERS.get(name)


@dataclass(slots=True)
class _UeSchedulingState:
    """Book-keeping the scheduler maintains for each attached UE."""

    ue_id: UeId
    channel: ChannelModel
    backlog_bytes: Callable[[], int]
    pull: Callable[[int], int]
    average_throughput: float = 1.0  # bytes/s, seeded > 0 to avoid div-by-zero
    served_bytes_total: int = 0
    scheduled_slots: int = 0
    #: Bytes served in the slot being processed (scratch for the EWMA pass).
    slot_served: int = 0


class MacScheduler:
    """The cell's downlink scheduler.

    Args:
        sim: simulator.
        cell: static cell configuration.
        policy: RR or PF.
        pf_time_constant: averaging horizon (seconds) of the PF throughput
            EWMA.
        start: when to start the slot clock (defaults to time zero).
    """

    def __init__(self, sim: Simulator, cell: CellConfig,
                 policy: SchedulerPolicy = SchedulerPolicy.ROUND_ROBIN,
                 pf_time_constant: float = 0.1,
                 start: Optional[float] = None) -> None:
        self._sim = sim
        self.cell = cell
        self.policy = policy
        self.pf_time_constant = pf_time_constant
        self._ues: dict[UeId, _UeSchedulingState] = {}
        #: Registration-ordered view of the states; the slot loop iterates
        #: this list instead of allocating a ``dict.values()`` view per slot.
        self._ue_states: list[_UeSchedulingState] = []
        #: Aggregated background population sharing the cell, or None.
        self._background = None
        self._rr_offset = 0
        self.slots = 0
        self.busy_slots = 0
        # Per-slot constants hoisted off the hot loop.
        self._decay = cell.slot_duration / pf_time_constant
        self._inv_slot_duration = 1.0 / cell.slot_duration
        self._round_robin = policy == SchedulerPolicy.ROUND_ROBIN
        self._process = PeriodicProcess(
            sim, cell.slot_duration, self._on_slot,
            start_at=start if start is not None else sim.now,
            name="mac-slot")

    # ------------------------------------------------------------------ #
    # Attachment
    # ------------------------------------------------------------------ #
    def register_ue(self, ue_id: UeId, channel: ChannelModel,
                    backlog_bytes: Callable[[], int],
                    pull: Callable[[int], int]) -> None:
        """Attach a UE: the DU provides backlog and pull callbacks."""
        state = _UeSchedulingState(
            ue_id=ue_id, channel=channel, backlog_bytes=backlog_bytes,
            pull=pull)
        previous = self._ues.get(ue_id)
        if previous is not None:
            self._ue_states[self._ue_states.index(previous)] = state
        else:
            self._ue_states.append(state)
        self._ues[ue_id] = state

    def unregister_ue(self, ue_id: UeId) -> None:
        """Stop scheduling a UE (it detached or handed over away)."""
        state = self._ues.pop(ue_id, None)
        if state is not None:
            self._ue_states.remove(state)

    def attach_background(self, population) -> None:
        """Attach the cell's aggregated background population.

        The population (see :class:`repro.ran.background.BackgroundPopulation`)
        enters every slot as ``population.demand_count`` extra round-robin
        claimants; the PRBs not granted to foreground UEs are accumulated via
        ``population.on_slot`` and served by its next batched kernel step.
        """
        self._background = population

    @property
    def num_ues(self) -> int:
        """Number of attached UEs."""
        return len(self._ues)

    def stop(self) -> None:
        """Stop the slot clock (end of scenario)."""
        self._process.stop()

    # ------------------------------------------------------------------ #
    # Slot processing
    # ------------------------------------------------------------------ #
    def _on_slot(self) -> None:
        """One TTI: sample channels, allocate PRBs, drain RLC queues.

        This fires at the slot rate (2 kHz for 30 kHz SCS) for every cell, so
        the loop avoids per-slot dict building where it can: the common
        single-backlogged-UE case takes a direct path, and the PF throughput
        EWMA reads a scratch field instead of a per-slot ``served`` dict.
        """
        self.slots += 1
        now = self._sim.now
        states = self._ue_states
        active = [state for state in states if state.backlog_bytes() > 0]
        decay = self._decay
        keep = 1.0 - decay
        background = self._background
        bg_demand = background.demand_count if background is not None else 0
        if not active:
            if background is not None:
                # The background aggregate owns the whole cell this slot.
                if bg_demand:
                    self.busy_slots += 1
                    background.on_slot(self.cell.num_prb)
                else:
                    background.on_slot(0)
            for state in states:
                average = state.average_throughput * keep
                state.average_throughput = average if average > 1.0 else 1.0
            return
        self.busy_slots += 1
        cell = self.cell
        if bg_demand:
            self._serve_with_background(active, bg_demand, now)
        elif len(active) == 1:
            # Fast path: one backlogged UE owns the whole cell this slot.
            # Mirrors the generic policies exactly: RR (and PF's zero-weight
            # fallback to RR) resets the rotation offset, ``(x + 1) % 1 == 0``.
            state = active[0]
            grant = cell.slot_capacity_bytes(state.channel.efficiency(now))
            if self._round_robin or grant <= 0:
                self._rr_offset = 0
            used = state.pull(grant) if grant > 0 else 0
            state.served_bytes_total += used
            state.scheduled_slots += 1
            state.slot_served = used
        else:
            efficiencies = {s.ue_id: s.channel.efficiency(now)
                            for s in active}
            allocations = self._allocate_prbs(active, efficiencies)
            for state in active:
                prbs = allocations.get(state.ue_id, 0)
                if prbs <= 0:
                    continue
                grant = cell.slot_capacity_bytes(
                    efficiencies[state.ue_id], num_prb=prbs)
                used = state.pull(grant) if grant > 0 else 0
                state.served_bytes_total += used
                state.scheduled_slots += 1
                state.slot_served = used
        if background is not None and not bg_demand:
            # Keep the kernel's batch clock ticking even in idle slots.
            background.on_slot(0)
        inv_slot = self._inv_slot_duration
        for state in states:
            average = (keep * state.average_throughput
                       + decay * (state.slot_served * inv_slot))
            state.average_throughput = average if average > 1.0 else 1.0
            state.slot_served = 0

    def _serve_with_background(self, active: list[_UeSchedulingState],
                               bg_demand: int, now: float) -> None:
        """Split the slot between foreground UEs and the background aggregate.

        Round robin treats the population as ``bg_demand`` extra equal-share
        claimants rotating through the same remainder offset as the
        foreground UEs.  Proportional fair first carves out the background's
        equal aggregate share, then runs PF over the remaining budget.
        """
        cell = self.cell
        num_prb = cell.num_prb
        total_claimants = len(active) + bg_demand
        if self._round_robin:
            base = num_prb // total_claimants
            remainder = num_prb - base * total_claimants
            offset = self._rr_offset
            fg_prbs = 0
            ordered = sorted(active, key=lambda s: s.ue_id)
            for index, state in enumerate(ordered):
                extra = 1 if (index + offset) % total_claimants < remainder \
                    else 0
                prbs = base + extra
                if prbs <= 0:
                    continue
                fg_prbs += prbs
                grant = cell.slot_capacity_bytes(
                    state.channel.efficiency(now), num_prb=prbs)
                used = state.pull(grant) if grant > 0 else 0
                state.served_bytes_total += used
                state.scheduled_slots += 1
                state.slot_served = used
            self._rr_offset = (offset + 1) % total_claimants
            self._background.on_slot(num_prb - fg_prbs)
            return
        bg_prbs = (num_prb * bg_demand) // total_claimants
        fg_budget = num_prb - bg_prbs
        efficiencies = {s.ue_id: s.channel.efficiency(now) for s in active}
        allocations = self._allocate_proportional_fair(
            active, efficiencies, total_prb=fg_budget)
        for state in active:
            prbs = allocations.get(state.ue_id, 0)
            if prbs <= 0:
                continue
            grant = cell.slot_capacity_bytes(
                efficiencies[state.ue_id], num_prb=prbs)
            used = state.pull(grant) if grant > 0 else 0
            state.served_bytes_total += used
            state.scheduled_slots += 1
            state.slot_served = used
        self._background.on_slot(bg_prbs)

    # ------------------------------------------------------------------ #
    # PRB allocation policies
    # ------------------------------------------------------------------ #
    def _allocate_prbs(self, active: list[_UeSchedulingState],
                       efficiencies: dict[UeId, float]) -> dict[UeId, int]:
        if self.policy == SchedulerPolicy.ROUND_ROBIN:
            return self._allocate_round_robin(active)
        return self._allocate_proportional_fair(active, efficiencies)

    def _allocate_round_robin(
            self, active: list[_UeSchedulingState],
            total_prb: Optional[int] = None) -> dict[UeId, int]:
        total = self.cell.num_prb if total_prb is None else total_prb
        n = len(active)
        base = total // n
        remainder = total - base * n
        allocations: dict[UeId, int] = {}
        ordered = sorted(active, key=lambda s: s.ue_id)
        for index, state in enumerate(ordered):
            extra = 1 if (index + self._rr_offset) % n < remainder else 0
            allocations[state.ue_id] = base + extra
        self._rr_offset = (self._rr_offset + 1) % max(1, n)
        return allocations

    def _allocate_proportional_fair(
            self, active: list[_UeSchedulingState],
            efficiencies: dict[UeId, float],
            total_prb: Optional[int] = None) -> dict[UeId, int]:
        budget = self.cell.num_prb if total_prb is None else total_prb
        weights: dict[UeId, float] = {}
        for state in active:
            instantaneous = self.cell.slot_capacity_bytes(
                efficiencies[state.ue_id]) / self.cell.slot_duration
            weights[state.ue_id] = instantaneous / state.average_throughput
        total_weight = sum(weights.values())
        if total_weight <= 0:
            return self._allocate_round_robin(active, total_prb=total_prb)
        allocations: dict[UeId, int] = {}
        assigned = 0
        ordered = sorted(active, key=lambda s: -weights[s.ue_id])
        for state in ordered:
            share = int(round(budget * weights[state.ue_id]
                              / total_weight))
            share = min(share, budget - assigned)
            allocations[state.ue_id] = share
            assigned += share
        leftover = budget - assigned
        if leftover > 0 and ordered:
            allocations[ordered[0].ue_id] += leftover
        return allocations

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def throughput_report(self) -> dict[UeId, float]:
        """Average served rate (bytes/s) per UE since the start of the run."""
        elapsed = max(self._sim.now, self.cell.slot_duration)
        return {ue_id: state.served_bytes_total / elapsed
                for ue_id, state in self._ues.items()}
