"""Inter-cell handover: UEs moving between the scenario's gNBs.

Mobility is the one workload that genuinely couples cells: a UE's transport
state (cumulative ACK point, AccECN counters), its queued RLC data and its
5G-core route all have to move from the source cell to the target cell in
the middle of a transfer -- exactly where L4S queue-delay guarantees are
most fragile.  This module owns the execution semantics; *when* a handover
happens comes either from a schedule
(:class:`~repro.experiments.spec.HandoverSpec` entries) or from the SNR
monitor below.

Execution timeline of one handover at time ``t``:

1. **Detach** (source cell, at ``t``): the UE's MAC registration, RLC
   entities and SDAP/PDCP state are removed.  RLC SDUs still waiting for a
   grant are *released*: forwarded to the target cell (``ho_mode
   "forward"``, the Xn data-forwarding path, arriving ``interruption_s``
   later) or flushed (``"flush"``, loss the transport must recover from).
   Transport blocks already on the air complete against the released entity
   and are abandoned; SDUs parked in the in-order delivery buffer are
   dropped.  Packets racing the detach through the core or F1-U are dropped
   and counted.
2. **Transfer** (at ``t``): each of the UE's flows exports its receiver
   state (:meth:`~repro.cc.receiver.TcpReceiver.export_state`).  In a
   sharded run the transfer crosses the shard boundary as a control
   message; in the single loop it is applied directly.  Either way it is in
   place before the target cell can deliver anything.
3. **Attach** (target cell, at ``t``): a fresh :class:`UeContext` is built
   with **attach-qualified random streams** (``"air-ue3#a1"``,
   ``"channel-ue3#a1"``, ...), fresh bearers are created (buffering arriving
   downlink data), fresh receivers adopt the transferred state, and the 5G
   core re-routes the UE's address to the target gNB.
4. **Service resumes** at ``t + interruption_s``: only then does the target
   MAC grant the UE air time (RACH + path switch), which is what makes the
   interruption observable as a per-flow delay spike.

The attach-qualified stream names are the mobility half of the sharded
determinism contract: a stream's draw sequence is identical whether the
target cell runs in the shared event loop or in its own shard process,
because the stream is born at the attach in both cases.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess


@dataclass(frozen=True)
class Transition:
    """One resolved handover: ``ue_id`` moves ``from_cell`` -> ``to_cell``.

    ``attach_index`` counts the UE's attachments (initial attach is 0), and
    qualifies every random stream the new attachment creates.
    """

    time: float
    ue_id: int
    from_cell: int
    to_cell: int
    attach_index: int

    @property
    def stream_tag(self) -> str:
        """Suffix qualifying the new attachment's random streams."""
        return f"#a{self.attach_index}"


@dataclass
class HandoverTransfer:
    """The state one handover carries from the source to the target cell.

    Picklable: in a sharded run this is the control message that crosses
    the shard boundary.
    """

    ue_id: int
    attach_index: int
    time: float
    receiver_states: dict[int, dict] = field(default_factory=dict)
    forwarded: list[tuple[int, Packet]] = field(default_factory=list)


@dataclass(frozen=True)
class HandoverDecision:
    """Phase one of an SNR-triggered handover: decided, not yet executed.

    The serving loop's monitor *decides* at ``decided_at`` and every event
    loop (the decider included) *commits* — runs the actual transition — at
    ``commit_at = decided_at + commit_lag``.  Picklable: in a sharded run
    this is the broadcast control message published at the decision
    window's barrier, and the commit lag is sized so it always reaches
    every shard (and every in-flight routing lookup has resolved) strictly
    before the commit time.
    """

    ue_id: int
    from_cell: int
    to_cell: int
    decided_at: float
    commit_at: float
    attach_index: int

    def transition(self) -> Transition:
        """The resolved transition this decision commits to."""
        return Transition(time=self.commit_at, ue_id=self.ue_id,
                          from_cell=self.from_cell, to_cell=self.to_cell,
                          attach_index=self.attach_index)


@dataclass
class MobilityTopology:
    """The full-scenario view the manager needs, as plain data.

    A sharded run builds one manager per shard from the *full* spec (each
    sub-spec only knows its own cells), so this is deliberately independent
    of the scenario builder.

    Attributes:
        itineraries: per-UE ``[(attach_time, cell_id), ...]``; the first
            entry is ``(0.0, initial_cell)``.  UEs that never move may be
            omitted.
        ue_specs: fully resolved per-UE spec objects by UE id (duck-typed:
            ``channel_profile``, ``mean_snr_db``, ``rlc_mode``, ...).
        flows_by_ue: the resolved flow specs terminating at each UE.
        cells_order: every cell id in declaration order (the SNR monitor's
            candidate ring).
    """

    itineraries: dict[int, list[tuple[float, int]]]
    ue_specs: dict[int, object]
    flows_by_ue: dict[int, list]
    cells_order: list[int]

    def transitions(self) -> list[Transition]:
        """Every scheduled handover, in (time, ue) order."""
        out = []
        for ue_id, itinerary in self.itineraries.items():
            for index in range(1, len(itinerary)):
                out.append(Transition(
                    time=itinerary[index][0], ue_id=ue_id,
                    from_cell=itinerary[index - 1][1],
                    to_cell=itinerary[index][1],
                    attach_index=index))
        out.sort(key=lambda tr: (tr.time, tr.ue_id))
        return out

    def mobile_ue_ids(self) -> set[int]:
        """UEs with at least one handover in their itinerary."""
        return {ue_id for ue_id, itin in self.itineraries.items()
                if len(itin) > 1}


def serving_cell(itinerary: list[tuple[float, int]], t: float) -> int:
    """The cell serving the UE at time ``t`` under ``itinerary``.

    A handover at time ``h`` serves from the target cell for all ``t >= h``
    -- mirroring the single loop, where the core's route switches the
    instant the handover event fires.  Per-packet callers should use
    :class:`ItineraryLookup` instead, which caches the bisect arrays.
    """
    return ItineraryLookup(itinerary).cell_at(t)


class ItineraryLookup:
    """Pre-split (times, cells) arrays for per-packet serving-cell lookups.

    Itineraries are immutable once a scenario is built, but the serving
    shard of a mobile flow is resolved once per downlink packet -- this
    caches the bisect arrays so the hot path allocates nothing.
    """

    __slots__ = ("_times", "_cells")

    def __init__(self, itinerary: list[tuple[float, int]]) -> None:
        self._times = [entry[0] for entry in itinerary]
        self._cells = [entry[1] for entry in itinerary]

    def cell_at(self, t: float) -> int:
        """The serving cell at time ``t`` (handover boundaries inclusive)."""
        return self._cells[max(bisect_right(self._times, t) - 1, 0)]


class MobilityManager:
    """Executes handovers against one event loop's worth of cells.

    In the single loop every cell is local and the manager runs each
    handover end to end.  In a sharded run each shard's manager executes
    only the locally relevant halves (departures from its cells, arrivals
    into them) and ships :class:`HandoverTransfer` messages through the
    ``transfer_out`` callable when source and target live on different
    shards.

    Args:
        scenario: the built scenario (duck-typed: ``sim``, ``core``,
            ``gnbs``, ``ues``, ``receivers``, ``build_mobile_ue``,
            ``attach_flow_endpoint``, ``register_ue_route``,
            ``invalidate_samplers``).
        topology: the full-scenario :class:`MobilityTopology`.
        config: the spec's mobility block (duck-typed:
            ``interruption_s``, ``ho_mode``, ``mode``, SNR knobs).
        local_cells: cells this manager owns, or None for all of them.
        transfer_out: cross-shard transfer dispatch
            ``(transfer, target_cell) -> None``; None applies locally.
        visiting_ues: UEs whose *home* shard is elsewhere -- tracked for
            the synchronizer's boundary-drained report.
        commit_lag: decide-to-commit delay of SNR-triggered handovers (the
            two-phase protocol; see :class:`HandoverDecision`).  The single
            loop and every shard must use the same value for a sharded run
            to be bit-identical.
        decision_out: cross-shard decision broadcast
            ``(decision) -> None`` invoked at decide time; None on the
            single loop (nobody else needs to hear about it).
    """

    def __init__(self, scenario, topology: MobilityTopology, config,
                 local_cells: Optional[set[int]] = None,
                 transfer_out: Optional[Callable] = None,
                 visiting_ues: Optional[set[int]] = None,
                 commit_lag: float = 0.0,
                 decision_out: Optional[Callable] = None) -> None:
        self._scenario = scenario
        self._sim: Simulator = scenario.sim
        self.topology = topology
        self.config = config
        self._local_cells = local_cells
        self._transfer_out = transfer_out
        self._visiting_ues = visiting_ues or set()
        self._interruption = config.interruption_s
        self._forward = config.ho_mode == "forward"
        self._commit_lag = commit_lag
        self._decision_out = decision_out
        #: ue_id -> (attach_index, cell_id, gnb, UeContext) of the current
        #: *local* attachment; absent while the UE is served elsewhere.
        self._attached: dict[int, tuple[int, int, object, object]] = {}
        self._visiting_now: set[int] = set()
        self._visitor_ctxs: list = []
        self._records: dict[tuple[int, float], dict] = {}
        self._last_ho: dict[int, float] = {}
        #: UEs with a decided-but-not-yet-committed handover (the decider's
        #: re-trigger guard) and the (ue, commit_at) keys already adopted
        #: (the broadcast dedup).
        self._pending_commits: set[int] = set()
        self._adopted: set[tuple[int, float]] = set()
        self._snr_process: Optional[PeriodicProcess] = None
        self._install()

    # ------------------------------------------------------------------ #
    # Setup
    # ------------------------------------------------------------------ #
    def _is_local(self, cell_id: int) -> bool:
        return self._local_cells is None or cell_id in self._local_cells

    def _install(self) -> None:
        scenario = self._scenario
        for gnb in scenario.gnbs.values():
            # Packets racing a detach must drop like a real network, not
            # blow up the loop.
            gnb.cu.drop_unknown_ue = True
            gnb.du.drop_orphan_sdus = True
        for ue_id, ctx in scenario.ues.items():
            cell = scenario.ue_specs[ue_id].cell_id
            if self._is_local(cell):
                self._attached[ue_id] = (0, cell, scenario.gnbs[cell], ctx)
        for tr in self.topology.transitions():
            if self._is_local(tr.from_cell) or self._is_local(tr.to_cell):
                self._sim.schedule_at(tr.time, self._execute_transition, tr)
        if self.config.mode == "snr":
            self._snr_process = PeriodicProcess(
                self._sim, self.config.check_interval_s, self._snr_check,
                name="mobility-snr")

    def stop(self) -> None:
        """Stop periodic machinery (the SNR monitor)."""
        if self._snr_process is not None:
            self._snr_process.stop()

    # ------------------------------------------------------------------ #
    # Handover execution
    # ------------------------------------------------------------------ #
    def _execute_transition(self, tr: Transition) -> None:
        transfer = None
        if self._is_local(tr.from_cell):
            transfer = self._depart(tr)
        if self._is_local(tr.to_cell):
            self._arrive(tr)
        if transfer is not None:
            if self._is_local(tr.to_cell):
                self.apply_transfer(transfer)
            elif self._transfer_out is not None:
                self._transfer_out(transfer, tr.to_cell)
        self._last_ho[tr.ue_id] = tr.time

    def _depart(self, tr: Transition) -> HandoverTransfer:
        scenario = self._scenario
        self._attached.pop(tr.ue_id, None)
        gnb = scenario.gnbs[tr.from_cell]
        released = gnb.detach_ue(tr.ue_id)
        forwarded: list[tuple[int, Packet]] = []
        flushed = 0
        pending_dropped = 0
        for drb_id, entity in released:
            packets, pending = entity.release()
            pending_dropped += pending
            if self._forward:
                forwarded.extend((drb_id, packet) for packet in packets)
            else:
                flushed += len(packets)
        states: dict[int, dict] = {}
        for flow in self.topology.flows_by_ue.get(tr.ue_id, []):
            receiver = scenario.receivers.get(flow.flow_id)
            if receiver is None:
                continue
            states[flow.flow_id] = receiver.export_state()
            stop = getattr(receiver, "stop", None)
            if stop is not None:  # periodic feedback clocks (SCReAM)
                stop()
        self._visiting_now.discard(tr.ue_id)
        self._merge_record(tr, {
            "forwarded_sdus": len(forwarded), "flushed_sdus": flushed,
            "pending_dropped": pending_dropped, "ho_mode": self.config.ho_mode})
        scenario.invalidate_samplers()
        return HandoverTransfer(ue_id=tr.ue_id, attach_index=tr.attach_index,
                                time=tr.time, receiver_states=states,
                                forwarded=forwarded)

    def _arrive(self, tr: Transition) -> None:
        scenario = self._scenario
        gnb = scenario.gnbs[tr.to_cell]
        tag = tr.stream_tag
        ue_spec = self.topology.ue_specs[tr.ue_id]
        ue = scenario.build_mobile_ue(ue_spec, tr.to_cell, tag)
        gnb.attach_ue(ue, bearer_tag=tag, register_mac=False)
        gnb.du.air.rebind_ue(tr.ue_id, f"air-ue{tr.ue_id}{tag}")
        tagger = getattr(gnb.marker, "set_ue_stream_tag", None)
        if tagger is not None:
            tagger(tr.ue_id, tag)
        scenario.register_ue_route(tr.ue_id, gnb)
        scenario.ues[tr.ue_id] = ue
        for flow in self.topology.flows_by_ue.get(tr.ue_id, []):
            scenario.attach_flow_endpoint(flow, ue)
        completed_at = tr.time + self._interruption
        self._sim.schedule_at(completed_at, self._activate, tr, ue)
        self._attached[tr.ue_id] = (tr.attach_index, tr.to_cell, gnb, ue)
        if tr.ue_id in self._visiting_ues:
            self._visiting_now.add(tr.ue_id)
            self._visitor_ctxs.append(ue)
        self._merge_record(tr, {"completed_at": completed_at})
        scenario.invalidate_samplers()

    def _activate(self, tr: Transition, ue) -> None:
        """End of the interruption window: the target MAC starts serving."""
        entry = self._attached.get(tr.ue_id)
        if entry is None or entry[0] != tr.attach_index:
            return  # the UE already moved on (guarded ping-pong)
        entry[2].du.register_with_mac(ue)

    def apply_transfer(self, transfer: HandoverTransfer) -> None:
        """Adopt a transfer at the target cell (local call or shard inject)."""
        entry = self._attached.get(transfer.ue_id)
        if entry is None or entry[0] != transfer.attach_index:
            return  # stale: the UE departed again before the state landed
        for flow_id, state in transfer.receiver_states.items():
            receiver = self._scenario.receivers.get(flow_id)
            if receiver is not None:
                receiver.import_state(state)
        if transfer.forwarded:
            self._sim.schedule_at(transfer.time + self._interruption,
                                  self._resubmit_forwarded, transfer)

    def _resubmit_forwarded(self, transfer: HandoverTransfer) -> None:
        """Xn-forwarded SDUs reach the target cell's PDCP (in order)."""
        entry = self._attached.get(transfer.ue_id)
        if entry is None or entry[0] != transfer.attach_index:
            return
        cu = entry[2].cu
        for drb_id, packet in transfer.forwarded:
            cu.resubmit_downlink(transfer.ue_id, drb_id, packet)

    # ------------------------------------------------------------------ #
    # SNR-triggered mobility: two-phase decide-then-commit
    # ------------------------------------------------------------------ #
    def _snr_check(self) -> None:
        """Phase one: the serving loop's monitor *decides* handovers.

        A decision never executes inline — it is committed ``commit_lag``
        later by :meth:`_commit_decision`, on this loop and (via
        ``decision_out`` → :meth:`adopt_decision`) on every other shard,
        all at the same simulation time.  The single loop follows the
        identical timeline so a sharded run is bit-identical.
        """
        config = self.config
        min_stay = max(config.min_stay_s, self._interruption)
        now = self._sim.now
        watched = config.ues or sorted(self.topology.ue_specs)
        for ue_id in watched:
            entry = self._attached.get(ue_id)
            if entry is None:
                continue
            if ue_id in self._pending_commits:
                continue
            if now - self._last_ho.get(ue_id, 0.0) < min_stay:
                continue
            attach_index, current_cell, _gnb, ctx = entry
            if ctx.channel.sample(now).snr_db >= config.snr_threshold_db:
                continue
            cells = self.topology.cells_order
            target = cells[(cells.index(current_cell) + 1) % len(cells)]
            if target == current_cell:
                continue
            decision = HandoverDecision(
                ue_id=ue_id, from_cell=current_cell, to_cell=target,
                decided_at=now, commit_at=now + self._commit_lag,
                attach_index=attach_index + 1)
            self._decide(decision)

    def _decide(self, decision: HandoverDecision) -> None:
        self._pending_commits.add(decision.ue_id)
        self._adopted.add((decision.ue_id, decision.commit_at))
        self._merge_record(decision.transition(),
                           {"decided_at": decision.decided_at})
        self._sim.schedule_at(decision.commit_at, self._commit_decision,
                              decision)
        if self._decision_out is not None:
            self._decision_out(decision)

    def _commit_decision(self, decision: HandoverDecision) -> None:
        """Phase two: the barrier-synchronized commit of a decision."""
        self._pending_commits.discard(decision.ue_id)
        self._execute_transition(decision.transition())

    def adopt_decision(self, decision: HandoverDecision) -> None:
        """Adopt a decision broadcast by another shard's monitor.

        Deduplicates (a barrier can replay a broadcast to a shard that
        already decided it) and schedules the local commit halves at the
        decision's commit time; shards with no local half only track the
        UE's handover time for their own monitor's min-stay damping.
        """
        key = (decision.ue_id, decision.commit_at)
        if key in self._adopted:
            return
        self._adopted.add(key)
        if self._is_local(decision.from_cell) or self._is_local(decision.to_cell):
            self._pending_commits.add(decision.ue_id)
            self._sim.schedule_at(decision.commit_at, self._commit_decision,
                                  decision)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def _merge_record(self, tr: Transition, fields: dict) -> None:
        key = (tr.ue_id, tr.time)
        record = self._records.get(key)
        if record is None:
            record = {"ue_id": tr.ue_id, "time": tr.time,
                      "from_cell": tr.from_cell, "to_cell": tr.to_cell,
                      "attach_index": tr.attach_index}
            self._records[key] = record
        record.update(fields)

    @property
    def records(self) -> list[dict]:
        """One dict per (locally observed) handover, in (time, ue) order."""
        return [self._records[key]
                for key in sorted(self._records, key=lambda k: (k[1], k[0]))]

    def boundary_idle(self) -> bool:
        """True when this shard provably cannot emit boundary traffic.

        No visiting UE is attached here, and every context a past visitor
        used has drained its in-flight uplink packets (a drained channel is
        what lets the adaptive synchronizer widen its windows).
        """
        if self._visiting_now:
            return False
        self._visitor_ctxs = [ctx for ctx in self._visitor_ctxs
                              if ctx.inflight_uplinks > 0]
        return not self._visitor_ctxs


def merge_handover_records(parts) -> list[dict]:
    """Recombine per-shard handover record fragments into the single-loop list.

    The source shard of a cross-shard handover reports the departure half
    (flush/forward counts), the target shard the arrival half
    (``completed_at``); the union keyed by ``(ue_id, time)`` is exactly the
    record the single loop produces.
    """
    merged: dict[tuple[int, float], dict] = {}
    for records in parts:
        for record in records:
            key = (record["ue_id"], record["time"])
            if key in merged:
                merged[key].update(record)
            else:
                merged[key] = dict(record)
    return [merged[key] for key in sorted(merged, key=lambda k: (k[1], k[0]))]
