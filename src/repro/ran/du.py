"""The Distributed Unit: RLC entities plus the MAC scheduler.

The DU owns one :class:`~repro.ran.rlc.RlcEntity` per (UE, DRB).  Downlink
SDUs arrive from the CU over F1-U and join their bearer's RLC queue; the MAC
scheduler drains those queues slot by slot.  The DU also emits the F1-U
delivery-status reports that feed L4Span's packet profile table.
"""

from __future__ import annotations

from typing import Optional

from repro.net.packet import Packet
from repro.ran.cell import CellConfig
from repro.ran.f1u import DeliveryStatus, F1UInterface
from repro.ran.identifiers import DrbId, DrbKey, UeId
from repro.ran.mac import MacScheduler, SchedulerPolicy
from repro.ran.phy import AirInterface, AirInterfaceConfig
from repro.ran.rlc import RlcEntity
from repro.ran.ue import UeContext
from repro.sim.engine import Simulator


class DistributedUnit:
    """RLC + MAC + air interface for one cell."""

    def __init__(self, sim: Simulator, cell: CellConfig, f1u: F1UInterface,
                 scheduler_policy: SchedulerPolicy = SchedulerPolicy.ROUND_ROBIN,
                 air_config: Optional[AirInterfaceConfig] = None,
                 engine_backend=None) -> None:
        self._sim = sim
        self.cell = cell
        self.f1u = f1u
        self.air = AirInterface(sim, air_config)
        if engine_backend is not None and engine_backend.vectorized:
            self.air.enable_block_draws(engine_backend.channel_block)
        self.mac = MacScheduler(sim, cell, policy=scheduler_policy,
                                backend=engine_backend)
        self._rlc: dict[DrbKey, RlcEntity] = {}
        self._ue_drbs: dict[UeId, list[DrbId]] = {}
        #: Per-UE RLC entities in DRB order -- the grant/backlog hot path
        #: iterates these directly instead of hashing DrbKeys per slot.
        self._ue_entities: dict[UeId, tuple[RlcEntity, ...]] = {}
        self._pull_rotation: dict[UeId, int] = {}
        #: Reporting suffix per UE ("#a2" after the second attach of a mobile
        #: UE) so bearer sample streams stay unique across re-attachments.
        self._bearer_tags: dict[UeId, str] = {}
        #: Mobility sets this: downlink SDUs racing a detach over F1-U are
        #: dropped (and counted) instead of raising for the missing entity.
        self.drop_orphan_sdus = False
        self.orphan_sdus = 0
        f1u.connect_du(self.handle_downlink_sdu)

    # ------------------------------------------------------------------ #
    # UE attachment
    # ------------------------------------------------------------------ #
    def attach_ue(self, ue: UeContext, *, bearer_tag: str = "",
                  register_mac: bool = True) -> None:
        """Create the RLC entities for a UE and register it with the MAC.

        ``bearer_tag`` suffixes the UE's bearer labels in queue reports (a
        handed-over UE's fresh bearers must not alias its old sample
        streams); ``register_mac=False`` defers MAC service -- the handover
        interruption window -- until :meth:`register_with_mac` is called.
        """
        drb_ids: list[DrbId] = []
        entities: list[RlcEntity] = []
        for drb_config in ue.config.drb_configs():
            key = DrbKey(ue.ue_id, drb_config.drb_id)
            entity = RlcEntity(
                self._sim, ue.ue_id, drb_config, self.air,
                deliver=ue.deliver,
                send_status=self._make_status_sender(ue.ue_id,
                                                     drb_config.drb_id))
            self._rlc[key] = entity
            drb_ids.append(drb_config.drb_id)
            entities.append(entity)
        self._ue_drbs[ue.ue_id] = drb_ids
        self._ue_entities[ue.ue_id] = tuple(entities)
        self._pull_rotation[ue.ue_id] = 0
        self._bearer_tags[ue.ue_id] = bearer_tag
        if register_mac:
            self.register_with_mac(ue)

    def register_with_mac(self, ue: UeContext) -> None:
        """Give the MAC this UE's backlog/pull callbacks (start of service)."""
        entities = self._ue_entities[ue.ue_id]
        # The MAC polls the backlog every slot for every UE; give it the
        # cheapest possible callable for the dominant bearer layouts.
        if len(entities) == 1:
            only = entities[0]
            backlog = (lambda e=only: e.backlog_bytes)
        elif len(entities) == 2:
            first, second = entities
            backlog = (lambda a=first, b=second:
                       a.backlog_bytes + b.backlog_bytes)
        else:
            backlog = (lambda es=tuple(entities):
                       sum(e.backlog_bytes for e in es))
        # The MAC may wrap the channel in a block-cache view (vectorized
        # backends); re-point the UE at whatever the scheduler queries so
        # every consumer (mobility's SNR monitor above all) reads the same
        # variate sequence.
        ue.channel = self.mac.register_ue(
            ue.ue_id, ue.channel,
            backlog_bytes=backlog,
            pull=lambda grant, ue_id=ue.ue_id: self.pull_for_ue(ue_id, grant))

    def detach_ue(self, ue_id: UeId) -> list[tuple[DrbId, RlcEntity]]:
        """Remove a UE's bearers and MAC registration (handover departure).

        Returns the released ``(drb_id, entity)`` pairs in bearer order; the
        caller (the mobility manager) decides whether their queued SDUs are
        forwarded to the target cell or flushed.
        """
        drb_ids = self._ue_drbs.pop(ue_id, [])
        entities = self._ue_entities.pop(ue_id, ())
        self._pull_rotation.pop(ue_id, None)
        self._bearer_tags.pop(ue_id, None)
        for drb_id in drb_ids:
            self._rlc.pop(DrbKey(ue_id, drb_id), None)
        self.mac.unregister_ue(ue_id)
        return list(zip(drb_ids, entities))

    def _make_status_sender(self, ue_id: UeId, drb_id: DrbId):
        def send_status(highest_txed_sn, highest_delivered_sn, timestamp):
            self.f1u.send_delivery_status(DeliveryStatus(
                ue_id=ue_id, drb_id=drb_id,
                highest_txed_sn=highest_txed_sn,
                highest_delivered_sn=highest_delivered_sn,
                timestamp=timestamp))
        return send_status

    # ------------------------------------------------------------------ #
    # Downlink ingress (from CU over F1-U)
    # ------------------------------------------------------------------ #
    def handle_downlink_sdu(self, ue_id: UeId, drb_id: DrbId, sn: int,
                            packet: Packet) -> None:
        """Enqueue a PDCP SDU into its bearer's RLC queue."""
        entity = self._rlc.get(DrbKey(ue_id, drb_id))
        if entity is None:
            if self.drop_orphan_sdus:
                # The UE detached while this SDU was crossing F1-U.
                self.orphan_sdus += 1
                return
            raise KeyError(f"no RLC entity for ue{ue_id}/drb{drb_id}")
        entity.enqueue(sn, packet)

    # ------------------------------------------------------------------ #
    # Queue state and MAC grants
    # ------------------------------------------------------------------ #
    def rlc_entity(self, ue_id: UeId, drb_id: DrbId) -> RlcEntity:
        """Direct access to a bearer's RLC entity (probes and tests)."""
        return self._rlc[DrbKey(ue_id, drb_id)]

    def ue_backlog_bytes(self, ue_id: UeId) -> int:
        """Total RLC backlog across all bearers of one UE."""
        return sum(entity.backlog_bytes
                   for entity in self._ue_entities.get(ue_id, ()))

    def pull_for_ue(self, ue_id: UeId, grant_bytes: int) -> int:
        """Distribute a MAC grant across the UE's backlogged bearers.

        Bearers are served round-robin (rotating the starting bearer every
        grant) with an equal split of the grant; any bytes a bearer cannot
        use are offered to the remaining bearers, so a grant is never wasted
        while any bearer has backlog.  The sub-grants of one call are pulled
        with deferred reporting and flushed as a single F1-U delivery-status
        report per bearer -- one scheduling decision, one report.
        """
        entities = self._ue_entities.get(ue_id)
        if not entities:
            return 0
        backlogged = [e for e in entities if e.backlog_bytes > 0]
        if not backlogged:
            return 0
        if len(backlogged) == 1:
            # Single backlogged bearer (the dominant case): the whole grant
            # goes to it in one pull with an immediate report.
            self._pull_rotation[ue_id] += 1
            return backlogged[0].pull(grant_bytes)
        rotation = self._pull_rotation[ue_id] % len(backlogged)
        self._pull_rotation[ue_id] += 1
        ordered = backlogged[rotation:] + backlogged[:rotation]
        remaining = grant_bytes
        used_total = 0
        share = max(1, grant_bytes // len(ordered))
        for index, entity in enumerate(ordered):
            budget = remaining if index == len(ordered) - 1 else min(share,
                                                                     remaining)
            used = entity.pull(budget, report=False)
            used_total += used
            remaining -= used
            if remaining <= 0:
                break
        # Second pass: hand any leftover grant to bearers that still have data.
        if remaining > 0:
            for entity in ordered:
                if entity.backlog_bytes <= 0:
                    continue
                used = entity.pull(remaining, report=False)
                used_total += used
                remaining -= used
                if remaining <= 0:
                    break
        for entity in ordered:
            entity.flush_status()
        return used_total

    # ------------------------------------------------------------------ #
    def rlc_items(self):
        """Live (DrbKey, entity) view of every bearer, registration order."""
        return self._rlc.items()

    def labeled_rlc_items(self) -> list[tuple[str, RlcEntity]]:
        """(label, entity) for every bearer, attach tags applied.

        Labels are ``"ueX/drbY"`` plus the UE's attach tag (``"#a1"`` after
        its first handover), so a mobile UE's fresh bearers report under
        names distinct from the ones it had before moving.
        """
        tags = self._bearer_tags
        return [(f"{key}{tags.get(key.ue_id, '')}", entity)
                for key, entity in self._rlc.items()]

    def queue_length_report(self) -> dict[DrbKey, int]:
        """RLC queue length (in SDUs) of every bearer."""
        return {key: entity.queue_length_sdus
                for key, entity in self._rlc.items()}

    def stop(self) -> None:
        """Stop the MAC slot clock."""
        self.mac.stop()
