"""UE context: channel, bearers, client endpoints and the uplink path.

The UE is where downlink SDUs terminate (they are handed to the client-side
transport receiver of their flow) and where uplink ACK/feedback packets are
born.  The uplink traverses a :class:`UplinkModel` -- a stochastic delay
accounting for the scheduling request / buffer-status-report / grant cycle --
before re-entering the gNB, where the marker may rewrite it
(feedback short-circuiting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.channel.base import ChannelModel
from repro.net.base import PacketSink
from repro.net.packet import Packet
from repro.ran.identifiers import (DrbConfig, DrbServiceClass, RlcMode, UeId,
                                   DEFAULT_RLC_QUEUE_SDUS)
from repro.sim.engine import Simulator
from repro.units import ms


@dataclass
class UeConfig:
    """Configuration of one UE.

    Attributes:
        ue_id: identifier unique within the scenario.
        channel_profile: named channel condition ("static", "pedestrian",
            "vehicular", "mobile").
        rlc_mode: RLC mode for every bearer of this UE.
        rlc_queue_sdus: RLC transmission-queue capacity (16384 default /
            256 short, per Fig. 9).
        separate_drbs: when True the UE gets an L4S bearer and a classic
            bearer; when False a single shared bearer (Fig. 16 scenario).
        uplink_base_delay / uplink_jitter: parameters of the uplink model.
    """

    ue_id: UeId
    channel_profile: str = "static"
    rlc_mode: RlcMode = RlcMode.AM
    rlc_queue_sdus: int = DEFAULT_RLC_QUEUE_SDUS
    separate_drbs: bool = True
    uplink_base_delay: float = ms(4.0)
    uplink_jitter: float = ms(2.0)

    def drb_configs(self) -> list[DrbConfig]:
        """Materialise the bearer configurations implied by this UE config."""
        if self.separate_drbs:
            return [
                DrbConfig(drb_id=1, rlc_mode=self.rlc_mode,
                          max_queue_sdus=self.rlc_queue_sdus,
                          service_class=DrbServiceClass.L4S),
                DrbConfig(drb_id=2, rlc_mode=self.rlc_mode,
                          max_queue_sdus=self.rlc_queue_sdus,
                          service_class=DrbServiceClass.CLASSIC),
            ]
        return [DrbConfig(drb_id=1, rlc_mode=self.rlc_mode,
                          max_queue_sdus=self.rlc_queue_sdus,
                          service_class=DrbServiceClass.MIXED)]


class UplinkModel:
    """Stochastic uplink latency from the UE to the gNB's CU.

    The delay is ``base + Exp(jitter) + load * active_ues``: a fixed
    grant-cycle floor, exponential jitter from contention, and a mild
    per-active-UE component reflecting the shared uplink control channel.
    """

    def __init__(self, sim: Simulator, ue_id: UeId,
                 base_delay: float = ms(4.0), jitter: float = ms(2.0),
                 per_ue_load: float = ms(0.05),
                 stream_label: str = "") -> None:
        self._sim = sim
        # ``stream_label`` overrides the default stream name: a handed-over
        # UE draws from a fresh attach-qualified stream so the draw sequence
        # is identical whether its new cell runs in the shared loop or on a
        # different shard (the sharded determinism contract).
        self._stream = stream_label or f"uplink-ue{ue_id}"
        # One uplink draw happens per ACK; cache the generator instead of a
        # name lookup per call (same stream, same variate sequence).
        self._rng = sim.random.stream(self._stream)
        self.base_delay = base_delay
        self.jitter = jitter
        self.per_ue_load = per_ue_load
        self.active_ue_count: Callable[[], int] = lambda: 1

    def delay(self) -> float:
        """Draw one uplink traversal delay."""
        jitter = (float(self._rng.exponential(self.jitter))
                  if self.jitter > 0 else 0.0)
        load = self.per_ue_load * max(0, self.active_ue_count() - 1)
        return self.base_delay + jitter + load


class UeContext:
    """Run-time state of one UE attached to the gNB."""

    def __init__(self, sim: Simulator, config: UeConfig,
                 channel: ChannelModel, stream_tag: str = "") -> None:
        self._sim = sim
        self.config = config
        self.ue_id: UeId = config.ue_id
        self.channel = channel
        #: "" for the initial attach, "#aN" after the N-th handover: every
        #: per-UE random stream of this context is qualified by it.
        self.stream_tag = stream_tag
        self.uplink = UplinkModel(
            sim, config.ue_id,
            base_delay=config.uplink_base_delay,
            jitter=config.uplink_jitter,
            stream_label=(f"uplink-ue{config.ue_id}{stream_tag}"
                          if stream_tag else ""))
        self._receivers: dict[int, PacketSink] = {}
        self._default_receiver: Optional[PacketSink] = None
        #: set by the gNB when the UE attaches; carries uplink packets back in.
        self.uplink_sink: Optional[Callable[[Packet, UeId], None]] = None
        self.delivered_packets = 0
        self.delivered_bytes = 0
        #: Uplink packets drawn and scheduled but not yet handed to the gNB;
        #: the sharded synchronizer reads this to prove a boundary channel
        #: has drained before widening its windows.
        self.inflight_uplinks = 0

    # ------------------------------------------------------------------ #
    # Client-side endpoints
    # ------------------------------------------------------------------ #
    def register_receiver(self, flow_id: int, receiver: PacketSink) -> None:
        """Attach the client-side transport receiver for one flow."""
        self._receivers[flow_id] = receiver

    def set_default_receiver(self, receiver: PacketSink) -> None:
        """Receiver used for flows without an explicit registration."""
        self._default_receiver = receiver

    # ------------------------------------------------------------------ #
    # Downlink termination
    # ------------------------------------------------------------------ #
    def deliver(self, packet: Packet, delivery_time: float) -> None:
        """Hand a downlink packet that survived the air interface to its flow."""
        self.delivered_packets += 1
        self.delivered_bytes += packet.size
        receiver = self._receivers.get(packet.flow_id, self._default_receiver)
        if receiver is not None:
            receiver.receive(packet)

    # ------------------------------------------------------------------ #
    # Uplink origination
    # ------------------------------------------------------------------ #
    def send_uplink(self, packet: Packet) -> None:
        """Send an uplink packet (ACK / application feedback) toward the gNB."""
        if self.uplink_sink is None:
            raise RuntimeError(f"UE {self.ue_id} is not attached to a gNB")
        self.inflight_uplinks += 1
        self._sim.schedule(self.uplink.delay(), self._uplink_arrive, packet)

    def _uplink_arrive(self, packet: Packet) -> None:
        self.inflight_uplinks -= 1
        sink = self.uplink_sink
        if sink is not None:
            sink(packet, self.ue_id)
