"""The 5G RAN substrate.

The data path mirrors the split the paper targets (O-RAN 7.2x):

* :class:`~repro.ran.core.FiveGCore` -- the 5GC / UPF that forwards downlink
  IP packets to the gNB serving each UE.
* :class:`~repro.ran.cu.CentralUnitUserPlane` -- the CU-UP holding per-UE
  SDAP and PDCP state, the point where an in-RAN marker (L4Span, TC-RAN, ...)
  is attached.
* :class:`~repro.ran.du.DistributedUnit` -- the DU holding one RLC entity per
  (UE, DRB) and the MAC scheduler that grants transmission opportunities every
  slot.
* :class:`~repro.ran.f1u.F1UInterface` -- the CU<->DU interface carrying
  downlink SDUs one way and *downlink data delivery status* feedback the
  other way.
* :class:`~repro.ran.ue.UeContext` -- the UE: channel model, DRB
  configuration, the client-side transport receivers, and the uplink path
  back through the gNB.
* :class:`~repro.ran.gnb.GNodeB` -- glue that assembles all of the above.
* :class:`~repro.ran.mobility.MobilityManager` -- inter-cell handover:
  detach/attach execution, RLC forwarding, receiver state transfer and the
  SNR-triggered mobility monitor.
"""

from repro.ran.identifiers import DrbConfig, DrbId, QosFlowId, RlcMode, UeId
from repro.ran.cell import CellConfig
from repro.ran.f1u import DeliveryStatus, F1UInterface
from repro.ran.rlc import RlcEntity, RlcSdu
from repro.ran.pdcp import PdcpEntity
from repro.ran.sdap import SdapEntity
from repro.ran.phy import AirInterface, AirInterfaceConfig
from repro.ran.mac import MacScheduler, SchedulerPolicy
from repro.ran.ue import UeConfig, UeContext, UplinkModel
from repro.ran.marker import NoopMarker, RanMarker
from repro.ran.mobility import (HandoverTransfer, MobilityManager,
                                MobilityTopology, Transition)
from repro.ran.core import FiveGCore
from repro.ran.cu import CentralUnitUserPlane
from repro.ran.du import DistributedUnit
from repro.ran.gnb import GNodeB

__all__ = [
    "DrbConfig",
    "DrbId",
    "QosFlowId",
    "RlcMode",
    "UeId",
    "CellConfig",
    "DeliveryStatus",
    "F1UInterface",
    "RlcEntity",
    "RlcSdu",
    "PdcpEntity",
    "SdapEntity",
    "AirInterface",
    "AirInterfaceConfig",
    "MacScheduler",
    "SchedulerPolicy",
    "UeConfig",
    "UeContext",
    "UplinkModel",
    "NoopMarker",
    "RanMarker",
    "HandoverTransfer",
    "MobilityManager",
    "MobilityTopology",
    "Transition",
    "FiveGCore",
    "CentralUnitUserPlane",
    "DistributedUnit",
    "GNodeB",
]
