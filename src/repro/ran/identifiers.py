"""Identifiers and per-bearer configuration used across the RAN.

A *Data Radio Bearer* (DRB) is the logical channel spanning 5GC -> SDAP ->
PDCP -> RLC -> UE.  Each UE owns one or more DRBs; L4Span indexes its packet
profile table by (UE, DRB).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Type aliases -- plain ints keep dictionary keys cheap, the aliases keep
#: signatures readable.
UeId = int
DrbId = int
QosFlowId = int

#: Default srsRAN RLC transmission-queue capacity, in SDUs (paper §6.2.1).
DEFAULT_RLC_QUEUE_SDUS = 16_384

#: The alternative shallow configuration evaluated in Fig. 9 (c, d, g, h).
SHORT_RLC_QUEUE_SDUS = 256


class RlcMode(enum.Enum):
    """RLC operating mode for a DRB.

    ``AM`` (acknowledged) retransmits lost SDUs and reports both transmitted
    and delivered sequence numbers over F1-U; ``UM`` (unacknowledged) omits
    retransmission and delivery feedback.  L4Span only relies on the transmit
    timestamps, which both modes provide (paper §4.3.1-§4.3.2).
    """

    AM = "am"
    UM = "um"


class DrbServiceClass(enum.Enum):
    """Which traffic class a DRB carries when the UE supports multiple DRBs."""

    L4S = "l4s"
    CLASSIC = "classic"
    MIXED = "mixed"


@dataclass
class DrbConfig:
    """Configuration of one data radio bearer.

    Attributes:
        drb_id: bearer identifier, unique within a UE.
        rlc_mode: acknowledged or unacknowledged RLC.
        max_queue_sdus: RLC transmission-queue capacity in SDUs.
        service_class: the traffic class this DRB is provisioned for; used by
            SDAP when a UE keeps L4S and classic flows on separate bearers.
    """

    drb_id: DrbId
    rlc_mode: RlcMode = RlcMode.AM
    max_queue_sdus: int = DEFAULT_RLC_QUEUE_SDUS
    service_class: DrbServiceClass = DrbServiceClass.MIXED


@dataclass(frozen=True)
class DrbKey:
    """Dictionary key addressing one DRB of one UE."""

    ue_id: UeId
    drb_id: DrbId

    def __str__(self) -> str:
        return f"ue{self.ue_id}/drb{self.drb_id}"
