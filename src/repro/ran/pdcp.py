"""PDCP entity: sequence numbering per DRB.

The PDCP layer assigns each downlink SDU a sequence number (the COUNT) that
the RLC's F1-U delivery reports refer back to.  Header compression, ciphering
and integrity protection are irrelevant to queueing behaviour and are not
modelled.
"""

from __future__ import annotations

from typing import Callable

from repro.net.packet import Packet
from repro.ran.identifiers import DrbConfig, DrbId, UeId


class PdcpEntity:
    """Per-DRB sequence numbering and hand-off to the F1-U interface."""

    def __init__(self, ue_id: UeId, config: DrbConfig,
                 send_downlink: Callable[[UeId, DrbId, int, Packet], None]) -> None:
        self.ue_id = ue_id
        self.config = config
        self.drb_id: DrbId = config.drb_id
        self._send_downlink = send_downlink
        self.next_sn = 0
        self.submitted_sdus = 0

    def submit(self, packet: Packet) -> int:
        """Assign the next sequence number to ``packet`` and forward it to the DU.

        Returns the assigned sequence number.
        """
        sn = self.next_sn
        self.next_sn += 1
        self.submitted_sdus += 1
        packet.payload_info["pdcp_sn"] = sn
        self._send_downlink(self.ue_id, self.drb_id, sn, packet)
        return sn
