"""The F1-U interface between CU-UP and DU (3GPP TS 38.425).

Downlink user data flows CU -> DU; *downlink data delivery status* (DDDS)
messages flow DU -> CU.  L4Span consumes only the two mandatory DDDS fields:
the highest PDCP sequence number transmitted to the lower layers and the
highest PDCP sequence number successfully delivered to the UE, each with the
timestamp at which the RLC generated the report (paper §4.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.ran.identifiers import DrbId, UeId
from repro.sim.engine import Simulator
from repro.units import us


@dataclass(frozen=True)
class DeliveryStatus:
    """One downlink-data-delivery-status message.

    Attributes:
        ue_id / drb_id: the bearer the report describes.
        highest_txed_sn: highest PDCP SN handed to MAC/PHY so far, or None if
            nothing has been transmitted yet.
        highest_delivered_sn: highest PDCP SN acknowledged by the UE's RLC
            (None in RLC UM, which provides no delivery feedback).
        timestamp: DU-side time at which the event that triggered the report
            happened.
        desired_buffer_size: optional flow-control hint (bytes) -- carried by
            the real message; unused by L4Span but kept for completeness.
    """

    ue_id: UeId
    drb_id: DrbId
    highest_txed_sn: Optional[int]
    highest_delivered_sn: Optional[int]
    timestamp: float
    desired_buffer_size: int = 0


class F1UInterface:
    """A bidirectional CU<->DU conduit with a small, configurable latency.

    In the 7.2x split the CU-UP and DU may be co-located or connected over a
    midhaul link; the default 250 microseconds models a co-located deployment
    (srsCU and srsDU on the same server, as in the paper's testbed).
    """

    def __init__(self, sim: Simulator, latency: float = us(250),
                 name: str = "f1u") -> None:
        self._sim = sim
        self.latency = latency
        self.name = name
        self._downlink_handler: Optional[Callable] = None
        self._status_handler: Optional[Callable[[DeliveryStatus], None]] = None
        self.downlink_sdus = 0
        self.status_messages = 0

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #
    def connect_du(self, downlink_handler: Callable) -> None:
        """Register the DU-side handler for downlink SDUs."""
        self._downlink_handler = downlink_handler

    def connect_cu(self, status_handler: Callable[[DeliveryStatus], None]) -> None:
        """Register the CU-side handler for delivery-status feedback."""
        self._status_handler = status_handler

    # ------------------------------------------------------------------ #
    # Data plane
    # ------------------------------------------------------------------ #
    def send_downlink_sdu(self, ue_id: UeId, drb_id: DrbId, sn: int,
                          packet) -> None:
        """Carry one PDCP SDU from the CU to the DU's RLC entity."""
        if self._downlink_handler is None:
            raise RuntimeError("F1-U has no DU connected")
        self.downlink_sdus += 1
        self._sim.schedule(self.latency, self._downlink_handler,
                           ue_id, drb_id, sn, packet)

    def send_delivery_status(self, status: DeliveryStatus) -> None:
        """Carry a DDDS report from the DU to the CU (and its marker)."""
        if self._status_handler is None:
            return
        self.status_messages += 1
        self._sim.schedule(self.latency, self._status_handler, status)
