"""Vectorized background-UE population: dense cells without per-UE events.

The north star is heavy traffic from very large user populations, but one
Python object graph per UE (channel, RLC, F1-U, CC state machine) tops out at
a handful of UEs per cell.  This module implements the hybrid approach: a few
*foreground* UEs are simulated exactly, packet by packet, while the other
``n_background`` UEs of the cell live in one :class:`BackgroundPopulation` --
contiguous numpy arrays of per-UE cwnd/backlog/SNR/rate advanced in batched
steps synchronized with the MAC slot loop.

Coupling into the exact simulation is deliberately narrow:

* **Scheduler contention.**  Every slot the MAC asks the population for its
  aggregate demand (an O(1) cached count) and treats it as that many extra
  round-robin claimants: foreground UEs receive proportionally fewer PRBs and
  the background's share is accumulated (O(1)) for the next batched step.
* **Marking/egress.**  Reduced foreground MAC service slows the RLC drain,
  which the F1-U delivery reports carry into the per-bearer egress-rate
  estimates and sojourn predictions that DualPI2/L4Span mark from -- so
  foreground flows see realistic congestion signals without the population
  injecting per-packet traffic.  Markers that implement
  ``on_background_aggregate`` additionally receive the population's batched
  arrival/served byte counters for cell-level telemetry.

Everything random is drawn from the single per-cell named stream
``background-cell{cell_id}``, so a population is bit-identical across repeat
runs and across ``--shards 1/2`` splits (shard simulations reuse the master
seed, and the population is cell-local state).
"""

from __future__ import annotations

from typing import Optional

from repro._numpy import np, require_numpy
from repro.cc.factory import is_l4s_algorithm
from repro.ran.cell import CellConfig

#: Sender MSS used by the window dynamics, bytes.
BACKGROUND_MSS = 1500
#: Initial congestion window (RFC 6928's 10 segments), bytes.
BACKGROUND_INITIAL_CWND = 10 * BACKGROUND_MSS
#: Window growth/backoff happens against this nominal end-to-end RTT.
BACKGROUND_NOMINAL_RTT = 0.05
#: Upper bound on a background sender's window, bytes.
BACKGROUND_CWND_CAP = 4 * 1024 * 1024
#: Multiplicative-decrease factors per response class.
BETA_CLASSIC = 0.7
BETA_L4S = 0.85


def _require_numpy() -> None:
    """Guard for the kernel via the shared :mod:`repro._numpy` helper.

    Pure-python scenarios (``population.n_background == 0``) never reach
    this; only building an actual population needs the vectorized kernel.
    """
    require_numpy(
        "the background-population kernel",
        hint="alternatively set population.n_background = 0 to run "
             "the scenario without aggregated background UEs")


class BackgroundPopulation:
    """All background UEs of one cell, as contiguous numpy state arrays.

    The MAC calls :meth:`on_slot` once per slot with the PRBs granted to the
    background aggregate; every ``update_interval_s`` worth of slots the
    kernel advances the whole population in one vectorized step: churn flips,
    new arrivals into the per-UE backlogs, service of the accumulated PRB
    budget, and an AIMD window update (classic beta 0.7, L4S beta 0.85,
    mixed per ``cc_mix``).
    """

    def __init__(self, sim, cell_id: int, cell: CellConfig, spec,
                 marker: Optional[object] = None) -> None:
        _require_numpy()
        spec.validate()
        self.sim = sim
        self.cell_id = cell_id
        self.cell = cell
        self.spec = spec
        self.n = int(spec.n_background)
        self._rng = sim.random.stream(f"background-cell{cell_id}")
        self._marker_hook = getattr(marker, "on_background_aggregate", None)

        rng = self._rng
        if spec.snr_stddev_db > 0:
            self.snr_db = rng.normal(spec.snr_mean_db, spec.snr_stddev_db,
                                     size=self.n)
        else:
            self.snr_db = np.full(self.n, float(spec.snr_mean_db))
        # Late import: repro.channel.mcs is numpy-typed; keep this module
        # importable (for require_numpy's message) even without numpy.
        from repro.channel.mcs import efficiency_from_snr_array
        self.efficiency = efficiency_from_snr_array(self.snr_db)
        self.bytes_per_prb = cell.bytes_per_prb(1.0) * self.efficiency

        self.active = rng.random(self.n) < spec.activity
        self.cwnd = np.full(self.n, float(BACKGROUND_INITIAL_CWND))
        self.backlog = np.zeros(self.n)
        self.beta = self._beta_array(spec.cc_mix)
        if spec.workload == "rate":
            # Exponentially distributed offered rates around the mean keep a
            # heavy-ish tail without extra spec knobs.
            mean_bytes = spec.mean_rate_mbps * 1e6 / 8.0
            self.offered_rate = rng.exponential(mean_bytes, size=self.n)
        else:
            self.offered_rate = None
            # Bulk senders start with a full window queued in the RAN.
            self.backlog[self.active] = self.cwnd[self.active]

        # Batched-step bookkeeping.
        slot = cell.slot_duration
        self._slots_per_step = max(1, round(spec.update_interval_s / slot))
        self._slot_count = 0
        self._pending_prb_slots = 0.0
        self._last_step_time = float(sim.now)
        self._finished = False

        # Aggregate telemetry (all additive across cells/shards).
        self.arrival_bytes_total = 0.0
        self.served_bytes_total = 0.0
        self.active_ue_seconds = 0.0
        self.kernel_steps = 0

        #: O(1) view the MAC reads every slot: number of background UEs
        #: currently demanding air time (refreshed at each batched step).
        self.demand_count = int(np.count_nonzero(
            self.active & (self.backlog > 0))) if self.n else 0

    # ------------------------------------------------------------------ #
    # MAC-facing hot path (called once per slot; must stay O(1))
    # ------------------------------------------------------------------ #
    def on_slot(self, served_prbs: int) -> None:
        """Account one MAC slot; advance the kernel on batch boundaries."""
        if served_prbs:
            self._pending_prb_slots += served_prbs
        self._slot_count += 1
        if self._slot_count % self._slots_per_step == 0:
            self._step(self.sim.now)

    # ------------------------------------------------------------------ #
    # Batched vectorized step
    # ------------------------------------------------------------------ #
    def _step(self, now: float) -> None:
        dt = now - self._last_step_time
        self._last_step_time = now
        if dt <= 0:
            return
        spec = self.spec
        rng = self._rng
        active = self.active
        backlog = self.backlog
        cwnd = self.cwnd

        # Arrival/departure churn: Poisson flips, uniformly across the
        # population.  A flip resets the UE's transport state.
        if spec.churn_rate_per_s > 0:
            flips = int(rng.poisson(spec.churn_rate_per_s * dt))
            if flips:
                idx = rng.integers(0, self.n, size=flips)
                active[idx] = ~active[idx]
                backlog[idx] = 0.0
                cwnd[idx] = float(BACKGROUND_INITIAL_CWND)

        # New arrivals into the RAN backlogs.  Bulk senders keep a full
        # window outstanding; rate senders offer rate*dt, still window-capped.
        window_room = np.maximum(cwnd - backlog, 0.0)
        if self.offered_rate is None:
            arrivals = np.where(active, window_room, 0.0)
        else:
            arrivals = np.where(
                active, np.minimum(self.offered_rate * dt, window_room), 0.0)
        backlog += arrivals
        arrival_bytes = float(arrivals.sum())
        self.arrival_bytes_total += arrival_bytes

        # Serve the PRB budget the MAC granted over this interval: equal
        # PRB shares across demanding UEs (round-robin in expectation), each
        # converted through its own SNR-derived bytes-per-PRB; one
        # redistribution pass hands leftovers of drained UEs to the rest.
        demand = active & (backlog > 0)
        demanding = int(np.count_nonzero(demand))
        step_served = 0.0
        if demanding and self._pending_prb_slots > 0:
            capacity = np.where(
                demand,
                (self._pending_prb_slots / demanding) * self.bytes_per_prb,
                0.0)
            served = np.minimum(backlog, capacity)
            leftover = float((capacity - served).sum())
            still = demand & (backlog > served)
            still_count = int(np.count_nonzero(still))
            if leftover > 0 and still_count:
                extra = np.where(still, leftover / still_count, 0.0)
                served += np.minimum(backlog - served, extra)
            backlog -= served
            step_served = float(served.sum())
            self.served_bytes_total += step_served
            congested = demand & (backlog > 0.5 * cwnd)
        else:
            congested = demand
        self._pending_prb_slots = 0.0

        # AIMD window update: senders that kept more than half a window
        # queued back off (their class beta); the rest grow additively.
        # Masked in-place ufuncs compute the same elementwise values as
        # boolean fancy indexing without the gather/scatter copies.
        relieved = active & ~congested
        np.multiply(cwnd, self.beta, out=cwnd, where=congested)
        np.add(cwnd, BACKGROUND_MSS * (dt / BACKGROUND_NOMINAL_RTT),
               out=cwnd, where=relieved)
        np.clip(cwnd, BACKGROUND_MSS, BACKGROUND_CWND_CAP, out=cwnd)

        active_count = int(np.count_nonzero(active))
        self.active_ue_seconds += float(active_count) * dt
        self.kernel_steps += 1
        if self.offered_rate is None:
            # Bulk UEs refill next step; an active bulk sender always demands.
            self.demand_count = active_count
        else:
            self.demand_count = int(
                np.count_nonzero(active & (backlog > 0)))
        if self._marker_hook is not None:
            self._marker_hook(arrival_bytes=arrival_bytes,
                              served_bytes=step_served,
                              backlog_bytes=float(backlog.sum()),
                              now=now)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def finish(self) -> None:
        """Run a final partial step so trailing service is accounted."""
        if self._finished:
            return
        self._finished = True
        if self._pending_prb_slots > 0:
            self._step(self.sim.now)

    def summary(self) -> dict:
        """Additive aggregate counters for this cell's population."""
        self.finish()
        return {
            "n_background": self.n,
            "arrival_bytes": self.arrival_bytes_total,
            "served_bytes": self.served_bytes_total,
            "backlog_bytes": float(self.backlog.sum()) if self.n else 0.0,
            "active_ue_seconds": self.active_ue_seconds,
            "kernel_steps": self.kernel_steps,
        }

    # ------------------------------------------------------------------ #
    def _beta_array(self, cc_mix: dict) -> "np.ndarray":
        """Per-UE multiplicative-decrease factor from the CC mix.

        The population is partitioned deterministically (by index, largest
        remainder) across the mix entries in sorted-name order, so the class
        assignment never consumes random variates.
        """
        beta = np.full(self.n, BETA_CLASSIC)
        if not cc_mix or not self.n:
            return beta
        total = sum(cc_mix.values())
        start = 0
        names = sorted(cc_mix)
        counts = [int(self.n * cc_mix[name] / total) for name in names]
        for i in range(self.n - sum(counts)):
            counts[i % len(counts)] += 1
        for name, count in zip(names, counts):
            if is_l4s_algorithm(name):
                beta[start:start + count] = BETA_L4S
            start += count
        return beta


def merge_background_summaries(summaries: list) -> dict:
    """Sum per-cell population summaries into one scenario-level dict."""
    merged: dict = {}
    for summary in summaries:
        if not summary:
            continue
        for key, value in summary.items():
            merged[key] = merged.get(key, 0) + value
    return merged
