"""MAC/PHY transmission and HARQ delay model.

Once the RLC hands a transport block to the lower layers, the block incurs:

* a fixed processing-plus-air-interface latency (slot alignment, encoding,
  over-the-air transmission, UE decode), and
* zero or more HARQ retransmissions, each adding one HARQ round-trip
  (~8 ms in the paper's footnote 1), drawn from a geometric process with the
  configured block error rate.

A block that exhausts its HARQ attempts is reported *failed*; the RLC then
either retransmits it (AM) or loses it (UM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.engine import Simulator
from repro.sim.randomness import chance
from repro.units import ms


@dataclass
class AirInterfaceConfig:
    """Tunable constants of the transmission-delay model."""

    base_delay: float = ms(2.0)
    harq_rtt: float = ms(8.0)
    max_harq_attempts: int = 4
    target_bler: float = 0.10
    delivery_jitter: float = ms(0.5)


class _BlockRandom:
    """Serves ``random()`` uniforms from pre-drawn blocks.

    ``rng.random(n)`` consumes the generator exactly like ``n`` scalar
    ``rng.random()`` calls and yields the same doubles, so wrapping a stream
    in this class is invisible to every consumer of uniform draws -- it only
    amortizes the per-call numpy dispatch over a whole block.  Used by the
    ``numpy`` engine backend for the HARQ/jitter streams, whose consumers
    (:func:`~repro.sim.randomness.chance`, the jitter draw) draw uniforms
    exclusively.
    """

    __slots__ = ("_rng", "_block", "_values", "_index")

    def __init__(self, rng, block: int = 256) -> None:
        self._rng = rng
        self._block = block
        self._values: list[float] = []
        self._index = 0

    def random(self) -> float:
        index = self._index
        if index >= len(self._values):
            self._values = self._rng.random(self._block).tolist()
            index = 0
        self._index = index + 1
        return self._values[index]


class AirInterface:
    """Computes per-transport-block delivery outcomes and delays."""

    __slots__ = ("_sim", "config", "_stream_name", "_ue_streams",
                 "_draw_block",
                 "transmitted_blocks", "harq_retransmissions", "failed_blocks")

    def __init__(self, sim: Simulator, config: AirInterfaceConfig | None = None,
                 stream_name: str = "air") -> None:
        self._sim = sim
        self.config = config if config is not None else AirInterfaceConfig()
        self._stream_name = stream_name
        # Per-UE (harq, jitter) generator cache: transmit() runs once per
        # transport block, so it must not rebuild stream-name strings and
        # re-hash them on every call.
        self._ue_streams: dict[int, tuple] = {}
        #: Block size for pre-drawn uniforms, or 0 for scalar draws.
        self._draw_block = 0
        self.transmitted_blocks = 0
        self.harq_retransmissions = 0
        self.failed_blocks = 0

    def enable_block_draws(self, block: int = 256) -> None:
        """Pre-draw HARQ/jitter uniforms in blocks (numpy engine backend).

        Bit-identical to scalar draws (see :class:`_BlockRandom`); must be
        called before the first transmission so already-cached scalar
        streams are not mixed with blocked ones mid-sequence.
        """
        self._draw_block = block
        self._ue_streams.clear()

    def _wrap(self, rng):
        return _BlockRandom(rng, self._draw_block) if self._draw_block else rng

    def _streams_for(self, ue_id: int) -> tuple:
        streams = self._ue_streams.get(ue_id)
        if streams is None:
            base = f"{self._stream_name}-ue{ue_id}"
            streams = (self._wrap(self._sim.random.stream(base)),
                       self._wrap(self._sim.random.stream(f"{base}-jitter")))
            self._ue_streams[ue_id] = streams
        return streams

    def rebind_ue(self, ue_id: int, label: str) -> None:
        """Point a UE's HARQ/jitter draws at a fresh named stream.

        Called on handover re-attachment: the target cell's air interface
        must draw from an attach-qualified stream (``"air-ue3#a1"``) so the
        sequence is identical whether that cell runs in the shared loop or
        on its own shard (where the old stream's draws never happened).
        """
        self._ue_streams[ue_id] = (
            self._wrap(self._sim.random.stream(label)),
            self._wrap(self._sim.random.stream(f"{label}-jitter")))

    def transmit(self, ue_id: int,
                 on_delivered: Callable[..., None],
                 on_failed: Callable[..., None],
                 payload=None) -> None:
        """Simulate the air-interface fate of one transport block.

        Either ``on_delivered(delivery_time)`` or ``on_failed(failure_time)``
        is scheduled, never both.  When ``payload`` is given it is passed as
        the first callback argument (``on_delivered(payload, time)``), which
        lets per-block callers (the RLC) hand over bound methods instead of
        allocating two closures per transport block.
        """
        cfg = self.config
        self.transmitted_blocks += 1
        harq_rng, jitter_rng = self._streams_for(ue_id)
        bler = cfg.target_bler
        attempts = 1
        while attempts < cfg.max_harq_attempts and chance(harq_rng, bler):
            attempts += 1
            self.harq_retransmissions += 1
        delay = cfg.base_delay + (attempts - 1) * cfg.harq_rtt
        if cfg.delivery_jitter > 0:
            delay += float(jitter_rng.random()) * cfg.delivery_jitter
        # Only blocks that used up every HARQ attempt can still fail; do not
        # consume a draw from the stream on the common success path.
        final_attempt_failed = (attempts >= cfg.max_harq_attempts
                                and chance(harq_rng, bler))
        if final_attempt_failed:
            self.failed_blocks += 1
            callback = on_failed
        else:
            callback = on_delivered
        if payload is None:
            self._sim.schedule(delay, callback, self._sim.now + delay)
        else:
            self._sim.schedule(delay, callback, payload, self._sim.now + delay)
