"""Trace-driven channels: replay a recorded sequence of SNR or CQI values.

Used by tests (deterministic channel shapes such as a step change at a known
instant, mirroring the bottleneck shift in Fig. 2) and by the Fig. 18 harness,
which feeds synthetic "commercial cell" MCS traces through the same stability
analysis the paper applies to NR-Scope captures.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence

from repro.channel.base import ChannelModel, ChannelSample
from repro.channel.mcs import snr_for_cqi


class TraceChannel(ChannelModel):
    """Piecewise-constant SNR defined by ``(time, snr_db)`` breakpoints.

    The SNR holds its value between breakpoints and the last value persists
    forever.  Optionally the trace loops with period ``loop_period``.
    """

    def __init__(self, breakpoints: Iterable[tuple[float, float]],
                 loop_period: float | None = None) -> None:
        points = sorted(breakpoints)
        if not points:
            raise ValueError("trace must contain at least one breakpoint")
        self._times: Sequence[float] = [p[0] for p in points]
        self._values: Sequence[float] = [p[1] for p in points]
        self._loop = loop_period
        self.coherence_time = (min((self._times[i + 1] - self._times[i]
                                    for i in range(len(self._times) - 1)),
                                   default=float("inf")))

    @classmethod
    def from_cqi_trace(cls, breakpoints: Iterable[tuple[float, int]],
                       loop_period: float | None = None) -> "TraceChannel":
        """Build a trace from (time, CQI) pairs using the CQI SNR thresholds."""
        return cls(((t, snr_for_cqi(cqi) + 0.1) for t, cqi in breakpoints),
                   loop_period=loop_period)

    def sample(self, now: float) -> ChannelSample:
        t = now
        if self._loop:
            t = now % self._loop
        index = bisect_right(self._times, t) - 1
        index = max(0, index)
        return ChannelSample.from_snr(now, self._values[index])
