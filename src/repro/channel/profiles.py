"""Named channel profiles matching the paper's evaluation conditions.

The evaluation uses four emulated channel conditions: *static*, *pedestrian*,
*vehicular* and *mobile* (the latter combining pedestrian and vehicular UEs).
Each profile is registered in :data:`repro.registry.CHANNEL_PROFILES` at
definition time; ``make_channel`` builds a per-UE channel model for a named
condition, seeded from the scenario's random streams so every UE gets an
independent process.
"""

from __future__ import annotations

import numpy as np

from repro.channel.base import ChannelModel
from repro.channel.fading import FadingChannel
from repro.channel.static import StaticChannel
from repro.registry import CHANNEL_PROFILES


def profile_names() -> list[str]:
    """Registered profile names (CLI ``choices=``, spec validation)."""
    return CHANNEL_PROFILES.names()


@CHANNEL_PROFILES.register("static")
def _static_profile(rng: np.random.Generator, mean_snr_db: float = 22.0,
                    carrier_ghz: float = 3.75, ue_index: int = 0
                    ) -> ChannelModel:
    """A stationary UE: constant SNR with mild measurement noise."""
    return StaticChannel(snr_db=mean_snr_db, noise_std_db=0.4, rng=rng)


@CHANNEL_PROFILES.register("pedestrian")
def _pedestrian_profile(rng: np.random.Generator, mean_snr_db: float = 22.0,
                        carrier_ghz: float = 3.75, ue_index: int = 0
                        ) -> ChannelModel:
    """Walking-speed fading with occasional shallow fades."""
    return FadingChannel(mean_snr_db=mean_snr_db - 1.0, std_snr_db=3.0,
                         speed_kmh=3.0, carrier_ghz=carrier_ghz, rng=rng,
                         deep_fade_rate=0.05, deep_fade_depth_db=8.0,
                         deep_fade_duration=0.4)


@CHANNEL_PROFILES.register("vehicular")
def _vehicular_profile(rng: np.random.Generator, mean_snr_db: float = 22.0,
                       carrier_ghz: float = 3.75, ue_index: int = 0
                       ) -> ChannelModel:
    """Driving-speed fading with frequent deep fades."""
    return FadingChannel(mean_snr_db=mean_snr_db - 2.0, std_snr_db=5.0,
                         speed_kmh=70.0, carrier_ghz=carrier_ghz, rng=rng,
                         deep_fade_rate=0.15, deep_fade_depth_db=12.0,
                         deep_fade_duration=0.3)


@CHANNEL_PROFILES.register("mobile")
def _mobile_profile(rng: np.random.Generator, mean_snr_db: float = 22.0,
                    carrier_ghz: float = 3.75, ue_index: int = 0
                    ) -> ChannelModel:
    """The paper's mixed population: even UEs pedestrian, odd vehicular."""
    if ue_index % 2 == 0:
        return _pedestrian_profile(rng, mean_snr_db, carrier_ghz)
    return _vehicular_profile(rng, mean_snr_db, carrier_ghz)


def make_channel(profile: str, rng: np.random.Generator,
                 mean_snr_db: float = 22.0,
                 carrier_ghz: float = 3.75,
                 ue_index: int = 0) -> ChannelModel:
    """Create the channel model for one UE under a named condition.

    Args:
        profile: a name registered in :data:`CHANNEL_PROFILES`.
        rng: generator private to this UE.
        mean_snr_db: long-run SNR; the default keeps a lone UE near the
            40 Mbit/s cell capacity of the paper's 20 MHz n78 cell.
        carrier_ghz: cell centre frequency (paper: 3.75 GHz).
        ue_index: for the "mobile" profile, even-indexed UEs become
            pedestrian and odd-indexed vehicular, mirroring the paper's mix.
    """
    builder = CHANNEL_PROFILES.get(profile)
    return builder(rng, mean_snr_db=mean_snr_db, carrier_ghz=carrier_ghz,
                   ue_index=ue_index)
