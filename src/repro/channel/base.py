"""Channel model interface.

A channel model answers one question for the MAC scheduler: *what link
quality does this UE see right now?*  The answer is a :class:`ChannelSample`
containing the SNR, the derived CQI/MCS and the spectral efficiency in bits
per resource element.  Models advance lazily -- :meth:`ChannelModel.sample`
takes the current time, so only UEs that are actually scheduled pay the cost
of updating their fading process.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.channel.mcs import cqi_from_snr, efficiency_from_snr, mcs_from_snr


@dataclass(frozen=True)
class ChannelSample:
    """Instantaneous link quality for one UE."""

    time: float
    snr_db: float
    cqi: int
    mcs: int
    efficiency: float  # bits per resource element

    @staticmethod
    def from_snr(time: float, snr_db: float) -> "ChannelSample":
        """Build a sample by running ``snr_db`` through the CQI/MCS tables."""
        return ChannelSample(time=time, snr_db=snr_db,
                             cqi=cqi_from_snr(snr_db),
                             mcs=mcs_from_snr(snr_db),
                             efficiency=efficiency_from_snr(snr_db))


class ChannelModel(abc.ABC):
    """Base class for per-UE channel processes."""

    #: Coherence time of the process (seconds); ``inf`` for a static channel.
    coherence_time: float = float("inf")

    @abc.abstractmethod
    def sample(self, now: float) -> ChannelSample:
        """Return the link quality at simulation time ``now``."""

    def efficiency(self, now: float) -> float:
        """Shortcut for ``sample(now).efficiency``."""
        return self.sample(now).efficiency

    def mcs_trace(self, duration: float, step: float) -> list[tuple[float, int]]:
        """Sample the MCS index on a regular grid; used by the Fig. 18 analysis."""
        samples = []
        steps = int(duration / step)
        for i in range(steps):
            t = i * step
            samples.append((t, self.sample(t).mcs))
        return samples
