"""Radio channel models.

The RAN scheduler asks a per-UE channel model for the current link quality
(CQI / spectral efficiency); everything L4Span observes about the wireless
medium flows through that single number and its variation over time.  The
package provides:

* :class:`~repro.channel.static.StaticChannel` -- constant quality with
  optional small noise ("Static" in the paper's figures).
* :class:`~repro.channel.fading.FadingChannel` -- a Gauss-Markov SNR process
  whose correlation matches the coherence time of a moving UE (pedestrian and
  vehicular conditions; "Mobile" combines the two).
* :class:`~repro.channel.trace.TraceChannel` -- plays back a recorded CQI/MCS
  trace.
* :mod:`repro.channel.mcs` -- CQI/MCS tables mapping SNR to spectral
  efficiency.
* :mod:`repro.channel.coherence` -- the "channel stable period" analysis of
  Fig. 18 (periods over which the MCS index deviates by at most 5).
"""

from repro.channel.base import ChannelModel, ChannelSample
from repro.channel.static import StaticChannel
from repro.channel.fading import FadingChannel, coherence_time_for_speed
from repro.channel.trace import TraceChannel
from repro.channel.mcs import (CQI_TABLE, MCS_TABLE, cqi_from_snr,
                               efficiency_from_cqi, mcs_from_snr)
from repro.channel.coherence import stable_periods
from repro.channel.profiles import make_channel

__all__ = [
    "ChannelModel",
    "ChannelSample",
    "StaticChannel",
    "FadingChannel",
    "TraceChannel",
    "coherence_time_for_speed",
    "CQI_TABLE",
    "MCS_TABLE",
    "cqi_from_snr",
    "efficiency_from_cqi",
    "mcs_from_snr",
    "stable_periods",
    "make_channel",
]
