"""Channel-stable-period analysis (paper Fig. 18).

The paper validates its estimation-window choice (half of a 24.9 ms coherence
time) by capturing DCIs from two commercial cells with NR-Scope and counting,
for each point in time, how long the scheduled MCS index stays within a
deviation of 5.  Periods shorter than one second are kept in the statistics.
This module implements the same analysis over any (time, mcs) trace.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def stable_periods(mcs_trace: Sequence[tuple[float, int]],
                   max_deviation: int = 5,
                   max_period: float = 1.0) -> list[float]:
    """Split an MCS trace into maximal runs with bounded MCS deviation.

    Args:
        mcs_trace: (time, mcs_index) samples, in time order.
        max_deviation: a run ends when ``max(mcs) - min(mcs)`` inside it
            would exceed this value (the paper uses 5).
        max_period: runs are truncated at this length (the paper includes
            "periods shorter than 1 s in the statistics"), so a perfectly
            static cell contributes a series of 1-second periods rather than
            one infinite period.

    Returns:
        The list of stable-period durations, in seconds.
    """
    if not mcs_trace:
        return []
    periods: list[float] = []
    run_start = mcs_trace[0][0]
    run_min = run_max = mcs_trace[0][1]
    previous_time = mcs_trace[0][0]
    for time, mcs in mcs_trace[1:]:
        if time < previous_time:
            raise ValueError("mcs_trace must be sorted by time")
        new_min = min(run_min, mcs)
        new_max = max(run_max, mcs)
        duration = time - run_start
        if new_max - new_min > max_deviation or duration >= max_period:
            periods.append(min(duration, max_period))
            run_start = time
            run_min = run_max = mcs
        else:
            run_min, run_max = new_min, new_max
        previous_time = time
    final = min(previous_time - run_start, max_period)
    if final > 0:
        periods.append(final)
    return periods


def fraction_longer_than(periods: Iterable[float], threshold: float) -> float:
    """Fraction of stable periods that exceed ``threshold`` seconds.

    The paper's claim is that more than 90% of stable periods are longer than
    the 12.45 ms estimation window.
    """
    periods = list(periods)
    if not periods:
        return 0.0
    return sum(1 for p in periods if p > threshold) / len(periods)
