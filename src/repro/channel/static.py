"""Static channel: constant SNR with optional slow, small noise.

Models the paper's "Static" condition -- a stationary UE whose channel is
essentially flat over the lifetime of a flow.
"""

from __future__ import annotations

import numpy as np

from repro.channel.base import ChannelModel, ChannelSample
from repro.channel.mcs import efficiency_from_snr


class StaticChannel(ChannelModel):
    """A channel whose SNR never departs far from its mean.

    Args:
        snr_db: mean SNR.
        noise_std_db: standard deviation of an optional white perturbation
            (kept small; 0 disables it entirely and makes the channel exactly
            constant).
        rng: numpy generator for the perturbation.
    """

    coherence_time = float("inf")

    def __init__(self, snr_db: float = 22.0, noise_std_db: float = 0.0,
                 rng: np.random.Generator | None = None) -> None:
        self.snr_db = snr_db
        self.noise_std_db = noise_std_db
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def sample(self, now: float) -> ChannelSample:
        snr = self.snr_db
        if self.noise_std_db > 0:
            snr += float(self._rng.normal(0.0, self.noise_std_db))
        return ChannelSample.from_snr(now, snr)

    def efficiency(self, now: float) -> float:
        """Per-slot MAC fast path: same draw, no ChannelSample construction."""
        snr = self.snr_db
        if self.noise_std_db > 0:
            snr += float(self._rng.normal(0.0, self.noise_std_db))
        return efficiency_from_snr(snr)
