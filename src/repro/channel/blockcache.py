"""Per-cell channel block cache: pre-drawn link-quality variates.

The ``python`` engine backend answers every per-slot channel query with one
scalar numpy draw (:meth:`StaticChannel.efficiency`) or a scalar AR(1) step
(:meth:`FadingChannel.efficiency`).  Profiling slot-bound scenarios puts
those calls among the three dominant per-slot costs, so the ``numpy``
backend serves them from a :class:`ChannelBlockCache` instead: each UE's
channel is wrapped in a *view* that pre-computes a block of future states
with a handful of vectorized calls and then answers ``efficiency()`` /
``sample()`` with a list index.

Equivalence:

* **Static channels are bit-identical.**  ``rng.normal(0.0, std, size=n)``
  consumes the generator exactly like ``n`` scalar ``rng.normal(0.0, std)``
  calls and yields the same doubles; elementwise array adds equal scalar
  adds; and :func:`efficiency_from_snr_array` rounds identically to the
  scalar table lookup at every MCS boundary (regression-pinned in
  ``tests/test_channel.py``).  A view therefore returns the very floats the
  scalar path would have, in the same call order.
* **Fading channels drift within the PR 3 contract.**  The view advances
  the AR(1)/deep-fade process on the *slot grid* (one step per slot
  duration, whether or not the UE was polled that slot) instead of lazily
  at call times, and pre-draws innovations/fade uniforms in blocks.  All
  variates still come from the same per-UE stream and the view remains
  deterministic, but the interleaving differs from the scalar
  implementation -- the same confined channel-stream drift the fading
  model's own draw batching introduced.

Views attach to the channel object itself (``channel._block_view``), so a
UE handed over between cells keeps one continuous process instead of
restarting from the wrapped channel's stale scalar state.
"""

from __future__ import annotations

import math

from repro._numpy import require_numpy
from repro.channel.base import ChannelModel, ChannelSample
from repro.channel.fading import FadingChannel
from repro.channel.mcs import efficiency_from_snr_array
from repro.channel.static import StaticChannel


class _StaticView:
    """Blocked view of a :class:`StaticChannel`; bit-identical outputs.

    One ``normal(0.0, std, size=block)`` call replaces ``block`` scalar
    draws; SNRs and efficiencies are pre-computed per block and served by
    index.  Each ``efficiency()``/``sample()`` call consumes exactly one
    pre-drawn variate, mirroring the scalar draw-per-call semantics.
    """

    __slots__ = ("channel", "_block", "_rng", "_base", "_std",
                 "_snrs", "_effs", "_index")

    coherence_time = float("inf")

    def __init__(self, channel: StaticChannel, block: int) -> None:
        self.channel = channel
        self._block = block
        self._rng = channel._rng
        self._base = channel.snr_db
        self._std = channel.noise_std_db
        self._snrs: list[float] = []
        self._effs: list[float] = []
        self._index = 0

    @property
    def snr_db(self) -> float:
        return self.channel.snr_db

    def _advance(self) -> int:
        index = self._index
        if index >= len(self._effs):
            np = require_numpy("the channel block cache")
            noise = self._rng.normal(0.0, self._std, size=self._block)
            snr = self._base + noise
            self._snrs = snr.tolist()
            self._effs = efficiency_from_snr_array(snr).tolist()
            index = 0
        self._index = index + 1
        return index

    def efficiency(self, now: float) -> float:
        # _advance() may swap the block lists; index after, not before.
        index = self._advance()
        return self._effs[index]

    def sample(self, now: float) -> ChannelSample:
        index = self._advance()
        return ChannelSample.from_snr(now, self._snrs[index])

    def mcs_trace(self, duration: float, step: float):
        return self.channel.mcs_trace(duration, step)


class _FadingView:
    """Slot-grid view of a :class:`FadingChannel` (documented drift).

    The process lives on a fixed grid anchored at the first query: grid
    step ``k`` holds the state at ``anchor + k * slot_duration``, computed
    ``block`` steps at a time -- a chunked vectorized AR(1) scan for the
    Gauss-Markov component plus a sparse python walk over pre-drawn fade
    uniforms.  A query at time ``t`` reads the nearest grid step, so gaps
    (UE idle for some slots, the mobility monitor's coarser cadence) skip
    grid entries instead of collapsing into one large-``dt`` scalar step.
    """

    __slots__ = ("channel", "_block", "_slot", "_rng", "_mean", "_depth",
                 "_rho", "_innovation", "_p_fade", "_fade_duration",
                 "_anchor", "_offset", "_state_db", "_fade_until",
                 "_snrs", "_effs", "coherence_time")

    def __init__(self, channel: FadingChannel, slot_duration: float,
                 block: int) -> None:
        self.channel = channel
        self._block = block
        self._slot = slot_duration
        self._rng = channel._rng
        self._mean = channel.mean_snr_db
        self._depth = channel.deep_fade_depth_db
        self.coherence_time = channel.coherence_time
        coherence = channel.coherence_time
        if coherence > 0 and math.isfinite(coherence):
            self._rho = math.exp(-slot_duration / coherence)
        else:
            self._rho = 1.0
        self._innovation = (math.sqrt(max(0.0, 1.0 - self._rho * self._rho))
                            * channel.std_snr_db)
        if channel.deep_fade_rate > 0:
            self._p_fade = 1.0 - math.exp(
                -channel.deep_fade_rate * slot_duration)
        else:
            self._p_fade = 0.0
        self._fade_duration = channel.deep_fade_duration
        self._anchor: float | None = None
        self._offset = 0                      # grid index of _snrs[0]
        self._state_db = channel._state_db    # state at the end of the grid
        self._fade_until = channel._fade_until
        self._snrs: list[float] = []
        self._effs: list[float] = []

    # ------------------------------------------------------------------ #
    def _grid_index(self, now: float) -> int:
        if self._anchor is None:
            self._anchor = now
        k = int(round((now - self._anchor) / self._slot))
        if k < self._offset:
            k = self._offset                  # time never runs backwards;
        while k - self._offset >= len(self._snrs):   # guard float jitter
            self._extend()
        return k - self._offset

    def _extend(self) -> None:
        """Append one block of grid states, dropping the previous block."""
        np = require_numpy("the channel block cache")
        n = self._block
        start_index = self._offset + len(self._snrs)
        rho = self._rho
        innovation = self._innovation
        dev0 = self._state_db - self._mean
        if innovation > 0:
            w = self._rng.standard_normal(n)
            devs = _ar1_scan(np, dev0, rho, innovation, w)
        elif rho == 1.0:
            devs = np.full(n, dev0)
        else:
            devs = dev0 * rho ** np.arange(1, n + 1)
        snr = self._mean + devs
        self._state_db = self._mean + float(devs[-1])

        shifted = snr
        if self._p_fade > 0:
            # One uniform per grid step (scalar code skips draws while a
            # fade is active -- part of the documented drift), then a
            # python walk over the sparse arrival candidates.
            uniforms = self._rng.random(n)
            times = (self._anchor + self._slot * start_index
                     + self._slot * np.arange(n))
            carry_in = self._fade_until
            fade_until = carry_in
            windows = []
            for i in np.nonzero(uniforms < self._p_fade)[0]:
                t = float(times[i])
                if t < fade_until:
                    continue
                duration = float(self._rng.exponential(self._fade_duration))
                fade_until = t + duration
                windows.append((t, fade_until))
            self._fade_until = fade_until
            if windows or carry_in > float(times[0]):
                # Carry-in: a fade triggered in an earlier block can
                # stretch into this one.
                mask = times < carry_in
                for start, end in windows:
                    mask |= (times >= start) & (times < end)
                shifted = np.where(mask, snr - self._depth, snr)

        self._offset = start_index
        self._snrs = shifted.tolist()
        self._effs = efficiency_from_snr_array(shifted).tolist()

    # ------------------------------------------------------------------ #
    def efficiency(self, now: float) -> float:
        # _grid_index() may swap the block lists; index after, not before.
        index = self._grid_index(now)
        return self._effs[index]

    def sample(self, now: float) -> ChannelSample:
        index = self._grid_index(now)
        return ChannelSample.from_snr(now, self._snrs[index])

    def mcs_trace(self, duration: float, step: float):
        return self.channel.mcs_trace(duration, step)


def _ar1_scan(np, dev0: float, rho: float, innovation: float, w):
    """Vectorized scan of ``dev_k = rho * dev_{k-1} + innovation * w_k``.

    Uses the closed form ``dev_k = rho^k * (dev_0 + innovation *
    sum_{j<=k} rho^-j w_j)`` in chunks small enough that ``rho^-j`` stays
    below ``e^600`` (no overflow); degenerate coherence falls back to the
    scalar recurrence.
    """
    n = len(w)
    if rho <= 0.0:
        return innovation * w
    if rho >= 1.0:
        return dev0 + innovation * np.cumsum(w)
    log_rho = math.log(rho)
    chunk = int(-600.0 / log_rho)
    if chunk < 8:
        out = np.empty(n)
        dev = dev0
        values = w.tolist()
        for i in range(n):
            dev = rho * dev + innovation * values[i]
            out[i] = dev
        return out
    out = np.empty(n)
    dev = dev0
    start = 0
    while start < n:
        m = min(chunk, n - start)
        powers = rho ** np.arange(1, m + 1)
        scaled = w[start:start + m] / powers
        segment = powers * (dev + innovation * np.cumsum(scaled))
        out[start:start + m] = segment
        dev = float(segment[-1])
        start += m
    return out


class ChannelBlockCache:
    """Per-cell registry of blocked channel views.

    Created by the MAC when a vectorized backend is active;
    :meth:`view` wraps a UE's channel in the matching view (or returns the
    channel itself when no blocked implementation applies -- trace-driven
    channels, noiseless statics).  Views are cached on the channel object,
    so re-registration after a handover returns the same continuous view.
    """

    def __init__(self, slot_duration: float, block: int = 256) -> None:
        require_numpy("the channel block cache")
        if block < 1:
            raise ValueError("channel block size must be >= 1")
        self.slot_duration = slot_duration
        self.block = block

    def view(self, channel):
        """The blocked view serving this channel's queries (maybe itself)."""
        existing = getattr(channel, "_block_view", None)
        if existing is not None:
            return existing
        if isinstance(channel, _StaticView) or isinstance(channel,
                                                          _FadingView):
            return channel
        if isinstance(channel, StaticChannel) and channel.noise_std_db > 0:
            view: ChannelModel = _StaticView(channel, self.block)
        elif isinstance(channel, FadingChannel):
            view = _FadingView(channel, self.slot_duration, self.block)
        else:
            return channel
        channel._block_view = view
        return view
