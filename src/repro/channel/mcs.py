"""CQI and MCS tables: mapping link quality to spectral efficiency.

The tables follow 3GPP TS 38.214 (CQI table 2 and the 256-QAM MCS table) in
shape; entries are (modulation order, code rate, spectral efficiency in
bits per resource element).  The simulator only needs the efficiency column,
but the MCS index itself is exposed because Fig. 18's channel-stability
analysis is defined in terms of MCS-index deviation.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class McsEntry:
    """One row of an MCS/CQI table."""

    index: int
    modulation_bits: int
    code_rate: float
    efficiency: float  # bits per resource element


#: 3GPP 15-entry CQI table (table 2, up to 256-QAM).  Index 0 means out of range.
CQI_TABLE: tuple[McsEntry, ...] = (
    McsEntry(0, 0, 0.0, 0.0),
    McsEntry(1, 2, 0.0762, 0.1523),
    McsEntry(2, 2, 0.1885, 0.3770),
    McsEntry(3, 2, 0.4385, 0.8770),
    McsEntry(4, 4, 0.3691, 1.4766),
    McsEntry(5, 4, 0.4785, 1.9141),
    McsEntry(6, 4, 0.6016, 2.4063),
    McsEntry(7, 6, 0.4551, 2.7305),
    McsEntry(8, 6, 0.5537, 3.3223),
    McsEntry(9, 6, 0.6504, 3.9023),
    McsEntry(10, 8, 0.5537, 4.4297),
    McsEntry(11, 8, 0.6504, 5.1152),
    McsEntry(12, 8, 0.7539, 6.0293),
    McsEntry(13, 8, 0.8525, 6.8164),
    McsEntry(14, 8, 0.9258, 7.4063),
    McsEntry(15, 8, 0.9480, 7.5840),
)

#: 29-entry MCS table (256-QAM) with efficiencies interpolated between CQI rows.
MCS_TABLE: tuple[McsEntry, ...] = tuple(
    McsEntry(i, CQI_TABLE[min(15, 1 + i // 2)].modulation_bits,
             CQI_TABLE[min(15, 1 + i // 2)].code_rate,
             round(0.2344 + i * (7.4063 - 0.2344) / 27, 4))
    for i in range(28)
)

#: SNR (dB) thresholds at which each CQI index becomes usable.  Roughly the
#: standard AWGN switching points; exact values only shift absolute rates.
_CQI_SNR_THRESHOLDS_DB: tuple[float, ...] = (
    -9999.0, -6.7, -4.7, -2.3, 0.2, 2.4, 4.3, 5.9, 8.1, 10.3,
    11.7, 14.1, 16.3, 18.7, 21.0, 22.7,
)


#: Efficiency column of the CQI table, indexable by CQI (hot-path lookup).
_CQI_EFFICIENCIES: tuple[float, ...] = tuple(e.efficiency for e in CQI_TABLE)

#: MCS index per CQI (``max(0, min(27, cqi * 2 - 2))``), precomputed.
_CQI_TO_MCS: tuple[int, ...] = tuple(
    0 if cqi <= 0 else min(27, cqi * 2 - 2) for cqi in range(16))


def cqi_from_snr(snr_db: float) -> int:
    """Map an SNR in dB to the highest CQI index whose threshold it meets."""
    index = bisect_right(_CQI_SNR_THRESHOLDS_DB, snr_db) - 1
    return max(0, min(15, index))


def efficiency_from_cqi(cqi: int) -> float:
    """Spectral efficiency (bits per resource element) of a CQI index."""
    cqi = max(0, min(15, int(cqi)))
    return CQI_TABLE[cqi].efficiency


def efficiency_from_snr(snr_db: float) -> float:
    """Spectral efficiency for an SNR, via the CQI table.

    This is the per-slot MAC-scheduler lookup, so it indexes the precomputed
    efficiency column directly instead of going through two clamping helpers.
    """
    index = bisect_right(_CQI_SNR_THRESHOLDS_DB, snr_db) - 1
    if index <= 0:
        return _CQI_EFFICIENCIES[0]
    return _CQI_EFFICIENCIES[index if index < 15 else 15]


def mcs_from_snr(snr_db: float) -> int:
    """Map SNR to an MCS index in the 0..27 range (roughly 2 MCS per CQI)."""
    return _CQI_TO_MCS[cqi_from_snr(snr_db)]


#: CQI thresholds as an array for the vectorized mappers below.
_CQI_THRESHOLD_ARRAY = np.asarray(_CQI_SNR_THRESHOLDS_DB)
_CQI_TO_MCS_ARRAY = np.asarray(_CQI_TO_MCS)


def cqi_from_snr_array(snr_db: np.ndarray) -> np.ndarray:
    """Vectorized :func:`cqi_from_snr` over an SNR array."""
    index = np.searchsorted(_CQI_THRESHOLD_ARRAY, snr_db, side="right") - 1
    return np.clip(index, 0, 15)


#: Efficiency column as an array for the vectorized mapper below.
_CQI_EFFICIENCY_ARRAY = np.asarray(_CQI_EFFICIENCIES)


def efficiency_from_snr_array(snr_db: np.ndarray) -> np.ndarray:
    """Vectorized :func:`efficiency_from_snr`: one table gather per batch.

    Used by :class:`repro.ran.background.BackgroundPopulation` to map the
    SNR array of a whole background-UE population in one numpy pass.
    """
    return _CQI_EFFICIENCY_ARRAY[cqi_from_snr_array(snr_db)]


def mcs_from_snr_array(snr_db: np.ndarray) -> np.ndarray:
    """Vectorized :func:`mcs_from_snr`: one table gather per trace batch.

    Used by :meth:`repro.channel.fading.FadingChannel.mcs_trace` to map a
    whole Fig. 18 SNR trace in one numpy pass.
    """
    return _CQI_TO_MCS_ARRAY[cqi_from_snr_array(snr_db)]


def snr_for_cqi(cqi: int) -> float:
    """The minimum SNR (dB) at which ``cqi`` is selected -- inverse of
    :func:`cqi_from_snr`, useful for building test channels."""
    cqi = max(1, min(15, int(cqi)))
    return _CQI_SNR_THRESHOLDS_DB[cqi]


__all__ = [
    "McsEntry",
    "CQI_TABLE",
    "MCS_TABLE",
    "cqi_from_snr",
    "cqi_from_snr_array",
    "efficiency_from_cqi",
    "efficiency_from_snr",
    "efficiency_from_snr_array",
    "mcs_from_snr",
    "mcs_from_snr_array",
    "snr_for_cqi",
]
