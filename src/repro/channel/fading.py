"""Time-correlated fading channels for moving UEs.

The SNR follows a first-order Gauss-Markov (AR(1)) process whose correlation
decays over the channel *coherence time*:

    snr(t + dt) = mean + rho * (snr(t) - mean) + sqrt(1 - rho^2) * sigma * w,
    rho = exp(-dt / T_c)

where ``T_c`` is derived from the UE speed and carrier frequency with the
usual ``T_c ~ 0.423 / f_D`` rule (Doppler spread ``f_D = v * f_c / c``), a few
milliseconds for a vehicular UE at 3.5 GHz and hundreds of milliseconds at
pedestrian speeds.  (The paper adopts the larger *measured* coherence time of
24.9 ms from Wang et al. as its pre-set value; that constant lives in
:class:`repro.core.config.L4SpanConfig`, not here.)

Occasional deep fades -- the "channel sharply turns bad" moments in the
paper's running example (Fig. 4) -- are modelled by an optional shadowing
process that knocks the SNR down for a random holding time.  Fade arrivals
over an advance of ``dt`` use the exact Poisson arrival probability
``1 - exp(-rate * dt)``, not the first-order ``rate * dt`` truncation, which
under-triggers fades for UEs whose channel is sampled sparsely (large ``dt``).

Hot-path note: the MAC scheduler samples every backlogged UE's channel once
per slot (2 kHz), so the innovations and fade decisions are pre-generated in
vectorized blocks -- one ``standard_normal(n)`` / ``random(n)`` call per
block, covering many coherence windows -- instead of one scalar numpy call
per ``sample()``.  The variates consumed are drawn from the same per-UE
stream; only their interleaving differs from the scalar implementation, so
drift is confined to the channel stream.
"""

from __future__ import annotations

import math

import numpy as np

from repro.channel.base import ChannelModel, ChannelSample
from repro.channel.mcs import efficiency_from_snr, mcs_from_snr_array

SPEED_OF_LIGHT_M_S = 299_792_458.0

#: Variates pre-generated per vectorized draw.  At one channel update per
#: 0.5 ms MAC slot a block covers ~128 ms of simulated time -- several
#: coherence windows even for a pedestrian UE.
_DRAW_BLOCK = 256


def doppler_spread(speed_kmh: float, carrier_ghz: float) -> float:
    """Maximum Doppler shift (Hz) for a UE speed and carrier frequency."""
    speed_m_s = speed_kmh / 3.6
    return speed_m_s * carrier_ghz * 1e9 / SPEED_OF_LIGHT_M_S


def coherence_time_for_speed(speed_kmh: float, carrier_ghz: float = 3.5) -> float:
    """Clarke-model coherence time ``0.423 / f_D`` in seconds."""
    f_d = doppler_spread(speed_kmh, carrier_ghz)
    if f_d <= 0:
        return float("inf")
    return 0.423 / f_d


class FadingChannel(ChannelModel):
    """Gauss-Markov SNR process with optional deep-fade shadowing.

    Args:
        mean_snr_db: long-run average SNR.
        std_snr_db: standard deviation of the fast-fading component.
        speed_kmh: UE speed, used to derive the coherence time.
        carrier_ghz: carrier frequency in GHz (paper cell: 3.75 GHz).
        rng: numpy generator driving the process.
        deep_fade_rate: expected deep fades per second (0 disables them).
        deep_fade_depth_db: SNR penalty while a deep fade is active.
        deep_fade_duration: mean duration of a deep fade, seconds.
    """

    def __init__(self, mean_snr_db: float = 20.0, std_snr_db: float = 4.0,
                 speed_kmh: float = 3.0, carrier_ghz: float = 3.5,
                 rng: np.random.Generator | None = None,
                 deep_fade_rate: float = 0.0,
                 deep_fade_depth_db: float = 12.0,
                 deep_fade_duration: float = 0.5) -> None:
        self.mean_snr_db = mean_snr_db
        self.std_snr_db = std_snr_db
        self.speed_kmh = speed_kmh
        self.carrier_ghz = carrier_ghz
        self.coherence_time = coherence_time_for_speed(speed_kmh, carrier_ghz)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.deep_fade_rate = deep_fade_rate
        self.deep_fade_depth_db = deep_fade_depth_db
        self.deep_fade_duration = deep_fade_duration
        self._last_time = 0.0
        self._state_db = mean_snr_db
        self._fade_until = -1.0
        # Pre-generated variate blocks (refilled with one vectorized call).
        self._normals: list[float] = []
        self._normal_index = 0
        self._uniforms: list[float] = []
        self._uniform_index = 0

    # ------------------------------------------------------------------ #
    # Batched variate supply
    # ------------------------------------------------------------------ #
    def _next_normal(self) -> float:
        index = self._normal_index
        if index >= len(self._normals):
            # tolist() converts once to machine floats so the AR(1) update
            # below runs on Python floats, not numpy scalars.
            self._normals = self._rng.standard_normal(_DRAW_BLOCK).tolist()
            index = 0
        self._normal_index = index + 1
        return self._normals[index]

    def _next_uniform(self) -> float:
        index = self._uniform_index
        if index >= len(self._uniforms):
            self._uniforms = self._rng.random(_DRAW_BLOCK).tolist()
            index = 0
        self._uniform_index = index + 1
        return self._uniforms[index]

    # ------------------------------------------------------------------ #
    def _advance(self, now: float) -> None:
        dt = now - self._last_time
        if dt <= 0:
            return
        coherence = self.coherence_time
        if coherence > 0 and math.isfinite(coherence):
            rho = math.exp(-dt / coherence)
        else:
            rho = 1.0
        innovation = math.sqrt(max(0.0, 1.0 - rho * rho)) * self.std_snr_db
        if innovation > 0:
            self._state_db = (self.mean_snr_db
                              + rho * (self._state_db - self.mean_snr_db)
                              + innovation * self._next_normal())
        else:
            self._state_db = (self.mean_snr_db
                              + rho * (self._state_db - self.mean_snr_db))
        if self.deep_fade_rate > 0:
            self._maybe_trigger_deep_fade(now, dt)
        self._last_time = now

    def _maybe_trigger_deep_fade(self, now: float, dt: float) -> None:
        if now < self._fade_until:
            return
        # Exact Poisson arrival probability over the advance interval; the
        # first-order ``rate * dt`` truncation under-triggers fades when the
        # channel is sampled sparsely (large dt).
        probability = 1.0 - math.exp(-self.deep_fade_rate * dt)
        if self._next_uniform() < probability:
            duration = float(self._rng.exponential(self.deep_fade_duration))
            self._fade_until = now + duration

    # ------------------------------------------------------------------ #
    def sample(self, now: float) -> ChannelSample:
        self._advance(now)
        snr = self._state_db
        if now < self._fade_until:
            snr -= self.deep_fade_depth_db
        return ChannelSample.from_snr(now, snr)

    def efficiency(self, now: float) -> float:
        """Spectral efficiency only -- the per-slot MAC fast path.

        Advances the process exactly like :meth:`sample` (same variate
        consumption) but skips building the frozen :class:`ChannelSample`
        and its CQI/MCS fields, which the scheduler never reads.
        """
        self._advance(now)
        snr = self._state_db
        if now < self._fade_until:
            snr -= self.deep_fade_depth_db
        return efficiency_from_snr(snr)

    def mcs_trace(self, duration: float, step: float) -> list[tuple[float, int]]:
        """Regular-grid MCS trace (Fig. 18), vectorized.

        Advances the AR(1)/fade process step by step exactly like
        :meth:`sample` (same variate consumption, so the trace is identical
        to the generic implementation), but collects the raw SNRs and maps
        them to MCS indices in one :func:`mcs_from_snr_array` table gather
        instead of building a :class:`ChannelSample` per grid point.
        """
        steps = int(duration / step)
        times = [i * step for i in range(steps)]
        snrs = np.empty(steps)
        depth = self.deep_fade_depth_db
        for i, t in enumerate(times):
            self._advance(t)
            snr = self._state_db
            if t < self._fade_until:
                snr -= depth
            snrs[i] = snr
        return list(zip(times, mcs_from_snr_array(snrs).tolist()))
