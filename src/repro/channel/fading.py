"""Time-correlated fading channels for moving UEs.

The SNR follows a first-order Gauss-Markov (AR(1)) process whose correlation
decays over the channel *coherence time*:

    snr(t + dt) = mean + rho * (snr(t) - mean) + sqrt(1 - rho^2) * sigma * w,
    rho = exp(-dt / T_c)

where ``T_c`` is derived from the UE speed and carrier frequency with the
usual ``T_c ~ 0.423 / f_D`` rule (Doppler spread ``f_D = v * f_c / c``), a few
milliseconds for a vehicular UE at 3.5 GHz and hundreds of milliseconds at
pedestrian speeds.  (The paper adopts the larger *measured* coherence time of
24.9 ms from Wang et al. as its pre-set value; that constant lives in
:class:`repro.core.config.L4SpanConfig`, not here.)

Occasional deep fades -- the "channel sharply turns bad" moments in the
paper's running example (Fig. 4) -- are modelled by an optional shadowing
process that knocks the SNR down for a random holding time.
"""

from __future__ import annotations

import math

import numpy as np

from repro.channel.base import ChannelModel, ChannelSample

SPEED_OF_LIGHT_M_S = 299_792_458.0


def doppler_spread(speed_kmh: float, carrier_ghz: float) -> float:
    """Maximum Doppler shift (Hz) for a UE speed and carrier frequency."""
    speed_m_s = speed_kmh / 3.6
    return speed_m_s * carrier_ghz * 1e9 / SPEED_OF_LIGHT_M_S


def coherence_time_for_speed(speed_kmh: float, carrier_ghz: float = 3.5) -> float:
    """Clarke-model coherence time ``0.423 / f_D`` in seconds."""
    f_d = doppler_spread(speed_kmh, carrier_ghz)
    if f_d <= 0:
        return float("inf")
    return 0.423 / f_d


class FadingChannel(ChannelModel):
    """Gauss-Markov SNR process with optional deep-fade shadowing.

    Args:
        mean_snr_db: long-run average SNR.
        std_snr_db: standard deviation of the fast-fading component.
        speed_kmh: UE speed, used to derive the coherence time.
        carrier_ghz: carrier frequency in GHz (paper cell: 3.75 GHz).
        rng: numpy generator driving the process.
        deep_fade_rate: expected deep fades per second (0 disables them).
        deep_fade_depth_db: SNR penalty while a deep fade is active.
        deep_fade_duration: mean duration of a deep fade, seconds.
    """

    def __init__(self, mean_snr_db: float = 20.0, std_snr_db: float = 4.0,
                 speed_kmh: float = 3.0, carrier_ghz: float = 3.5,
                 rng: np.random.Generator | None = None,
                 deep_fade_rate: float = 0.0,
                 deep_fade_depth_db: float = 12.0,
                 deep_fade_duration: float = 0.5) -> None:
        self.mean_snr_db = mean_snr_db
        self.std_snr_db = std_snr_db
        self.speed_kmh = speed_kmh
        self.carrier_ghz = carrier_ghz
        self.coherence_time = coherence_time_for_speed(speed_kmh, carrier_ghz)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.deep_fade_rate = deep_fade_rate
        self.deep_fade_depth_db = deep_fade_depth_db
        self.deep_fade_duration = deep_fade_duration
        self._last_time = 0.0
        self._state_db = mean_snr_db
        self._fade_until = -1.0
        self._next_fade_check = 0.0

    # ------------------------------------------------------------------ #
    def _advance(self, now: float) -> None:
        dt = now - self._last_time
        if dt <= 0:
            return
        if math.isfinite(self.coherence_time) and self.coherence_time > 0:
            rho = math.exp(-dt / self.coherence_time)
        else:
            rho = 1.0
        innovation = math.sqrt(max(0.0, 1.0 - rho * rho)) * self.std_snr_db
        noise = float(self._rng.normal(0.0, 1.0)) if innovation > 0 else 0.0
        self._state_db = (self.mean_snr_db
                          + rho * (self._state_db - self.mean_snr_db)
                          + innovation * noise)
        self._maybe_trigger_deep_fade(now, dt)
        self._last_time = now

    def _maybe_trigger_deep_fade(self, now: float, dt: float) -> None:
        if self.deep_fade_rate <= 0:
            return
        if now < self._fade_until:
            return
        probability = min(1.0, self.deep_fade_rate * dt)
        if float(self._rng.random()) < probability:
            duration = float(self._rng.exponential(self.deep_fade_duration))
            self._fade_until = now + duration

    # ------------------------------------------------------------------ #
    def sample(self, now: float) -> ChannelSample:
        self._advance(now)
        snr = self._state_db
        if now < self._fade_until:
            snr -= self.deep_fade_depth_db
        return ChannelSample.from_snr(now, snr)
