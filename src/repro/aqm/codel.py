"""CoDel and ECN-CoDel (RFC 8289), the algorithms behind the TC-RAN baseline.

CoDel tracks the packet sojourn time at dequeue.  When the sojourn time has
stayed above ``target`` for at least ``interval``, the queue enters the
*dropping state* and drops (or, for ECN-CoDel, CE-marks) the head packet; the
next drop is scheduled ``interval / sqrt(count)`` later, so the drop rate
increases steadily until the standing queue dissolves.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.aqm.base import sojourn_time
from repro.net.packet import Packet
from repro.net.queueing import DropTailQueue
from repro.units import ms


class CoDel:
    """Controlled-delay AQM.

    Args:
        target: acceptable standing sojourn time (default 5 ms).
        interval: sliding window over which the minimum sojourn is evaluated
            (default 100 ms).
        ecn: when True, CE-mark ECN-capable packets instead of dropping them.
    """

    def __init__(self, target: float = ms(5), interval: float = ms(100),
                 ecn: bool = False, name: str = "codel") -> None:
        self.target = target
        self.interval = interval
        self.ecn = ecn
        self.name = name
        self.first_above_time: Optional[float] = None
        self.dropping = False
        self.drop_next = 0.0
        self.count = 0
        self.last_count = 0
        self.marked = 0
        self.dropped = 0

    # ------------------------------------------------------------------ #
    def on_enqueue(self, packet: Packet, queue: DropTailQueue,
                   now: float) -> Optional[bool]:
        return True

    # ------------------------------------------------------------------ #
    def _control_law(self, reference: float) -> float:
        return reference + self.interval / math.sqrt(max(1, self.count))

    def _should_act(self, packet: Packet, queue: DropTailQueue,
                    now: float) -> bool:
        delay = sojourn_time(packet, now)
        if delay < self.target or queue.bytes < 2 * packet.size:
            self.first_above_time = None
            return False
        if self.first_above_time is None:
            self.first_above_time = now + self.interval
            return False
        return now >= self.first_above_time

    def _act(self, packet: Packet) -> bool:
        """Mark or drop ``packet``; return True when it may still be forwarded."""
        if self.ecn and packet.mark_ce(by=self.name):
            self.marked += 1
            return True
        self.dropped += 1
        return False

    def on_dequeue(self, packet: Packet, queue: DropTailQueue,
                   now: float) -> Optional[bool]:
        act_now = self._should_act(packet, queue, now)
        if self.dropping:
            if not act_now:
                self.dropping = False
            elif now >= self.drop_next:
                keep = self._act(packet)
                self.count += 1
                self.drop_next = self._control_law(self.drop_next)
                return keep
        elif act_now:
            self.dropping = True
            # Restart close to the previous rate if we were dropping recently.
            if self.count > 2 and now - self.drop_next < 8 * self.interval:
                self.count -= 2
            else:
                self.count = 1
            self.last_count = self.count
            keep = self._act(packet)
            self.drop_next = self._control_law(now)
            return keep
        return True


class EcnCoDel(CoDel):
    """CoDel that marks ECN-capable packets instead of dropping them.

    This is the configuration TC-RAN uses for L4S traffic; CUBIC traffic goes
    through plain (dropping) CoDel.
    """

    def __init__(self, target: float = ms(5), interval: float = ms(100),
                 name: str = "ecn-codel") -> None:
        super().__init__(target=target, interval=interval, ecn=True, name=name)
