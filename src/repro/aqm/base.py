"""The AQM hook interface used by :class:`repro.net.link.Link`.

An AQM object sees every packet twice:

* ``on_enqueue(packet, queue, now)`` before the packet joins the buffer --
  returning ``False`` drops it (tail drop / PIE-style enqueue marking).
* ``on_dequeue(packet, queue, now)`` when the packet leaves the buffer --
  returning ``False`` drops it (CoDel-style head drop); the hook may also
  CE-mark the packet in place.

Returning ``None`` or ``True`` lets the packet continue unchanged.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from repro.net.packet import Packet
from repro.net.queueing import DropTailQueue


@runtime_checkable
class AQMHooks(Protocol):
    """Protocol implemented by every AQM in this package."""

    def on_enqueue(self, packet: Packet, queue: DropTailQueue,
                   now: float) -> Optional[bool]:
        """Called before enqueue; return False to drop."""
        ...

    def on_dequeue(self, packet: Packet, queue: DropTailQueue,
                   now: float) -> Optional[bool]:
        """Called at dequeue; return False to drop; may mark in place."""
        ...


class PassthroughAQM:
    """An AQM that never marks or drops; useful as a default and in tests."""

    def __init__(self) -> None:
        self.enqueued = 0
        self.dequeued = 0

    def on_enqueue(self, packet: Packet, queue: DropTailQueue,
                   now: float) -> Optional[bool]:
        self.enqueued += 1
        return True

    def on_dequeue(self, packet: Packet, queue: DropTailQueue,
                   now: float) -> Optional[bool]:
        self.dequeued += 1
        return True


def sojourn_time(packet: Packet, now: float) -> float:
    """Time the packet has spent queued at the current hop.

    Falls back to zero when the enqueue stamp is missing (e.g. a packet
    injected directly into a dequeue path by a test).
    """
    enqueue = packet.timestamps.get("link_enqueue")
    if enqueue is None:
        return 0.0
    return max(0.0, now - enqueue)
