"""Active queue management algorithms.

``repro.aqm`` contains the wired-network AQMs the paper uses as context and
baselines:

* :class:`~repro.aqm.codel.CoDel` and :class:`~repro.aqm.codel.EcnCoDel` --
  the qdiscs TC-RAN deploys between SDAP and PDCP.
* :class:`~repro.aqm.dualpi2.DualPi2Router` -- the dual-queue coupled AQM
  (RFC 9332) deployed by wired L4S routers, used in the motivation experiment.
* :class:`~repro.aqm.step.StepMarker` -- mark-all-above-threshold, the
  "DualPi2 with a sojourn threshold" strategy that §6.3.1 shows is unsuitable
  for the RAN.
"""

from repro.aqm.base import AQMHooks, PassthroughAQM
from repro.aqm.codel import CoDel, EcnCoDel
from repro.aqm.dualpi2 import DualPi2Core, DualPi2Router
from repro.aqm.step import StepMarker

__all__ = [
    "AQMHooks",
    "PassthroughAQM",
    "CoDel",
    "EcnCoDel",
    "DualPi2Core",
    "DualPi2Router",
    "StepMarker",
]
