"""Step-threshold marking: CE-mark every packet whose sojourn exceeds a threshold.

This is the L4S-queue behaviour of DualPi2 in wired routers (1 ms default
threshold) and the "DualPi2 + 10 ms threshold" strategy the paper evaluates in
§6.3.1 to show that a hard threshold under-utilises a volatile wireless link.
"""

from __future__ import annotations

from typing import Optional

from repro.aqm.base import sojourn_time
from repro.net.packet import Packet
from repro.net.queueing import DropTailQueue
from repro.units import ms


class StepMarker:
    """Mark all ECN-capable packets when the queue's sojourn time exceeds ``threshold``."""

    def __init__(self, threshold: float = ms(1), name: str = "step") -> None:
        self.threshold = threshold
        self.name = name
        self.marked = 0
        self.seen = 0

    def on_enqueue(self, packet: Packet, queue: DropTailQueue,
                   now: float) -> Optional[bool]:
        return True

    def on_dequeue(self, packet: Packet, queue: DropTailQueue,
                   now: float) -> Optional[bool]:
        self.seen += 1
        if sojourn_time(packet, now) > self.threshold:
            if packet.mark_ce(by=self.name):
                self.marked += 1
        return True

    def mark_probability(self, estimated_sojourn: float) -> float:
        """Step function of the estimated sojourn time (0 or 1).

        Exposed so the in-RAN baselines can reuse the same decision rule on a
        *predicted* sojourn time instead of a measured one.
        """
        return 1.0 if estimated_sojourn > self.threshold else 0.0
