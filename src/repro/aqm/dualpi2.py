"""DualPi2: the dual-queue coupled AQM of RFC 9332.

The wired L4S router in the motivation experiment (Fig. 2a) is a
:class:`DualPi2Router`.  It keeps two queues:

* the **L queue** for L4S traffic (ECT(1)/CE), marked by a step function of
  its own sojourn time plus the coupled probability from the classic queue;
* the **C queue** for classic traffic, marked/dropped with probability
  ``p_C = p'^2`` where ``p'`` is produced by a PI controller tracking the
  classic queue's sojourn time against its target.

The coupling ``p_CL = k * p'`` gives classic flows their fair share when both
kinds of traffic compete.  A weighted-round-robin scheduler with a small L
priority serves the two queues onto the output link.

:class:`DualPi2Core` contains just the probability machinery; it is reused by
the in-RAN baseline in :mod:`repro.core.ran_dualpi2`.
"""

from __future__ import annotations

from typing import Optional

from repro.net.base import PacketSink
from repro.net.ecn import ECN, FlowClass
from repro.net.packet import Packet
from repro.net.queueing import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.randomness import chance
from repro.units import ms, transmission_time


class DualPi2Core:
    """The PI² probability controller and coupling law.

    Args:
        target: classic-queue delay target (default 15 ms, RFC 9332).
        tupdate: controller update period (default 16 ms).
        alpha / beta: PI gains in probability units per second of error.
        coupling: the coupling factor k (default 2).
        l4s_threshold: step threshold for the L queue (default 1 ms).
    """

    def __init__(self, target: float = ms(15), tupdate: float = ms(16),
                 alpha: float = 0.16, beta: float = 3.2,
                 coupling: float = 2.0, l4s_threshold: float = ms(1)) -> None:
        self.target = target
        self.tupdate = tupdate
        self.alpha = alpha
        self.beta = beta
        self.coupling = coupling
        self.l4s_threshold = l4s_threshold
        self.p_prime = 0.0
        self.prev_delay = 0.0

    def update(self, classic_delay: float) -> float:
        """Advance the PI controller one ``tupdate`` step.

        Returns the new base probability ``p'`` (clamped to [0, 1]).
        """
        delta = (self.alpha * (classic_delay - self.target)
                 + self.beta * (classic_delay - self.prev_delay)) * self.tupdate
        self.p_prime = min(1.0, max(0.0, self.p_prime + delta))
        self.prev_delay = classic_delay
        return self.p_prime

    @property
    def p_classic(self) -> float:
        """Classic-queue mark/drop probability, ``p'`` squared."""
        return min(1.0, self.p_prime * self.p_prime)

    @property
    def p_coupled(self) -> float:
        """The L-queue probability contributed by coupling, ``k * p'``."""
        return min(1.0, self.coupling * self.p_prime)

    def l4s_mark_probability(self, l_queue_delay: float) -> float:
        """Probability of marking an L-queue packet given its sojourn time."""
        step = 1.0 if l_queue_delay > self.l4s_threshold else 0.0
        return min(1.0, max(step, self.p_coupled))


class DualPi2Router:
    """A bottleneck router running the dual-queue coupled AQM.

    Args:
        sim: simulator.
        rate: output rate, bytes per second.
        delay: output propagation delay, seconds.
        sink: downstream component.
        queue_bytes: per-queue byte limit (tail drop beyond it).
        core: optionally share a pre-configured :class:`DualPi2Core`.
    """

    #: Weighted round robin: serve up to this many L-queue packets per C packet.
    L_PRIORITY = 4

    def __init__(self, sim: Simulator, rate: float, delay: float = 0.0,
                 sink: Optional[PacketSink] = None,
                 queue_bytes: int = 2_000_000,
                 core: Optional[DualPi2Core] = None,
                 name: str = "dualpi2") -> None:
        self._sim = sim
        self.rate = rate
        self.delay = delay
        self.sink = sink
        self.name = name
        self.core = core if core is not None else DualPi2Core()
        self.l_queue = DropTailQueue(max_bytes=queue_bytes)
        self.c_queue = DropTailQueue(max_bytes=queue_bytes)
        self._busy = False
        self._l_credit = self.L_PRIORITY
        self.marked_l4s = 0
        self.marked_classic = 0
        self.dropped_classic = 0
        # Marking runs once per dequeued packet; look the streams up once
        # instead of rebuilding the "<name>-lmark"/"<name>-cmark" keys.
        self._lmark_rng = sim.random.stream(f"{name}-lmark")
        self._cmark_rng = sim.random.stream(f"{name}-cmark")
        self._updater = PeriodicProcess(sim, self.core.tupdate, self._update,
                                        name=f"{name}-pi")

    # ------------------------------------------------------------------ #
    # Enqueue path
    # ------------------------------------------------------------------ #
    def receive(self, packet: Packet) -> None:
        packet.stamp_override("link_enqueue", self._sim.now)
        queue = (self.l_queue if packet.flow_class == FlowClass.L4S
                 else self.c_queue)
        queue.enqueue(packet)
        if not self._busy:
            self._transmit_next()

    # ------------------------------------------------------------------ #
    # PI controller
    # ------------------------------------------------------------------ #
    def _queue_delay(self, queue: DropTailQueue) -> float:
        head = queue.peek()
        if head is None:
            return 0.0
        enqueue = head.timestamps.get("link_enqueue", self._sim.now)
        return max(0.0, self._sim.now - enqueue)

    def _update(self) -> None:
        self.core.update(self._queue_delay(self.c_queue))

    # ------------------------------------------------------------------ #
    # Dequeue / scheduler path
    # ------------------------------------------------------------------ #
    def _pick_queue(self) -> Optional[DropTailQueue]:
        l_empty, c_empty = self.l_queue.empty, self.c_queue.empty
        if l_empty and c_empty:
            return None
        if c_empty:
            return self.l_queue
        if l_empty:
            return self.c_queue
        if self._l_credit > 0:
            self._l_credit -= 1
            return self.l_queue
        self._l_credit = self.L_PRIORITY
        return self.c_queue

    def _transmit_next(self) -> None:
        queue = self._pick_queue()
        if queue is None:
            self._busy = False
            return
        packet = queue.dequeue()
        assert packet is not None
        now = self._sim.now
        if queue is self.l_queue:
            p_mark = self.core.l4s_mark_probability(
                max(0.0, now - packet.timestamps.get("link_enqueue", now)))
            if chance(self._lmark_rng, p_mark):
                if packet.mark_ce(by=self.name):
                    self.marked_l4s += 1
        else:
            if chance(self._cmark_rng, self.core.p_classic):
                if packet.ecn == ECN.NOT_ECT:
                    self.dropped_classic += 1
                    self._sim.call_soon(self._transmit_next)
                    return
                packet.mark_ce(by=self.name)
                self.marked_classic += 1
        self._busy = True
        serialization = transmission_time(packet.size, self.rate)
        self._sim.schedule(serialization, self._finish, packet)

    def _finish(self, packet: Packet) -> None:
        if self.sink is not None:
            if self.delay > 0:
                self._sim.schedule(self.delay, self.sink.receive, packet)
            else:
                self.sink.receive(packet)
        self._transmit_next()

    # ------------------------------------------------------------------ #
    @property
    def queued_bytes(self) -> int:
        """Total bytes across both queues."""
        return self.l_queue.bytes + self.c_queue.bytes

    def stop(self) -> None:
        """Stop the periodic PI controller (call at the end of a scenario)."""
        self._updater.stop()
