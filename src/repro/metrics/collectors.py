"""Run-time measurement collectors attached to scenarios.

Collectors are intentionally cheap: they append to Python lists and do all
statistics after the simulation finishes.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from repro.metrics.breakdown import breakdown_from_packet
from repro.metrics.stats import box_stats, summarize
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.units import to_mbps


class SampleReservoir(list):
    """A bounded, uniformly representative sample of an append-only stream.

    Behaves exactly like a list until ``capacity`` values have been appended;
    from then on each further value replaces a random retained one with
    probability ``capacity / n`` (Vitter's Algorithm R), so the reservoir
    stays a uniform sample of everything observed while memory stays bounded.
    Long-running senders append an RTT/cwnd sample per ACK, which previously
    grew without limit.

    The replacement RNG is a private ``random.Random`` seeded from the
    capacity, so reservoir contents are a pure function of the append
    sequence -- parallel sweep workers see identical results.  Runs that
    never exceed the capacity are bit-identical to the unbounded behaviour.
    """

    __slots__ = ("capacity", "observed", "_rng")

    def __init__(self, capacity: int) -> None:
        super().__init__()
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.observed = 0
        self._rng = random.Random(0x5EED ^ capacity)

    def append(self, value) -> None:
        n = self.observed = self.observed + 1
        if n <= self.capacity:
            list.append(self, value)
        else:
            slot = self._rng.randrange(n)
            if slot < self.capacity:
                self[slot] = value

    def extend(self, values) -> None:
        for value in values:
            self.append(value)

    def __reduce__(self):
        # list subclasses pickle by replaying items through append(), which
        # here runs before the capacity/observed/_rng slots exist; rebuild
        # explicitly instead so reservoirs survive pickling and deepcopy
        # (e.g. results crossing the parallel sweep's process boundary).
        return (_rebuild_reservoir, (self.capacity, self.observed,
                                     self._rng.getstate(), list(self)))


def _rebuild_reservoir(capacity, observed, rng_state, items):
    reservoir = SampleReservoir(capacity)
    list.extend(reservoir, items)
    reservoir.observed = observed
    reservoir._rng.setstate(rng_state)
    return reservoir


@dataclass
class TimeSeries:
    """A simple (time, value) series with helpers."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def mean(self) -> float:
        if not self.values:
            return float("nan")
        return sum(self.values) / len(self.values)

    def points(self) -> list[tuple[float, float]]:
        return list(zip(self.times, self.values))


class OwdCollector:
    """Collects per-flow one-way delays of delivered downlink packets."""

    def __init__(self) -> None:
        self.samples: dict[int, list[float]] = defaultdict(list)
        self.sample_times: dict[int, list[float]] = defaultdict(list)

    def record(self, flow_id: int, owd: float, now: float) -> None:
        self.samples[flow_id].append(owd)
        self.sample_times[flow_id].append(now)

    def flow_summary(self, flow_id: int) -> dict:
        """Summary statistics of one flow's one-way delay."""
        return summarize(self.samples.get(flow_id, []))

    def flow_box(self, flow_id: int):
        """Box statistics of one flow's one-way delay."""
        return box_stats(self.samples.get(flow_id, []))

    def all_samples(self) -> list[float]:
        """Every sample across all flows."""
        merged: list[float] = []
        for values in self.samples.values():
            merged.extend(values)
        return merged


class ThroughputCollector:
    """Windowed received-throughput series per flow (bytes/s)."""

    def __init__(self, window: float = 0.25) -> None:
        self.window = window
        self._bytes_in_window: dict[int, int] = defaultdict(int)
        self._window_start: dict[int, float] = {}
        self.series: dict[int, TimeSeries] = defaultdict(TimeSeries)
        self.total_bytes: dict[int, int] = defaultdict(int)
        self.first_time: dict[int, float] = {}
        self.last_time: dict[int, float] = {}
        #: Flow ids whose raw (time, size) events are retained.  The rate
        #: windows are anchored at event times, so a collector that only saw
        #: part of a flow's life (one shard of a mobile flow) cannot have
        #: its series merged with another's — the sharded runtime instead
        #: retains the raw events and replays the merged stream through a
        #: fresh collector, reproducing the single loop exactly.
        self.retain_events_for: Optional[set] = None
        self.raw_events: dict[int, tuple[list[float], list[int]]] = {}

    def record(self, flow_id: int, size: int, now: float) -> None:
        self.total_bytes[flow_id] += size
        self.first_time.setdefault(flow_id, now)
        self.last_time[flow_id] = now
        start = self._window_start.setdefault(flow_id, now)
        self._bytes_in_window[flow_id] += size
        if now - start >= self.window:
            rate = self._bytes_in_window[flow_id] / (now - start)
            self.series[flow_id].append(now, rate)
            self._window_start[flow_id] = now
            self._bytes_in_window[flow_id] = 0
        if self.retain_events_for is not None \
                and flow_id in self.retain_events_for:
            times, sizes = self.raw_events.setdefault(flow_id, ([], []))
            times.append(now)
            sizes.append(size)

    def average_rate(self, flow_id: int,
                     duration: Optional[float] = None) -> float:
        """Mean received rate of a flow in bytes/s."""
        total = self.total_bytes.get(flow_id, 0)
        if total == 0:
            return 0.0
        if duration is None:
            first = self.first_time.get(flow_id, 0.0)
            last = self.last_time.get(flow_id, first)
            duration = max(last - first, 1e-9)
        return total / max(duration, 1e-9)


class DelayBreakdownAccumulator:
    """Averages the per-packet delay breakdown across all delivered packets."""

    def __init__(self) -> None:
        self.count = 0
        self.sums = {"propagation": 0.0, "queuing": 0.0, "scheduling": 0.0,
                     "other": 0.0}

    def record_packet(self, packet: Packet, delivery_time: float) -> None:
        breakdown = breakdown_from_packet(packet, delivery_time)
        if breakdown is None:
            return
        self.count += 1
        for key, value in breakdown.as_dict().items():
            if key in self.sums:
                self.sums[key] += value

    def averages(self) -> dict:
        """Mean of each component in seconds (zeros when nothing recorded)."""
        if self.count == 0:
            return {key: 0.0 for key in self.sums}
        return {key: value / self.count for key, value in self.sums.items()}

    def merge_from(self, count: int, sums: dict) -> None:
        """Fold another accumulator's raw ``(count, sums)`` into this one.

        Per-shard accumulators ship their exact sums across the process
        boundary, so the merged :meth:`averages` equal the single-loop run's
        (same totals, same divisor) instead of being a mean of means.
        """
        self.count += count
        for key, value in sums.items():
            self.sums[key] = self.sums.get(key, 0.0) + value


# --------------------------------------------------------------------- #
# Shard merge helpers
#
# A sharded scenario produces one collector set per worker process; these
# functions recombine their outputs into the exact schema (and, where the
# single loop's iteration order is observable, the exact ordering) of an
# unsharded run.  They live here, next to the collectors whose outputs they
# merge, so the collection and recombination logic evolve together.
# --------------------------------------------------------------------- #
def merge_sample_dicts(parts) -> dict:
    """Concatenate ``{key: [samples]}`` dicts with disjoint sample streams.

    Keys are expected to be unique per part (bearer names are scenario-global
    because UE ids are); a key appearing in several parts — a bearer whose
    samples were split across result fragments — is concatenated in the order
    the parts are given.
    """
    merged: dict = {}
    for part in parts:
        for key, values in part.items():
            if key in merged:
                merged[key] = list(merged[key]) + list(values)
            else:
                merged[key] = list(values)
    return merged


def merge_numeric_summaries(summaries) -> dict:
    """Merge marker/component summary dicts by summing numeric counters.

    Non-numeric values keep the first occurrence.  A single summary is
    returned unchanged (identity with the single-cell report schema).
    """
    summaries = list(summaries)
    if len(summaries) == 1:
        return summaries[0]
    merged: dict = {}
    for summary in summaries:
        for key, value in summary.items():
            if isinstance(value, (int, float)):
                merged[key] = merged.get(key, 0) + value
            else:
                merged.setdefault(key, value)
    return merged


class QueueSampler:
    """Periodically samples RLC queue lengths (in SDUs) and bytes per bearer.

    ``gnb`` may be a single gNB or a list of them (a multi-cell scenario);
    bearer keys ("ueX/drbY") are unique across cells because UE ids are
    scenario-global.
    """

    def __init__(self, sim: Simulator, gnb, interval: float = 0.05) -> None:
        self._sim = sim
        self._gnbs = list(gnb) if isinstance(gnb, (list, tuple)) else [gnb]
        self.interval = interval
        self.length_samples: dict[str, list[int]] = defaultdict(list)
        self.byte_samples: dict[str, list[int]] = defaultdict(list)
        self.times: list[float] = []
        self._bearers: Optional[list[tuple[str, object]]] = None
        self._process = PeriodicProcess(sim, interval, self._sample,
                                        name="queue-sampler")

    def _bearer_list(self) -> list[tuple[str, object]]:
        """(name, entity) pairs, cached -- per-tick DrbKey lookups and
        report-dict rebuilds were a measurable share of scenario time.  The
        cache is refreshed whenever a cell gains a bearer (late attach) or
        :meth:`invalidate` is called (a handover swaps bearers without
        changing the total, which a pure count check would miss)."""
        bearers = self._bearers
        total = sum(len(gnb.du.rlc_items()) for gnb in self._gnbs)
        if bearers is None or len(bearers) != total:
            bearers = [item
                       for gnb in self._gnbs
                       for item in gnb.du.labeled_rlc_items()]
            self._bearers = bearers
        return bearers

    def invalidate(self) -> None:
        """Force a bearer re-scan on the next tick (topology changed)."""
        self._bearers = None

    def _sample(self) -> None:
        self.times.append(self._sim.now)
        for name, entity in self._bearer_list():
            self.length_samples[name].append(entity.queue_length_sdus)
            self.byte_samples[name].append(entity.backlog_bytes)

    def all_length_samples(self) -> list[int]:
        """Every queue-length sample across bearers."""
        merged: list[int] = []
        for values in self.length_samples.values():
            merged.extend(values)
        return merged

    def stop(self) -> None:
        self._process.stop()


class RateEstimationProbe:
    """Samples L4Span's egress-rate estimate against the ground truth.

    The ground truth is the RLC entity's transmitted-byte counter differenced
    over each sampling interval -- the same quantity the estimator tries to
    predict from F1-U reports.  Used by the Fig. 20 harness.
    """

    def __init__(self, sim: Simulator, gnb, l4span,
                 interval: float = 0.05) -> None:
        self._sim = sim
        self._gnb = gnb
        self._l4span = l4span
        self.interval = interval
        self._last_tx_bytes: dict[str, int] = {}
        self.errors_percent: list[float] = []
        self._process = PeriodicProcess(sim, interval, self._sample,
                                        name="rate-probe")

    def _sample(self) -> None:
        for key, state in list(self._l4span.drb_states.items()):
            estimate = state.estimator.last_estimate
            if estimate is None or estimate.smoothed_rate <= 0:
                continue
            try:
                entity = self._gnb.du.rlc_entity(key.ue_id, key.drb_id)
            except KeyError:
                continue
            name = str(key)
            previous = self._last_tx_bytes.get(name)
            current = entity.transmitted_bytes
            self._last_tx_bytes[name] = current
            if previous is None:
                continue
            true_rate = (current - previous) / self.interval
            if true_rate <= 0:
                continue
            error = 100.0 * (estimate.smoothed_rate - true_rate) / true_rate
            self.errors_percent.append(error)

    def stop(self) -> None:
        self._process.stop()


class ProgressReporter:
    """Periodically feeds live per-flow metric snapshots to a callback.

    The progress hook behind the scenario service's ``GET /runs/{id}/events``
    stream (and any programmatic ``repro.api.run(..., progress=...)`` user):
    every ``interval`` simulated seconds it invokes ``callback`` with one
    plain-dict snapshot::

        {"kind": "snapshot", "time_s": <sim time>, "events": <processed>,
         "flows": {"<flow_id>": {"bytes": <cumulative received>,
                                 "rate_mbps": <rate over the last interval>}}}

    Snapshots are derived from the scenario's existing
    :class:`ThroughputCollector`, so the hook adds one dict build per tick
    and nothing to the per-packet path.  The callback runs inside the event
    loop; it must not block (the service hands snapshots to a queue).
    """

    def __init__(self, sim: Simulator, throughput: ThroughputCollector,
                 callback, interval: float = 0.25) -> None:
        if interval <= 0:
            raise ValueError("progress interval must be positive")
        self._sim = sim
        self._throughput = throughput
        self._callback = callback
        self.interval = interval
        self.snapshots = 0
        self._last_bytes: dict[int, int] = {}
        self._last_time = sim.now
        self._process = PeriodicProcess(sim, interval, self._tick,
                                        name="progress-reporter")

    def _tick(self) -> None:
        now = self._sim.now
        elapsed = max(now - self._last_time, 1e-12)
        flows = {}
        for flow_id in sorted(self._throughput.total_bytes):
            total = self._throughput.total_bytes[flow_id]
            delta = total - self._last_bytes.get(flow_id, 0)
            self._last_bytes[flow_id] = total
            flows[str(flow_id)] = {"bytes": int(total),
                                   "rate_mbps": to_mbps(delta / elapsed)}
        self._last_time = now
        self.snapshots += 1
        self._callback({"kind": "snapshot", "time_s": now,
                        "events": self._sim.processed_events,
                        "flows": flows})

    @property
    def ticks(self) -> int:
        """Reporter events executed so far (instrumentation overhead)."""
        return self._process.ticks

    def stop(self) -> None:
        self._process.stop()
