"""Measurement utilities: statistics, collectors and delay breakdowns."""

from repro.metrics.stats import (BoxStats, box_stats, cdf_points, percentile,
                                 summarize)
from repro.metrics.collectors import (DelayBreakdownAccumulator, OwdCollector,
                                      QueueSampler, ThroughputCollector,
                                      TimeSeries)
from repro.metrics.breakdown import DelayBreakdown, breakdown_from_packet

__all__ = [
    "BoxStats",
    "box_stats",
    "cdf_points",
    "percentile",
    "summarize",
    "OwdCollector",
    "ThroughputCollector",
    "QueueSampler",
    "TimeSeries",
    "DelayBreakdownAccumulator",
    "DelayBreakdown",
    "breakdown_from_packet",
]
