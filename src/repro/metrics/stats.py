"""Summary statistics matching the way the paper reports results.

The evaluation figures use box plots whose centre is the median, box edges
the 25th/75th percentiles and whiskers the 10th/90th percentiles
(Fig. 9 caption); :func:`box_stats` produces exactly those five numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0-100) of ``values``; NaN for an empty input."""
    if len(values) == 0:
        return float("nan")
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass(frozen=True)
class BoxStats:
    """Median, quartiles and 10/90 whiskers of a sample."""

    median: float
    p25: float
    p75: float
    p10: float
    p90: float
    mean: float
    count: int

    def as_dict(self) -> dict:
        """Dictionary form, convenient for report tables."""
        return {"median": self.median, "p25": self.p25, "p75": self.p75,
                "p10": self.p10, "p90": self.p90, "mean": self.mean,
                "count": self.count}


def box_stats(values: Sequence[float]) -> BoxStats:
    """Compute the paper's box-plot statistics for a sample."""
    if len(values) == 0:
        nan = float("nan")
        return BoxStats(nan, nan, nan, nan, nan, nan, 0)
    array = np.asarray(values, dtype=float)
    return BoxStats(median=float(np.median(array)),
                    p25=float(np.percentile(array, 25)),
                    p75=float(np.percentile(array, 75)),
                    p10=float(np.percentile(array, 10)),
                    p90=float(np.percentile(array, 90)),
                    mean=float(np.mean(array)),
                    count=int(array.size))


def cdf_points(values: Sequence[float],
               max_points: Optional[int] = 200) -> list[tuple[float, float]]:
    """(value, cumulative fraction) pairs suitable for plotting a CDF."""
    if len(values) == 0:
        return []
    array = np.sort(np.asarray(values, dtype=float))
    fractions = np.arange(1, array.size + 1) / array.size
    if max_points is not None and array.size > max_points:
        indices = np.linspace(0, array.size - 1, max_points).astype(int)
        array = array[indices]
        fractions = fractions[indices]
    return list(zip(array.tolist(), fractions.tolist()))


def summarize(values: Iterable[float]) -> dict:
    """A compact summary dict (count, mean, median, p10/p90, min, max)."""
    values = list(values)
    if not values:
        return {"count": 0}
    array = np.asarray(values, dtype=float)
    return {
        "count": int(array.size),
        "mean": float(np.mean(array)),
        "median": float(np.median(array)),
        "p10": float(np.percentile(array, 10)),
        "p90": float(np.percentile(array, 90)),
        "min": float(np.min(array)),
        "max": float(np.max(array)),
    }


def reduction_percent(baseline: float, improved: float) -> float:
    """Relative reduction, in percent, of ``improved`` versus ``baseline``.

    Matches the paper's "reduces one-way delay by up to 98%" phrasing.
    Returns 0 for a non-positive baseline.
    """
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline
