"""One-way-delay breakdown (paper Fig. 10).

Each downlink packet carries the timestamps stamped by the components it
traversed.  The breakdown splits its one-way delay into:

* **propagation** -- content server to the CU (the wide-area path and core);
* **queuing** -- time from RLC enqueue until the packet reached the head of
  the RLC queue;
* **scheduling** -- time the packet spent at the head of the queue waiting
  for a MAC transmission opportunity;
* **other** -- everything else (F1-U, HARQ/air interface, UE processing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import Packet


@dataclass
class DelayBreakdown:
    """Component delays of one packet (seconds)."""

    propagation: float
    queuing: float
    scheduling: float
    other: float

    @property
    def total(self) -> float:
        """Sum of the components."""
        return self.propagation + self.queuing + self.scheduling + self.other

    def as_dict(self) -> dict:
        return {"propagation": self.propagation, "queuing": self.queuing,
                "scheduling": self.scheduling, "other": self.other,
                "total": self.total}


def breakdown_from_packet(packet: Packet,
                          delivery_time: float) -> DelayBreakdown | None:
    """Compute the delay breakdown of a delivered packet.

    Returns None when the packet is missing the stamps needed (e.g. it never
    went through a RAN).
    """
    stamps = packet.timestamps
    if "rlc_enqueue" not in stamps:
        return None
    sent = packet.sent_time
    cu_ingress = stamps.get("cu_ingress", stamps["rlc_enqueue"])
    rlc_enqueue = stamps["rlc_enqueue"]
    rlc_head = stamps.get("rlc_head", rlc_enqueue)
    rlc_dequeue = stamps.get("rlc_dequeue", rlc_head)
    delivered = stamps.get("ue_delivered", delivery_time)
    propagation = max(0.0, cu_ingress - sent)
    queuing = max(0.0, rlc_head - rlc_enqueue)
    scheduling = max(0.0, rlc_dequeue - rlc_head)
    other = max(0.0, (delivered - rlc_dequeue) + (rlc_enqueue - cu_ingress))
    return DelayBreakdown(propagation=propagation, queuing=queuing,
                          scheduling=scheduling, other=other)
