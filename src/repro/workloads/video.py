"""Interactive-video workloads (paper §6.2.3, Fig. 13)."""

from __future__ import annotations

from repro.registry import WORKLOADS
from repro.workloads.flows import FlowSpec


@WORKLOADS.register("video")
def interactive_video_flows(num_ues: int, cc_name: str = "scream",
                            start_time: float = 0.0) -> list[FlowSpec]:
    """One interactive video flow per UE (SCReAM or UDP Prague)."""
    if cc_name not in ("scream", "udp_prague"):
        raise ValueError("interactive video uses 'scream' or 'udp_prague'")
    return [FlowSpec(flow_id=i, ue_id=i, cc_name=cc_name,
                     start_time=start_time, label="video")
            for i in range(num_ues)]
