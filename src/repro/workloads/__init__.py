"""Workload descriptions: which flows run on which UEs, and when."""

from repro.workloads.flows import FlowSpec, bulk_download_flows, mixed_share_flows
from repro.workloads.short_flows import short_flow, short_long_mix
from repro.workloads.video import interactive_video_flows

__all__ = [
    "FlowSpec",
    "bulk_download_flows",
    "mixed_share_flows",
    "short_flow",
    "short_long_mix",
    "interactive_video_flows",
]
