"""Short-lived-flow workloads (paper Fig. 11).

Web-style interactions are modelled as a 14 kB transfer competing with a
long-lived download inside the same UE, exactly the configuration the paper
evaluates: the short flow's completion time is the latency-sensitive metric,
the long flow's rate the throughput-sensitive one.
"""

from __future__ import annotations

from repro.registry import WORKLOADS
from repro.workloads.flows import FlowSpec

#: The paper's short-flow size.
DEFAULT_SLF_BYTES = 14_000


def short_flow(flow_id: int, ue_id: int, cc_name: str, start_time: float,
               size_bytes: int = DEFAULT_SLF_BYTES) -> FlowSpec:
    """A single short-lived flow."""
    return FlowSpec(flow_id=flow_id, ue_id=ue_id, cc_name=cc_name,
                    start_time=start_time, flow_bytes=size_bytes, label="slf")


@WORKLOADS.register("short_long_mix", "web")
def short_long_mix(cc_name: str, ue_id: int = 0,
                   slf_start: float = 2.0,
                   slf_bytes: int = DEFAULT_SLF_BYTES,
                   repeat: int = 1,
                   repeat_interval: float = 2.0) -> list[FlowSpec]:
    """One long-lived flow plus one (or several back-to-back) short flows."""
    flows = [FlowSpec(flow_id=0, ue_id=ue_id, cc_name=cc_name,
                      start_time=0.0, label="llf")]
    for i in range(repeat):
        flows.append(short_flow(flow_id=i + 1, ue_id=ue_id, cc_name=cc_name,
                                start_time=slf_start + i * repeat_interval,
                                size_bytes=slf_bytes))
    return flows
