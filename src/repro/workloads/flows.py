"""Flow specifications and the bulk-download workloads of the evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.registry import WORKLOADS


@dataclass
class FlowSpec:
    """One transport flow in a scenario.

    Attributes:
        flow_id: unique id (also used for five-tuple construction).
        ue_id: the UE terminating the flow.
        cc_name: congestion-control algorithm ("prague", "cubic", ...).
        start_time / stop_time: when the sender starts and (optionally) stops.
        flow_bytes: finite transfer size, or None for a long-lived flow.
        label: free-form tag used by experiment reports ("llf", "slf", ...).
        wan_rtt: per-flow wide-area RTT (seconds) overriding the scenario
            default, or None to inherit it — distinct-RTT fairness scenarios
            (Fig. 14b) give each flow its own value.
    """

    flow_id: int
    ue_id: int
    cc_name: str
    start_time: float = 0.0
    stop_time: Optional[float] = None
    flow_bytes: Optional[int] = None
    label: str = ""
    wan_rtt: Optional[float] = None


@WORKLOADS.register("bulk")
def bulk_download_flows(num_ues: int, cc_name: str,
                        start_time: float = 0.0) -> list[FlowSpec]:
    """One long-lived download per UE -- the Fig. 9 / Fig. 24 workload."""
    return [FlowSpec(flow_id=i, ue_id=i, cc_name=cc_name,
                     start_time=start_time, label="bulk")
            for i in range(num_ues)]


@WORKLOADS.register("mixed")
def mixed_share_flows(cc_names: list[str],
                      staggered_start: float = 0.0,
                      stop_after: Optional[float] = None,
                      one_ue: bool = False) -> list[FlowSpec]:
    """One flow per algorithm, optionally staggered in time (Fig. 14 / Fig. 16).

    Args:
        cc_names: algorithm of each flow, in start order.
        staggered_start: seconds between consecutive flow starts.
        stop_after: if given, flow i stops ``stop_after - i * staggered_start``
            seconds after the scenario start (mirroring Fig. 14's 60/50/40 s
            end times).
        one_ue: place all flows on UE 0 (shared-DRB experiments) instead of
            one UE per flow.
    """
    flows = []
    for index, cc_name in enumerate(cc_names):
        stop = None
        if stop_after is not None:
            stop = stop_after - index * staggered_start
        flows.append(FlowSpec(flow_id=index,
                              ue_id=0 if one_ue else index,
                              cc_name=cc_name,
                              start_time=index * staggered_start,
                              stop_time=stop,
                              label=cc_name))
    return flows
