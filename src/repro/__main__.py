"""Command-line entry point: ``python -m repro <experiment> [options]``.

Runs one of the paper-figure harnesses (or a single ad-hoc scenario) and
prints its rows as a text table.  This is a convenience wrapper around the
same functions the benchmarks call; see ``--help`` for the available
experiments.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.experiments.report import format_table
from repro.experiments.runner import default_workers


def _run_scenario_command(args: argparse.Namespace) -> int:
    from repro.experiments.scenario import ScenarioConfig, run_scenario

    result = run_scenario(ScenarioConfig(
        num_ues=args.ues, duration_s=args.duration, cc_name=args.cc,
        marker=args.marker, channel_profile=args.channel, seed=args.seed))
    print(format_table([result.summary()]))
    return 0


_EXPERIMENTS = {
    "fig2": ("repro.experiments.fig02_motivation", "run_fig2", "rows"),
    "fig9": ("repro.experiments.fig09_tcp_sweep", "run_fig9", "as_row"),
    "fig10": ("repro.experiments.fig10_breakdown", "run_fig10", None),
    "fig11": ("repro.experiments.fig11_short_flows", "run_fig11", None),
    "fig12": ("repro.experiments.fig12_tcran", "run_fig12", None),
    "fig13": ("repro.experiments.fig13_interactive", "run_fig13", None),
    "fig15": ("repro.experiments.fig15_shortcircuit", "run_fig15", None),
    "fig16": ("repro.experiments.fig16_shared_drb", "run_fig16", None),
    "fig17": ("repro.experiments.fig17_queue_cdf", "run_fig17", None),
    "fig18": ("repro.experiments.fig18_coherence", "run_fig18", None),
    "fig19": ("repro.experiments.fig19_threshold", "run_fig19", None),
    "fig20": ("repro.experiments.fig20_rate_error", "run_fig20", None),
    "fig21": ("repro.experiments.fig21_processing", "run_fig21", None),
    "fig24": ("repro.experiments.fig09_tcp_sweep", "run_fig24", "as_row"),
    "table1": ("repro.experiments.table1_overhead", "run_table1", None),
}


def _run_experiment_command(args: argparse.Namespace) -> int:
    import importlib
    import inspect

    module_name, function_name, row_adapter = _EXPERIMENTS[args.experiment]
    module = importlib.import_module(module_name)
    function = getattr(module, function_name)
    kwargs = {}
    if "workers" in inspect.signature(function).parameters:
        kwargs["workers"] = args.workers
        if args.workers > 1:
            kwargs["progress"] = lambda done, total: print(
                f"[{args.experiment}] {done}/{total} cells", file=sys.stderr)
    elif args.workers > 1:
        print(f"note: {args.experiment} is not a sweep grid; "
              "--workers ignored", file=sys.stderr)
    output = function(**kwargs)
    if row_adapter == "rows":
        rows = output.rows()
    elif row_adapter == "as_row":
        rows = [cell.as_row() for cell in output]
    else:
        rows = output
    drop = {"rtt_cdf", "queue_cdf", "error_cdf", "period_cdf", "cdf", "summary",
            "error_summary", "queue_summary"}
    printable = [{k: v for k, v in row.items() if k not in drop}
                 for row in rows]
    print(format_table(printable))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the requested command."""
    parser = argparse.ArgumentParser(
        prog="repro", description="L4Span reproduction experiment runner")
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenario = subparsers.add_parser(
        "scenario", help="run a single ad-hoc scenario and print its summary")
    scenario.add_argument("--ues", type=int, default=4)
    scenario.add_argument("--duration", type=float, default=5.0)
    scenario.add_argument("--cc", default="prague")
    scenario.add_argument("--marker", default="l4span",
                          choices=["none", "l4span", "tcran", "ran_dualpi2"])
    scenario.add_argument("--channel", default="static",
                          choices=["static", "pedestrian", "vehicular",
                                   "mobile"])
    scenario.add_argument("--seed", type=int, default=1)
    scenario.set_defaults(handler=_run_scenario_command)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's figures/tables")
    experiment.add_argument("experiment", choices=sorted(_EXPERIMENTS))
    experiment.add_argument(
        "--workers", type=int, default=default_workers(),
        help="worker processes for grid experiments (default: "
             f"$REPRO_SWEEP_WORKERS or 1; this host has {os.cpu_count()} "
             "CPUs)")
    experiment.set_defaults(handler=_run_experiment_command)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
