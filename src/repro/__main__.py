"""Command-line entry point: ``python -m repro <command> [options]``.

``scenario`` runs a single scenario — ad-hoc (``--cc/--marker/--channel``
flags), from a named preset (``--preset two-cell-imbalance``) or from a JSON
spec file (``--spec scenario.json``) — and prints its summary.  ``experiment``
regenerates one of the paper's figures/tables.  Both accept ``--json`` for
machine-readable output; ``scenario --dump-spec`` prints the resolved spec as
JSON (the natural way to bootstrap a ``--spec`` file) without running it.

All component choices (``--cc``, ``--marker``, ``--channel``,
``--scheduler``, ``--preset``) are derived from the registries in
:mod:`repro.registry`, so a newly registered component is immediately
selectable here with no CLI edits.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

from repro.experiments.report import format_table
from repro.experiments.runner import default_workers


def _build_spec(args: argparse.Namespace):
    """Assemble the scenario spec from --spec / --preset plus flag overrides."""
    from repro.experiments.presets import make_preset
    from repro.experiments.spec import ScenarioSpec

    if args.spec is not None and args.preset is not None:
        raise SystemExit("--spec and --preset are mutually exclusive")
    if args.spec is not None:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = ScenarioSpec.from_json(handle.read())
    elif args.preset is not None:
        spec = make_preset(args.preset)
    else:
        spec = ScenarioSpec(num_ues=4)
    overrides = {"num_ues": args.ues, "duration_s": args.duration,
                 "cc_name": args.cc, "marker": args.marker,
                 "channel_profile": args.channel, "scheduler": args.scheduler,
                 "seed": args.seed}
    overrides = {key: value for key, value in overrides.items()
                 if value is not None}
    if args.marker is not None:
        # The spec's legacy ``l4span`` boolean would otherwise outrank the
        # explicitly requested marker.
        overrides["l4span"] = None
    if args.shards is not None or args.shard_windows is not None:
        from repro.experiments.spec import ShardingSpec
        sharding = spec.sharding
        if args.shards is not None:
            sharding = (ShardingSpec(mode="auto", shards=args.shards)
                        if args.shards > 1 else ShardingSpec(mode="off"))
        if args.shard_windows is not None:
            sharding = dataclasses.replace(
                sharding, adaptive_windows=args.shard_windows == "adaptive")
        overrides["sharding"] = sharding
    if args.engine is not None:
        overrides["engine"] = dataclasses.replace(spec.engine,
                                                  backend=args.engine)
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    if spec.flows is not None:
        # Explicit flow lists don't consult the scalar defaults; apply the
        # flag to them directly rather than silently doing nothing.
        if args.cc is not None:
            spec = dataclasses.replace(
                spec, flows=[dataclasses.replace(flow, cc_name=args.cc)
                             for flow in spec.flows])
        if args.ues is not None:
            print("note: this spec defines explicit flows; --ues only adds "
                  "idle UEs", file=sys.stderr)
    return spec.validate()


def _run_scenario_command(args: argparse.Namespace) -> int:
    from repro.experiments.scenario import run_scenario

    spec = _build_spec(args)
    if args.dump_spec:
        print(spec.to_json())
        return 0
    result = run_scenario(spec)
    if result.sharding_stats.get("fallback"):
        blockers = "; ".join(result.sharding_stats.get("blockers", []))
        print("note: spec cannot be sharded, ran on the single event loop "
              f"instead ({blockers})", file=sys.stderr)
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_table([summary]))
    return 0


_EXPERIMENTS = {
    "fig2": ("repro.experiments.fig02_motivation", "run_fig2", "rows"),
    "fig9": ("repro.experiments.fig09_tcp_sweep", "run_fig9", "as_row"),
    "fig10": ("repro.experiments.fig10_breakdown", "run_fig10", None),
    "fig11": ("repro.experiments.fig11_short_flows", "run_fig11", None),
    "fig12": ("repro.experiments.fig12_tcran", "run_fig12", None),
    "fig13": ("repro.experiments.fig13_interactive", "run_fig13", None),
    "fig14": ("repro.experiments.fig14_fairness", "run_fig14", "fig14"),
    "fig15": ("repro.experiments.fig15_shortcircuit", "run_fig15", None),
    "fig16": ("repro.experiments.fig16_shared_drb", "run_fig16", None),
    "fig17": ("repro.experiments.fig17_queue_cdf", "run_fig17", None),
    "fig18": ("repro.experiments.fig18_coherence", "run_fig18", None),
    "fig19": ("repro.experiments.fig19_threshold", "run_fig19", None),
    "fig20": ("repro.experiments.fig20_rate_error", "run_fig20", None),
    "fig21": ("repro.experiments.fig21_processing", "run_fig21", None),
    "fig24": ("repro.experiments.fig09_tcp_sweep", "run_fig24", "as_row"),
    "table1": ("repro.experiments.table1_overhead", "run_table1", None),
}


def _run_experiment_command(args: argparse.Namespace) -> int:
    import importlib
    import inspect

    module_name, function_name, row_adapter = _EXPERIMENTS[args.experiment]
    module = importlib.import_module(module_name)
    function = getattr(module, function_name)
    kwargs = {}
    if "workers" in inspect.signature(function).parameters:
        kwargs["workers"] = args.workers
        if args.workers > 1:
            kwargs["progress"] = lambda done, total: print(
                f"[{args.experiment}] {done}/{total} cells", file=sys.stderr)
    elif args.workers > 1:
        print(f"note: {args.experiment} is not a sweep grid; "
              "--workers ignored", file=sys.stderr)
    output = function(**kwargs)
    if row_adapter == "rows":
        rows = output.rows()
    elif row_adapter == "as_row":
        rows = [cell.as_row() for cell in output]
    elif row_adapter == "fig14":
        rows = [{"panel": panel.name,
                 "fairness_index": panel.fairness_index,
                 "mean_throughputs_mbps": panel.mean_throughputs_mbps}
                for panel in output]
    else:
        rows = output
    drop = {"rtt_cdf", "queue_cdf", "error_cdf", "period_cdf", "cdf", "summary",
            "error_summary", "queue_summary"}
    printable = [{k: v for k, v in row.items() if k not in drop}
                 for row in rows]
    if args.json:
        print(json.dumps(printable, indent=2, sort_keys=True, default=str))
    else:
        print(format_table(printable))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the requested command."""
    # Importing the spec module pulls in every component family's defining
    # modules, so all registries are populated before choices are derived.
    import repro.experiments.spec  # noqa: F401
    from repro.experiments.presets import preset_names
    from repro.registry import (CC_SENDERS, CHANNEL_PROFILES, MARKERS,
                                SCHEDULERS)
    from repro.sim.backends import ENGINE_BACKENDS

    parser = argparse.ArgumentParser(
        prog="repro", description="L4Span reproduction experiment runner")
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenario = subparsers.add_parser(
        "scenario",
        help="run a single scenario (ad-hoc flags, --preset, or --spec) and "
             "print its summary")
    scenario.add_argument("--spec", metavar="FILE",
                          help="JSON scenario spec file to run")
    scenario.add_argument("--preset", choices=preset_names(),
                          help="named preset scenario to run")
    scenario.add_argument("--ues", type=int, default=None)
    scenario.add_argument("--duration", type=float, default=None)
    scenario.add_argument("--cc", default=None,
                          choices=CC_SENDERS.names(include_aliases=True))
    scenario.add_argument("--marker", default=None,
                          choices=MARKERS.names(include_aliases=True))
    scenario.add_argument("--channel", default=None,
                          choices=CHANNEL_PROFILES.names(include_aliases=True))
    scenario.add_argument("--scheduler", default=None,
                          choices=SCHEDULERS.names(include_aliases=True))
    scenario.add_argument("--seed", type=int, default=None)
    scenario.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard a multi-cell scenario over N worker processes "
             "(1 disables; see the README's Parallelism section)")
    scenario.add_argument(
        "--engine", default=None,
        choices=ENGINE_BACKENDS.names(include_aliases=True),
        help="engine backend for the per-slot hot loops (default: the "
             "spec's engine.backend, or $REPRO_ENGINE, or python)")
    scenario.add_argument(
        "--shard-windows", choices=("adaptive", "fixed"), default=None,
        help="barrier window policy for mobility-coupled sharded runs "
             "(default: the spec's sharding.adaptive_windows, i.e. "
             "adaptive)")
    scenario.add_argument("--json", action="store_true",
                          help="print the summary as JSON instead of a table")
    scenario.add_argument("--dump-spec", action="store_true",
                          help="print the resolved spec as JSON and exit "
                               "without running")
    scenario.set_defaults(handler=_run_scenario_command)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's figures/tables")
    experiment.add_argument("experiment", choices=sorted(_EXPERIMENTS))
    experiment.add_argument(
        "--workers", type=int, default=default_workers(),
        help="worker processes for grid experiments (default: "
             f"$REPRO_SWEEP_WORKERS or 1; this host has {os.cpu_count()} "
             "CPUs)")
    experiment.add_argument("--json", action="store_true",
                            help="print rows as JSON instead of a table")
    experiment.set_defaults(handler=_run_experiment_command)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
