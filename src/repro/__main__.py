"""Command-line entry point: ``python -m repro <command> [options]``.

``scenario`` runs a single scenario — ad-hoc (``--cc/--marker/--channel``
flags), from a named preset (``--preset two-cell-imbalance``) or from a JSON
spec file (``--spec scenario.json``) — and prints its summary.  ``experiment``
regenerates one of the paper's figures/tables.  ``serve`` boots the
long-lived scenario service (``docs/service.md``).  ``scenario --json``
prints the canonical schema-versioned result document — byte-identical to
what the service archives and serves for the same spec and seed;
``scenario --dump-spec`` prints the resolved spec as JSON (the natural way
to bootstrap a ``--spec`` file) without running it.

All component choices (``--cc``, ``--marker``, ``--channel``,
``--scheduler``, ``--preset``) are derived from the registries in
:mod:`repro.registry`, so a newly registered component is immediately
selectable here with no CLI edits.  The runtime flags shared by
``scenario`` and ``serve`` (``--engine/--shards/--workers/--shard-windows``)
come from one argparse parent in :mod:`repro.experiments.options`, so the
two commands cannot drift apart.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

from repro.experiments.report import format_table
from repro.experiments.runner import default_workers


def _build_spec(args: argparse.Namespace):
    """Assemble the scenario spec from --spec / --preset plus flag overrides."""
    from repro.experiments.options import (apply_runtime_options,
                                           runtime_options_from_args)
    from repro.experiments.presets import make_preset
    from repro.experiments.spec import ScenarioSpec

    if args.spec is not None and args.preset is not None:
        raise SystemExit("--spec and --preset are mutually exclusive")
    if args.spec is not None:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = ScenarioSpec.from_json(handle.read())
    elif args.preset is not None:
        spec = make_preset(args.preset)
    else:
        spec = ScenarioSpec(num_ues=4)
    overrides = {"num_ues": args.ues, "duration_s": args.duration,
                 "cc_name": args.cc, "marker": args.marker,
                 "channel_profile": args.channel, "scheduler": args.scheduler,
                 "seed": args.seed}
    overrides = {key: value for key, value in overrides.items()
                 if value is not None}
    if args.marker is not None:
        # The spec's legacy ``l4span`` boolean would otherwise outrank the
        # explicitly requested marker.
        overrides["l4span"] = None
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    # The shared runtime flags (--engine/--shards/--workers/--shard-windows)
    # go through the same application path as serve-submitted overrides.
    spec = apply_runtime_options(spec, runtime_options_from_args(args))
    if spec.flows is not None:
        # Explicit flow lists don't consult the scalar defaults; apply the
        # flag to them directly rather than silently doing nothing.
        if args.cc is not None:
            spec = dataclasses.replace(
                spec, flows=[dataclasses.replace(flow, cc_name=args.cc)
                             for flow in spec.flows])
        if args.ues is not None:
            print("note: this spec defines explicit flows; --ues only adds "
                  "idle UEs", file=sys.stderr)
    return spec.validate()


def _run_scenario_command(args: argparse.Namespace) -> int:
    from repro.experiments.results import dump_document, result_document
    from repro.experiments.scenario import run_scenario

    spec = _build_spec(args)
    if args.dump_spec:
        print(spec.to_json())
        return 0
    result = run_scenario(spec)
    if result.sharding_stats.get("fallback"):
        blockers = "; ".join(result.sharding_stats.get("blockers", []))
        print("note: spec cannot be sharded, ran on the single event loop "
              f"instead ({blockers})", file=sys.stderr)
    if args.json:
        # The canonical document, exact bytes — identical to the archive
        # file and to GET /runs/{id}/document for the same spec and seed.
        sys.stdout.write(dump_document(result_document(result)))
    else:
        print(format_table([result.summary()]))
    return 0


def _run_serve_command(args: argparse.Namespace) -> int:
    from repro.api import serve
    from repro.experiments.options import runtime_options_from_args

    def announce(service) -> None:
        print(f"repro scenario service listening on {service.url} "
              f"(archive: {service.archive.root})", flush=True)

    serve(host=args.host, port=args.port, runs_dir=args.runs_dir,
          defaults=runtime_options_from_args(args), max_runs=args.max_runs,
          verbose=args.verbose, announce=announce)
    return 0


_EXPERIMENTS = {
    "fig2": ("repro.experiments.fig02_motivation", "run_fig2", "rows"),
    "fig9": ("repro.experiments.fig09_tcp_sweep", "run_fig9", "as_row"),
    "fig10": ("repro.experiments.fig10_breakdown", "run_fig10", None),
    "fig11": ("repro.experiments.fig11_short_flows", "run_fig11", None),
    "fig12": ("repro.experiments.fig12_tcran", "run_fig12", None),
    "fig13": ("repro.experiments.fig13_interactive", "run_fig13", None),
    "fig14": ("repro.experiments.fig14_fairness", "run_fig14", "fig14"),
    "fig15": ("repro.experiments.fig15_shortcircuit", "run_fig15", None),
    "fig16": ("repro.experiments.fig16_shared_drb", "run_fig16", None),
    "fig17": ("repro.experiments.fig17_queue_cdf", "run_fig17", None),
    "fig18": ("repro.experiments.fig18_coherence", "run_fig18", None),
    "fig19": ("repro.experiments.fig19_threshold", "run_fig19", None),
    "fig20": ("repro.experiments.fig20_rate_error", "run_fig20", None),
    "fig21": ("repro.experiments.fig21_processing", "run_fig21", None),
    "fig24": ("repro.experiments.fig09_tcp_sweep", "run_fig24", "as_row"),
    "table1": ("repro.experiments.table1_overhead", "run_table1", None),
}


def _run_experiment_command(args: argparse.Namespace) -> int:
    import importlib
    import inspect

    module_name, function_name, row_adapter = _EXPERIMENTS[args.experiment]
    module = importlib.import_module(module_name)
    function = getattr(module, function_name)
    kwargs = {}
    if "workers" in inspect.signature(function).parameters:
        kwargs["workers"] = args.workers
        if args.workers > 1:
            kwargs["progress"] = lambda done, total: print(
                f"[{args.experiment}] {done}/{total} cells", file=sys.stderr)
    elif args.workers > 1:
        print(f"note: {args.experiment} is not a sweep grid; "
              "--workers ignored", file=sys.stderr)
    output = function(**kwargs)
    if row_adapter == "rows":
        rows = output.rows()
    elif row_adapter == "as_row":
        rows = [cell.as_row() for cell in output]
    elif row_adapter == "fig14":
        rows = [{"panel": panel.name,
                 "fairness_index": panel.fairness_index,
                 "mean_throughputs_mbps": panel.mean_throughputs_mbps}
                for panel in output]
    else:
        rows = output
    drop = {"rtt_cdf", "queue_cdf", "error_cdf", "period_cdf", "cdf", "summary",
            "error_summary", "queue_summary"}
    printable = [{k: v for k, v in row.items() if k not in drop}
                 for row in rows]
    if args.json:
        print(json.dumps(printable, indent=2, sort_keys=True, default=str))
    else:
        print(format_table(printable))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the requested command."""
    # Importing the spec module pulls in every component family's defining
    # modules, so all registries are populated before choices are derived.
    import repro.experiments.spec  # noqa: F401
    from repro.experiments.options import add_runtime_arguments
    from repro.experiments.presets import preset_names
    from repro.registry import (CC_SENDERS, CHANNEL_PROFILES, MARKERS,
                                SCHEDULERS)

    parser = argparse.ArgumentParser(
        prog="repro", description="L4Span reproduction experiment runner")
    subparsers = parser.add_subparsers(dest="command", required=True)

    # The one parent contributing --engine/--shards/--workers/--shard-windows
    # to every command that runs (or will run) scenarios.
    runtime = argparse.ArgumentParser(add_help=False)
    add_runtime_arguments(runtime)

    scenario = subparsers.add_parser(
        "scenario", parents=[runtime],
        help="run a single scenario (ad-hoc flags, --preset, or --spec) and "
             "print its summary")
    scenario.add_argument("--spec", metavar="FILE",
                          help="JSON scenario spec file to run")
    scenario.add_argument("--preset", choices=preset_names(),
                          help="named preset scenario to run")
    scenario.add_argument("--ues", type=int, default=None)
    scenario.add_argument("--duration", type=float, default=None)
    scenario.add_argument("--cc", default=None,
                          choices=CC_SENDERS.names(include_aliases=True))
    scenario.add_argument("--marker", default=None,
                          choices=MARKERS.names(include_aliases=True))
    scenario.add_argument("--channel", default=None,
                          choices=CHANNEL_PROFILES.names(include_aliases=True))
    scenario.add_argument("--scheduler", default=None,
                          choices=SCHEDULERS.names(include_aliases=True))
    scenario.add_argument("--seed", type=int, default=None)
    scenario.add_argument("--json", action="store_true",
                          help="print the canonical result document as JSON "
                               "instead of a summary table")
    scenario.add_argument("--dump-spec", action="store_true",
                          help="print the resolved spec as JSON and exit "
                               "without running")
    scenario.set_defaults(handler=_run_scenario_command)

    serve = subparsers.add_parser(
        "serve", parents=[runtime],
        help="boot the long-lived scenario service (POST /runs, "
             "GET /runs/{id}, SSE /runs/{id}/events; see docs/service.md); "
             "the runtime flags become defaults for submitted specs")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8757,
                       help="bind port (default: 8757; 0 picks a free port)")
    serve.add_argument("--runs-dir", default=None, metavar="DIR",
                       help="run archive directory (default: $REPRO_RUNS_DIR "
                            "or .repro_runs)")
    serve.add_argument("--max-runs", type=int, default=1, metavar="N",
                       help="concurrently executing runs (clamped to the "
                            "core budget; default: 1)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")
    serve.set_defaults(handler=_run_serve_command)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's figures/tables")
    experiment.add_argument("experiment", choices=sorted(_EXPERIMENTS))
    experiment.add_argument(
        "--workers", type=int, default=default_workers(),
        help="worker processes for grid experiments (default: "
             f"$REPRO_SWEEP_WORKERS or 1; this host has {os.cpu_count()} "
             "CPUs)")
    experiment.add_argument("--json", action="store_true",
                            help="print rows as JSON instead of a table")
    experiment.set_defaults(handler=_run_experiment_command)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
