#!/usr/bin/env python3
"""A busy cell: many UEs downloading concurrently with different TCPs.

Reproduces a scaled-down slice of the paper's Fig. 9: several UEs run
concurrent bulk downloads with Prague, BBRv2 or CUBIC over a static or mobile
channel, with and without L4Span, and the per-UE one-way delay and throughput
are reported.

Run with::

    python examples/busy_cell_tcp.py [num_ues] [duration_s]
"""

from __future__ import annotations

import sys

from repro.experiments.fig09_tcp_sweep import SweepConfig, improvement_table, run_fig9
from repro.experiments.report import format_table


def main() -> None:
    num_ues = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 5.0
    config = SweepConfig(cc_names=("prague", "cubic"),
                         channels=("static", "mobile"),
                         ue_counts=(num_ues,), duration_s=duration)
    cells = run_fig9(config)
    rows = [cell.as_row() for cell in cells]
    print(f"Concurrent downloads, {num_ues} UEs, {duration:.0f} s per run\n")
    print(format_table(rows, columns=["cc", "channel", "l4span",
                                      "owd_median_ms", "owd_p90_ms",
                                      "per_ue_tput_median_mbps"]))
    print("\nL4Span improvement per configuration:\n")
    print(format_table(improvement_table(cells)))


if __name__ == "__main__":
    main()
