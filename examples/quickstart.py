#!/usr/bin/env python3
"""Quickstart: one UE downloading with TCP Prague, with and without L4Span.

Runs two short simulations of the same busy bearer -- first on a plain 5G RAN,
then with the L4Span layer attached to the CU -- and prints the one-way
delay / throughput comparison that motivates the paper.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro.api as api
from repro.experiments.report import format_table


def main() -> None:
    rows = []
    for marker in ("none", "l4span"):
        config = api.ScenarioSpec(num_ues=1, duration_s=6.0,
                                  cc_name="prague", marker=marker,
                                  channel_profile="static", seed=1)
        result = api.run(config)
        summary = result.summary()
        rows.append({
            "ran": "plain 5G" if marker == "none" else "5G + L4Span",
            "median one-way delay (ms)": summary["median_owd_ms"],
            "median RTT (ms)": summary["median_rtt_ms"],
            "goodput (Mbit/s)": summary["total_goodput_mbps"],
            "mean RLC queue (SDUs)": summary["mean_queue_sdus"],
            "packets marked": summary["marked_packets"],
        })
    print("TCP Prague, one UE, ~40 Mbit/s cell, 38 ms WAN RTT\n")
    print(format_table(rows))
    baseline, l4span = rows
    reduction = 100.0 * (baseline["median one-way delay (ms)"]
                         - l4span["median one-way delay (ms)"]) \
        / baseline["median one-way delay (ms)"]
    print(f"\nL4Span reduces the median one-way delay by {reduction:.1f}% "
          "while keeping the link busy.")


if __name__ == "__main__":
    main()
