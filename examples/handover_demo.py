"""A mid-transfer inter-cell handover, and what it costs the flow.

UE 0 downloads through cell 0, hands over to cell 1 at t=1 s (queued RLC
data Xn-forwarded, receiver state transferred, 20 ms interruption) and
returns at t=2 s.  The run prints each handover record with the measured
per-flow delivery gap, plus per-flow goodput/delay so the interruption and
the busier target cell are both visible.

The same spec serializes to JSON (``--dump-spec``/``--spec``) and, with
``sharding``/``--shards``, runs split across worker processes with
identical metrics -- see docs/architecture.md for why.

Run with:  PYTHONPATH=src python examples/handover_demo.py
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.experiments.scenario import run_scenario
from repro.experiments.spec import (CellSpec, HandoverSpec, MobilitySpec,
                                    ScenarioSpec, UeSpec)


def main() -> None:
    spec = ScenarioSpec(
        name="handover-demo", duration_s=3.0, marker="l4span",
        channel_profile="static", seed=17, num_ues=0,
        cells=[CellSpec(cell_id=0), CellSpec(cell_id=1)],
        ues=[UeSpec(ue_id=0, cell_id=0),   # the moving UE
             UeSpec(ue_id=1, cell_id=1)],  # background load in the target
        mobility=MobilitySpec(
            mode="schedule", ho_mode="forward", interruption_s=0.020,
            handovers=[HandoverSpec(time=1.0, ue_id=0, target_cell=1),
                       HandoverSpec(time=2.0, ue_id=0, target_cell=0)]))

    result = run_scenario(spec)

    print("handovers:")
    rows = [{
        "t": record["time"],
        "route": f"cell{record['from_cell']} -> cell{record['to_cell']}",
        "mode": record["ho_mode"],
        "forwarded_sdus": record["forwarded_sdus"],
        "service_back_at": record["completed_at"],
        "data_gap_ms": round(
            max(record["data_gap_s"].values(), default=float("nan")) * 1e3,
            1),
    } for record in result.handovers]
    print(format_table(rows))

    print("\nflows:")
    print(format_table([{
        "flow": flow.flow_id,
        "ue": flow.ue_id,
        "goodput_mbps": round(flow.goodput_mbps, 2),
        "median_owd_ms": round(flow.owd_box().median * 1e3, 2),
        "p90_owd_ms": round(flow.owd_box().p90 * 1e3, 2),
    } for flow in result.flows]))


if __name__ == "__main__":
    main()
