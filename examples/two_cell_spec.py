"""Heterogeneous scenarios from declarative specs.

A congested vehicular cell and a quiet static cell share one 5G core;
the flows carry distinct WAN RTTs. The same spec serializes to JSON and
back (``python -m repro scenario --spec ...`` runs the file form).

Run with:  PYTHONPATH=src python examples/two_cell_spec.py
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.experiments.scenario import run_scenario
from repro.experiments.spec import CellSpec, ScenarioSpec, UeSpec
from repro.units import ms
from repro.workloads.flows import FlowSpec


def main() -> None:
    spec = ScenarioSpec(
        name="two-cell-demo", duration_s=6.0, marker="l4span", seed=17,
        cells=[CellSpec(cell_id=0), CellSpec(cell_id=1)],
        ues=[UeSpec(ue_id=0, cell_id=0, channel_profile="vehicular"),
             UeSpec(ue_id=1, cell_id=0, channel_profile="vehicular"),
             UeSpec(ue_id=2, cell_id=1, channel_profile="static")],
        flows=[FlowSpec(flow_id=0, ue_id=0, cc_name="prague", wan_rtt=ms(18)),
               FlowSpec(flow_id=1, ue_id=1, cc_name="cubic", wan_rtt=ms(78)),
               FlowSpec(flow_id=2, ue_id=2, cc_name="prague")])

    # The spec round-trips through JSON; this is what --spec files contain.
    spec = ScenarioSpec.from_json(spec.to_json())

    result = run_scenario(spec)
    rows = [{
        "flow": flow.flow_id,
        "cc": flow.cc_name,
        "cell": next(u.cell_id for u in spec.resolved_ues()
                     if u.ue_id == flow.ue_id),
        "goodput_mbps": round(flow.goodput_mbps, 2),
        "median_owd_ms": round(flow.owd_box().median * 1e3, 2),
    } for flow in result.flows]
    print(format_table(rows))


if __name__ == "__main__":
    main()
