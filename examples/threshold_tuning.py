#!/usr/bin/env python3
"""Tuning the sojourn-time threshold tau_s (the paper's Fig. 19).

Sweeps the L4S marking threshold from 1 ms to 100 ms on a single busy UE and
prints the resulting RTT / rate trade-off, showing why the paper settles on
10 ms: small thresholds under-fill the MAC scheduler's buffer and sacrifice
throughput, large thresholds buy nothing but latency.

Run with::

    python examples/threshold_tuning.py
"""

from __future__ import annotations

from repro.experiments.fig19_threshold import ThresholdSweepConfig, run_fig19
from repro.experiments.report import format_table


def main() -> None:
    config = ThresholdSweepConfig(thresholds_ms=(1.0, 5.0, 10.0, 50.0),
                                  duration_s=5.0)
    rows = run_fig19(config)
    print("Sojourn-threshold sweep (TCP Prague, 1 UE)\n")
    print(format_table(rows))
    best = min(rows, key=lambda r: (r["rtt_mean_ms"]
                                    - 2.0 * r["rate_sum_mbps"]))
    print(f"\nBest latency/throughput balance in this sweep: "
          f"{best['threshold_ms']:.0f} ms")


if __name__ == "__main__":
    main()
