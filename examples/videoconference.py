#!/usr/bin/env python3
"""Interactive video over 5G: SCReAM and UDP Prague with and without L4Span.

Reproduces a scaled-down slice of the paper's Fig. 13: several UEs each run
one interactive video flow (SCReAM or UDP Prague) under different channel
conditions, and the RTT / per-UE rate trade-off is reported.  Because these
applications run over UDP, L4Span marks the downlink IP ECN field instead of
short-circuiting TCP ACKs.

Run with::

    python examples/videoconference.py [num_ues]
"""

from __future__ import annotations

import sys

from repro.experiments.fig13_interactive import InteractiveConfig, run_fig13
from repro.experiments.report import format_table


def main() -> None:
    num_ues = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    config = InteractiveConfig(num_ues=num_ues,
                               channels=("static", "vehicular"),
                               duration_s=5.0)
    rows = run_fig13(config)
    print(f"Interactive video, {num_ues} UEs per run\n")
    print(format_table(rows, columns=["cc", "channel", "l4span",
                                      "rtt_median_ms", "rtt_p90_ms",
                                      "per_ue_tput_mbps"]))


if __name__ == "__main__":
    main()
