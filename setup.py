"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can also be installed in environments without PEP 660 support
(``pip install -e . --no-use-pep517``) or without network access for build
isolation.
"""

from setuptools import setup

setup()
