"""Benchmark regenerating Fig. 24 (appendix sweep: BBR and Reno)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration, scaled_ues
from repro.experiments.fig09_tcp_sweep import (SweepConfig, improvement_table,
                                               run_fig24)


def test_fig24_appendix_sweep(benchmark):
    config = SweepConfig(channels=("static", "mobile"),
                         ue_counts=(scaled_ues(4),),
                         duration_s=scaled_duration(4.0))

    def run():
        return run_fig24(config)

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [cell.as_row() for cell in cells]
    improvements = improvement_table(cells)
    attach_rows(benchmark, rows, improvements=improvements)
    # Reno benefits strongly from L4Span; BBR's median barely changes.
    reno = [row for row in improvements if row["cc"] == "reno"]
    assert reno and all(row["owd_reduction_pct"] > 50 for row in reno)
