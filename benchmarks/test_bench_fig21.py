"""Benchmark regenerating Fig. 21 (L4Span per-event processing time)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration, scaled_ues
from repro.experiments.fig21_processing import ProcessingConfig, run_fig21


def test_fig21_processing_time(benchmark):
    config = ProcessingConfig(num_ues=scaled_ues(4),
                              duration_s=scaled_duration(3.0))

    def run():
        return run_fig21(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_rows(benchmark, [{k: v for k, v in row.items()
                             if k not in ("cdf", "summary")} for row in rows])
    assert {row["event"] for row in rows} == {"downlink", "uplink", "feedback"}
    # Every handler type was exercised and completes in bounded time.
    for row in rows:
        assert row["count"] > 0
        assert row["median_us"] < 10_000
