"""Benchmark regenerating Fig. 9 (the main TCP sweep, scaled down)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration, scaled_ues
from repro.experiments.fig09_tcp_sweep import (SweepConfig, improvement_table,
                                               run_fig9)


def test_fig09_tcp_sweep(benchmark):
    config = SweepConfig(cc_names=("prague", "bbr2", "cubic"),
                         channels=("static", "mobile"),
                         ue_counts=(scaled_ues(4),),
                         duration_s=scaled_duration(4.0))

    def run():
        return run_fig9(config)

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [cell.as_row() for cell in cells]
    improvements = improvement_table(cells)
    attach_rows(benchmark, rows, improvements=improvements)
    # Shape check: Prague's one-way delay drops by a large factor under L4Span.
    prague = [row for row in improvements if row["cc"] == "prague"]
    assert prague and all(row["owd_reduction_pct"] > 50 for row in prague)
