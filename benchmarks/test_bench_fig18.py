"""Benchmark regenerating Fig. 18 (channel-stable-period CDFs)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration
from repro.experiments.fig18_coherence import CoherenceConfig, run_fig18


def test_fig18_channel_stability(benchmark):
    config = CoherenceConfig(duration_s=scaled_duration(30.0))

    def run():
        return run_fig18(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_rows(benchmark, [{k: v for k, v in row.items() if k != "period_cdf"}
                            for row in rows])
    # The paper's claim: >90% of stable periods exceed the estimation window.
    assert all(row["fraction_above_window"] > 0.9 for row in rows)
