"""Benchmark regenerating Fig. 10 (delay breakdown, RR vs PF)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration, scaled_ues
from repro.experiments.fig10_breakdown import BreakdownConfig, run_fig10


def test_fig10_delay_breakdown(benchmark):
    config = BreakdownConfig(schedulers=("rr", "pf"),
                             ue_counts=(scaled_ues(4),),
                             duration_s=scaled_duration(4.0))

    def run():
        return run_fig10(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_rows(benchmark, rows)
    for scheduler in ("rr", "pf"):
        with_l4span = next(r for r in rows if r["scheduler"] == scheduler
                           and r["l4span"])
        without = next(r for r in rows if r["scheduler"] == scheduler
                       and not r["l4span"])
        # Queuing dominates the plain RAN; L4Span removes most of it.
        assert with_l4span["queuing_ms"] < without["queuing_ms"]
