"""Shared configuration for the benchmark harness.

Every benchmark regenerates (a scaled-down version of) one table or figure of
the paper and attaches the resulting rows to the pytest-benchmark record via
``benchmark.extra_info`` so the numbers can be inspected in the saved JSON.
Scale factors can be raised through the ``REPRO_BENCH_SCALE`` environment
variable (1.0 = the fast defaults used in CI, larger values run longer and
with more UEs, approaching the paper's configurations).
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    """The global scale factor applied to durations and UE counts."""
    try:
        return max(0.25, float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
    except ValueError:
        return 1.0


def scaled_duration(base: float) -> float:
    """Scale a benchmark's simulated duration."""
    return base * bench_scale()


def scaled_ues(base: int) -> int:
    """Scale a benchmark's UE count."""
    return max(1, int(round(base * bench_scale())))


@pytest.fixture
def scale() -> float:
    """Expose the scale factor to benchmarks that want it directly."""
    return bench_scale()


def attach_rows(benchmark, rows, **extra) -> None:
    """Store experiment output on the benchmark record (JSON-serialisable)."""
    def _clean(value):
        if isinstance(value, float):
            return round(value, 4)
        if isinstance(value, (list, tuple)):
            return [_clean(v) for v in value][:20]
        if isinstance(value, dict):
            return {k: _clean(v) for k, v in value.items()}
        return value

    benchmark.extra_info["rows"] = _clean(rows)
    for key, value in extra.items():
        benchmark.extra_info[key] = _clean(value)
