"""Benchmark regenerating Fig. 13 (SCReAM / UDP Prague interactive video)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration, scaled_ues
from repro.experiments.fig13_interactive import InteractiveConfig, run_fig13


def test_fig13_interactive_video(benchmark):
    config = InteractiveConfig(cc_names=("scream", "udp_prague"),
                               channels=("static", "vehicular"),
                               num_ues=scaled_ues(4),
                               duration_s=scaled_duration(5.0))

    def run():
        return run_fig13(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_rows(benchmark, rows)
    assert all(row["per_ue_tput_mbps"] > 0 for row in rows)
    assert {row["cc"] for row in rows} == {"scream", "udp_prague"}
