"""Benchmark regenerating Fig. 20 (egress-rate estimation error CDFs)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration, scaled_ues
from repro.experiments.fig20_rate_error import RateErrorConfig, run_fig20


def test_fig20_rate_estimation_error(benchmark):
    config = RateErrorConfig(channels=("static", "pedestrian", "vehicular"),
                             num_ues=scaled_ues(4),
                             duration_s=scaled_duration(4.0))

    def run():
        return run_fig20(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_rows(benchmark, [{k: v for k, v in row.items() if k != "error_cdf"}
                            for row in rows])
    # Errors centre near zero across channel conditions (paper: "most of the
    # time the errors are near 0%").
    for row in rows:
        assert abs(row["error_summary"]["median"]) < 40.0
