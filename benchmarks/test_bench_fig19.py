"""Benchmark regenerating Fig. 19 (sojourn-threshold sweep)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration
from repro.experiments.fig19_threshold import ThresholdSweepConfig, run_fig19


def test_fig19_threshold_sweep(benchmark):
    config = ThresholdSweepConfig(thresholds_ms=(1.0, 5.0, 10.0, 50.0, 100.0),
                                  duration_s=scaled_duration(5.0))

    def run():
        return run_fig19(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_rows(benchmark, rows)
    by_threshold = {row["threshold_ms"]: row for row in rows}
    # RTT grows with the threshold; throughput does not keep improving past
    # the paper's 10 ms choice.
    assert by_threshold[1.0]["rtt_mean_ms"] <= by_threshold[100.0]["rtt_mean_ms"]
    assert by_threshold[100.0]["rate_sum_mbps"] <= \
        by_threshold[10.0]["rate_sum_mbps"] * 1.35
