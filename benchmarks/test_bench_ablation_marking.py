"""Benchmark for the §6.3.1 ablation: L4Span vs DualPi2-style hard thresholds."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration
from repro.experiments.ablations import AblationConfig, marking_strategy_ablation


def test_ablation_marking_strategy(benchmark):
    config = AblationConfig(duration_s=scaled_duration(6.0), channel="static")

    def run():
        return marking_strategy_ablation(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_rows(benchmark, rows)
    by_marker = {row["marker"]: row for row in rows}
    # Any in-RAN marking removes the unmanaged bloat ...
    assert by_marker["l4span"]["owd_median_ms"] < \
        by_marker["none"]["owd_median_ms"]
    # ... but the hard 1 ms threshold leaves throughput on the table compared
    # with L4Span's error-aware marking (paper: 73% lower throughput).
    assert by_marker["l4span"]["throughput_mbps"] >= \
        by_marker["ran_dualpi2"]["throughput_mbps"] * 0.9
