"""Benchmark regenerating Table 1 (CPU / memory overhead of L4Span)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration, scaled_ues
from repro.experiments.table1_overhead import (OverheadConfig, overhead_summary,
                                               run_table1)


def test_table1_overhead(benchmark):
    config = OverheadConfig(busy_ues=scaled_ues(4),
                            duration_s=scaled_duration(2.0))

    def run():
        return run_table1(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = overhead_summary(rows)
    attach_rows(benchmark, rows, summary=summary)
    busy = next(row for row in summary if row["state"] == "busy")
    # L4Span's own handlers are a small share of the total work, mirroring the
    # paper's <2% CPU overhead on srsRAN.
    assert busy["handler_share_pct"] < 50.0
