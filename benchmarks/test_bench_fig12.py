"""Benchmark regenerating Fig. 12 (L4Span vs TC-RAN)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration
from repro.experiments.fig12_tcran import (TcRanComparisonConfig, run_fig12,
                                           throughput_improvement)


def test_fig12_tcran_comparison(benchmark):
    config = TcRanComparisonConfig(cc_names=("prague", "cubic"),
                                   channels=("static",),
                                   duration_s=scaled_duration(6.0))

    def run():
        return run_fig12(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_rows(benchmark, rows,
                improvements=throughput_improvement(rows))
    # Both markers keep the one-way delay far below the unmanaged multi-second
    # bloat; the interesting comparison (recorded in extra_info) is throughput.
    assert all(row["owd_median_ms"] < 1000 for row in rows)
