"""Benchmark regenerating Fig. 15 (feedback short-circuiting on/off)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration
from repro.experiments.fig15_shortcircuit import ShortCircuitConfig, run_fig15


def test_fig15_shortcircuit(benchmark):
    config = ShortCircuitConfig(cc_names=("prague", "cubic"),
                                duration_s=scaled_duration(6.0))

    def run():
        return run_fig15(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_rows(benchmark, [{k: v for k, v in row.items() if k != "rtt_cdf"}
                            for row in rows])
    with_sc = next(r for r in rows if r["cc"] == "prague" and r["shortcircuit"])
    without_sc = next(r for r in rows
                      if r["cc"] == "prague" and not r["shortcircuit"])
    assert with_sc["shortcircuited_acks"] > 0
    # Short-circuiting must not cost throughput (paper Fig. 15b).
    assert with_sc["throughput_mbps"] > 0.5 * without_sc["throughput_mbps"]
