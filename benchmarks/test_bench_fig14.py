"""Benchmark regenerating Fig. 14 (throughput fairness panels)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration
from repro.experiments.fig14_fairness import FairnessConfig, run_fig14


def test_fig14_fairness(benchmark):
    config = FairnessConfig(duration_s=scaled_duration(8.0),
                            stagger_s=scaled_duration(1.5))

    def run():
        return run_fig14(config)

    panels = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [{"panel": p.name, "fairness_index": p.fairness_index,
             "throughputs_mbps": p.mean_throughputs_mbps} for p in panels]
    attach_rows(benchmark, rows)
    same_rtt = next(p for p in panels if "equal RTT" in p.name)
    assert same_rtt.fairness_index > 0.6
