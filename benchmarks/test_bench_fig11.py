"""Benchmark regenerating Fig. 11 (short-flow finish time vs long-flow rate)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration
from repro.experiments.fig11_short_flows import ShortFlowConfig, run_fig11


def test_fig11_short_flows(benchmark):
    config = ShortFlowConfig(cc_names=("prague", "cubic"),
                             duration_s=scaled_duration(7.0),
                             slf_start=scaled_duration(3.5))

    def run():
        return run_fig11(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_rows(benchmark, rows)
    for cc in ("prague", "cubic"):
        with_l4span = next(r for r in rows if r["cc"] == cc and r["l4span"])
        without = next(r for r in rows if r["cc"] == cc and not r["l4span"])
        assert with_l4span["slf_finish_time_ms"] is not None
        if without["slf_finish_time_ms"] is not None:
            assert (with_l4span["slf_finish_time_ms"]
                    <= without["slf_finish_time_ms"] * 1.2)
