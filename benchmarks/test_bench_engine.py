"""Engine microbenchmarks: raw event throughput and packet churn.

Unlike the figure benchmarks (which time a whole experiment), these isolate
the simulator hot path itself -- heap push/pop, callback dispatch, packet
allocation -- so a regression in the event core shows up directly as an
events/sec drop rather than being diluted by scenario logic.  Run with
``scripts/bench_smoke.sh`` to autosave results for cross-PR comparison.
"""

from __future__ import annotations

from benchmarks.conftest import attach_rows, bench_scale
from repro.net.addresses import FiveTuple
from repro.net.ecn import ECN
from repro.net.packet import make_ack_packet, make_data_packet
from repro.sim.engine import Simulator


def _event_churn(n_chains: int, horizon: float) -> tuple[int, Simulator]:
    """Self-rescheduling timer chains: pure heap + dispatch load."""
    sim = Simulator(seed=1)

    def tick(chain_id: int) -> None:
        sim.schedule(1.0, tick, chain_id)

    for chain in range(n_chains):
        sim.schedule(chain * 0.01, tick, chain)
    processed = sim.run(until=horizon)
    return processed, sim


def test_engine_event_throughput(benchmark):
    horizon = 400.0 * bench_scale()

    def run():
        return _event_churn(n_chains=50, horizon=horizon)

    processed, _sim = benchmark(run)
    events_per_sec = processed / benchmark.stats.stats.min
    attach_rows(benchmark, [{"events": processed,
                             "events_per_sec_best": events_per_sec}])
    assert processed >= 50 * horizon * 0.95


def test_engine_cancellation_churn(benchmark):
    """Half the scheduled events get cancelled: stresses the lazy scan."""
    horizon = 200.0 * bench_scale()

    def run():
        sim = Simulator(seed=2)

        def tick() -> None:
            keep = sim.schedule(1.0, tick)
            doomed = sim.schedule(1.5, tick)
            doomed.cancel()
            del keep

        for chain in range(20):
            sim.schedule(chain * 0.01, tick)
        return sim.run(until=horizon)

    processed = benchmark(run)
    attach_rows(benchmark, [{"events": processed}])
    assert processed > 0


def test_engine_packet_churn(benchmark):
    """Allocate data+ACK packet pairs and flow them through timer callbacks.

    Approximates the per-packet object pressure of a real scenario without
    the RAN/CC logic, so ``__slots__`` and constructor regressions on
    :class:`Packet` surface here.
    """
    n_packets = int(20_000 * bench_scale())
    five_tuple = FiveTuple(src_ip="10.0.0.1", src_port=443,
                           dst_ip="10.45.0.2", dst_port=50_000,
                           protocol="tcp")

    def run():
        sim = Simulator(seed=3)
        delivered = []

        def deliver(packet) -> None:
            ack = make_ack_packet(packet, ack_seq=packet.end_seq, now=sim.now)
            delivered.append(ack.ack_seq)

        for i in range(n_packets):
            packet = make_data_packet(flow_id=1, five_tuple=five_tuple,
                                      seq=i * 1400, payload=1400,
                                      ecn=ECN.ECT1, now=0.0)
            packet.stamp("core_ingress", i * 1e-6)
            sim.schedule(i * 1e-6, deliver, packet)
        sim.run()
        return len(delivered)

    count = benchmark(run)
    assert count == n_packets
    packets_per_sec = count / benchmark.stats.stats.min
    attach_rows(benchmark, [{"packets": count,
                             "packets_per_sec_best": packets_per_sec}])
