"""End-to-end scenario benchmarks with a per-subsystem time breakdown.

The engine microbenchmarks (``test_bench_engine.py``) isolate raw heap and
callback churn; these benchmarks time a *whole* 5G scenario -- CC senders,
WAN pipes, the CU/DU/RLC/MAC chain, the channel models and the L4Span layer
-- so the BENCH_*.json trajectory carries end-to-end events/sec numbers, not
just engine churn.  Each record also attaches a per-subsystem breakdown
(``subsystem_seconds``: profiler self-time grouped by ``repro`` subpackage),
which is what pointed PR 3 at the CC callback chain and the RLC bookkeeping.

Run via ``scripts/bench_smoke.sh`` (included in the default smoke target).
"""

from __future__ import annotations

import cProfile
import dataclasses
import pstats
import time

import pytest

from benchmarks.conftest import attach_rows, scaled_duration
from repro._numpy import numpy_available
from repro.api import ScenarioSpec, make_preset, run as run_scenario
from repro.experiments.sharded import run_scenario_sharded


def _prague_config(duration: float) -> ScenarioSpec:
    """The ROADMAP perf-baseline scenario: 2 Prague UEs, fading channel."""
    return ScenarioSpec(duration_s=duration, seed=7, num_ues=2,
                        cc_name="prague",
                        channel_profile="pedestrian")


def _with_engine(spec: ScenarioSpec, backend: str) -> ScenarioSpec:
    """The same scenario on the named engine backend."""
    return dataclasses.replace(
        spec, engine=dataclasses.replace(spec.engine, backend=backend))


def _best_of(runner, repeats: int = 3) -> tuple[float, object]:
    """Best wall-clock of ``repeats`` runs (the machine is noisy)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _mixed_config(duration: float) -> ScenarioSpec:
    """A classic-CC contrast point on a static channel."""
    return ScenarioSpec(duration_s=duration, seed=3, num_ues=2,
                        cc_name="cubic",
                        channel_profile="static")


def _subsystem_breakdown(config: ScenarioSpec) -> dict[str, float]:
    """Profile one run and group profiler self-time by repro subpackage."""
    profile = cProfile.Profile()
    profile.enable()
    run_scenario(config)
    profile.disable()
    totals: dict[str, float] = {}
    for (filename, _line, _name), entry in pstats.Stats(profile).stats.items():
        tottime = entry[2]
        index = filename.find("/repro/")
        if index >= 0:
            remainder = filename[index + len("/repro/"):]
            subsystem = remainder.split("/", 1)[0].removesuffix(".py")
        else:
            subsystem = "other"
        totals[subsystem] = totals.get(subsystem, 0.0) + tottime
    return dict(sorted(totals.items(), key=lambda item: -item[1]))


def _bench_scenario(benchmark, config_factory, duration: float) -> None:
    result = benchmark.pedantic(
        lambda: run_scenario(config_factory(duration)), rounds=1, iterations=1)
    events_per_sec = result.events_processed / benchmark.stats.stats.min
    # Time the same scenario on the numpy engine backend, so the BENCH
    # trajectory records both backends for every scenario benchmark.
    if numpy_available():
        numpy_elapsed, numpy_result = _best_of(
            lambda: run_scenario(
                _with_engine(config_factory(duration), "numpy")),
            repeats=1)
        numpy_eps = numpy_result.events_processed / numpy_elapsed
    else:
        numpy_eps = 0.0
    attach_rows(
        benchmark, [result.summary()],
        events=result.events_processed,
        events_per_sec_best=events_per_sec,
        events_per_sec_numpy=numpy_eps,
        numpy_speedup=(numpy_eps / events_per_sec if events_per_sec else 0.0),
        subsystem_seconds=_subsystem_breakdown(config_factory(duration)))
    assert result.events_processed > 0
    assert result.total_goodput_mbps() > 0


def test_scenario_2ue_prague_pedestrian(benchmark):
    _bench_scenario(benchmark, _prague_config, scaled_duration(10.0))


def test_scenario_2ue_cubic_static(benchmark):
    _bench_scenario(benchmark, _mixed_config, scaled_duration(6.0))


def test_scenario_8cell_sharded_vs_single_loop(benchmark):
    """Events/sec of the sharded 8-cell run vs the same spec on one loop.

    The benchmark clock times the sharded run (4 worker processes); the
    single-loop reference is timed separately and attached, so the BENCH
    JSON trajectory records the sharded-vs-single comparison and the
    measured speedup on this machine's core count.
    """
    spec = dataclasses.replace(make_preset("eight-cell"),
                               duration_s=scaled_duration(3.0))
    start = time.perf_counter()
    single = run_scenario(spec)
    single_elapsed = time.perf_counter() - start
    single_eps = single.events_processed / single_elapsed

    sharded = benchmark.pedantic(
        lambda: run_scenario_sharded(spec, shards=4), rounds=1, iterations=1)
    sharded_eps = sharded.events_processed / benchmark.stats.stats.min
    attach_rows(
        benchmark, [sharded.summary()],
        events=sharded.events_processed,
        events_per_sec_best=sharded_eps,
        single_loop_events_per_sec=single_eps,
        single_loop_events=single.events_processed,
        sharded_speedup=(sharded_eps / single_eps if single_eps else 0.0),
        shards=4)
    # Static channel: the shard split must not change what was simulated.
    assert sharded.total_goodput_mbps() == single.total_goodput_mbps()
    assert len(sharded.flows) == len(single.flows) == 8


def test_scenario_handover_adaptive_vs_fixed_windows(benchmark):
    """Events/sec of the mobility-coupled sharded run, adaptive vs fixed.

    The handover preset is the first scenario whose shard split genuinely
    requires the windowed barrier protocol (the moving UE's serving cell
    and its content server land on different shards), so this benchmark
    records what the barrier costs and what the adaptive window clock buys
    back: fixed mode pays one pipe round-trip per lookahead window for the
    whole run (~316 for 6 s at 19 ms), adaptive mode only inside the
    schedule-proven coupling intervals.
    """
    duration = scaled_duration(4.0)
    spec = dataclasses.replace(make_preset("handover"), duration_s=duration)
    # Scale the handover times with the duration (the preset pins them at
    # t=2/t=4 for its own 6 s run): the UE leaves home at 1/4 of the run
    # and returns at 3/4, so the coupled phase exists at any bench scale.
    spec = dataclasses.replace(spec, mobility=dataclasses.replace(
        spec.mobility,
        handovers=[dataclasses.replace(spec.mobility.handovers[0],
                                       time=duration * 0.25),
                   dataclasses.replace(spec.mobility.handovers[1],
                                       time=duration * 0.75)]))
    start = time.perf_counter()
    fixed = run_scenario_sharded(spec, shards=2, adaptive=False)
    fixed_elapsed = time.perf_counter() - start
    fixed_eps = fixed.events_processed / fixed_elapsed

    adaptive = benchmark.pedantic(
        lambda: run_scenario_sharded(spec, shards=2, adaptive=True),
        rounds=1, iterations=1)
    adaptive_eps = adaptive.events_processed / benchmark.stats.stats.min
    attach_rows(
        benchmark, [adaptive.summary()],
        events=adaptive.events_processed,
        events_per_sec_best=adaptive_eps,
        fixed_windows_events_per_sec=fixed_eps,
        adaptive_windows=adaptive.sharding_stats["windows"],
        fixed_windows=fixed.sharding_stats["windows"],
        boundary_exchanges=adaptive.sharding_stats["routed_packets"],
        shards=2)
    # Static channel: the window policy must not change what was simulated.
    assert adaptive.total_goodput_mbps() == fixed.total_goodput_mbps()
    assert adaptive.sharding_stats["windows"] < \
        fixed.sharding_stats["windows"]
    assert adaptive.sharding_stats["routed_packets"] > 0
    assert len(adaptive.handovers) == 2


def test_scenario_coupled_core_barrier_roundtrips(benchmark):
    """Events/sec and barrier round-trips of the coupled-core preset.

    Every flow funnels through the shared wired middlebox and an SNR
    handover commits two-phase, so the barrier runs at its densest: the
    middlebox queue floor caps every window and commit points pin the
    cadence.  ``sync_windows`` (one pipe round-trip each) is the
    synchronization-overhead trend `scripts/bench_compare.py` tracks —
    a protocol change that doubles the window count shows up in the
    BENCH JSON trajectory even if wall-clock noise hides it.
    """
    spec = dataclasses.replace(make_preset("coupled-core"),
                               duration_s=scaled_duration(2.0))
    start = time.perf_counter()
    single = run_scenario(
        dataclasses.replace(spec, sharding=dataclasses.replace(
            spec.sharding, mode="off")))
    single_elapsed = time.perf_counter() - start
    single_eps = single.events_processed / single_elapsed

    sharded = benchmark.pedantic(
        lambda: run_scenario_sharded(spec, shards=2), rounds=1, iterations=1)
    sharded_eps = sharded.events_processed / benchmark.stats.stats.min
    attach_rows(
        benchmark, [sharded.summary()],
        events=sharded.events_processed,
        events_per_sec_best=sharded_eps,
        single_loop_events_per_sec=single_eps,
        sync_windows=sharded.sharding_stats["windows"],
        boundary_exchanges=sharded.sharding_stats["routed_packets"],
        shards=2)
    # Static channel: the coupled split must not change what was simulated.
    assert sharded.total_goodput_mbps() == single.total_goodput_mbps()
    assert sharded.handovers == single.handovers and sharded.handovers
    assert sharded.sharding_stats["windows"] > 0
    assert sharded.sharding_stats["routed_packets"] > 0


def test_scenario_dense_cell_population(benchmark):
    """Throughput-of-simulation of the population kernel vs full simulation.

    The metric is *simulated-UE-seconds per wall-second*: the fully
    simulated reference (8 packet-exact UEs on a static channel) measures
    the per-UE cost of the exact path, the dense-cell preset carries 1002
    UEs (2 exact + 1000 aggregated) through the vectorized background
    kernel.  The acceptance floor for the kernel is a 100x
    throughput-of-simulation gain over simulating every UE exactly.
    """
    reference = ScenarioSpec(duration_s=scaled_duration(1.0), seed=7,
                               num_ues=8, cc_name="cubic",
                               channel_profile="static")
    start = time.perf_counter()
    full = run_scenario(reference)
    full_elapsed = time.perf_counter() - start
    full_ue_s = full.simulated_ue_seconds() / full_elapsed

    spec = dataclasses.replace(make_preset("dense-cell"),
                               duration_s=scaled_duration(6.0))
    dense = benchmark.pedantic(
        lambda: run_scenario(spec), rounds=1, iterations=1)
    elapsed = benchmark.stats.stats.min
    dense_ue_s = dense.simulated_ue_seconds() / elapsed
    if numpy_available():
        numpy_elapsed, numpy_dense = _best_of(
            lambda: run_scenario(_with_engine(spec, "numpy")), repeats=1)
        numpy_eps = numpy_dense.events_processed / numpy_elapsed
    else:
        numpy_eps = 0.0
    dense_eps = dense.events_processed / elapsed
    attach_rows(
        benchmark, [dense.summary()],
        events=dense.events_processed,
        events_per_sec_best=dense_eps,
        events_per_sec_numpy=numpy_eps,
        numpy_speedup=(numpy_eps / dense_eps if dense_eps else 0.0),
        ue_seconds_per_sec_best=dense_ue_s,
        full_sim_ue_seconds_per_sec=full_ue_s,
        population_speedup=(dense_ue_s / full_ue_s if full_ue_s else 0.0))
    assert dense.background["n_background"] == 1000
    assert dense.total_goodput_mbps() > 0
    assert dense.background_throughput_mbps() > 0
    assert dense_ue_s >= 100 * full_ue_s


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_scenario_dense_cell_engine_backends(benchmark):
    """The numpy engine backend vs the python reference, same scenario.

    The scenario is the dense-cell preset with a coarser population kernel
    cadence (40 ms), which makes the run slot-bound: long runs of slots
    grant no foreground PRBs and the numpy backend's timer-wheel batching
    collapses them, while the python reference walks every tick through
    the heap.  Both backends are timed best-of-N back-to-back in this
    process and the static-channel results are asserted identical -- the
    speedup is a like-for-like measurement, not a model change.

    The ``numpy_speedup >= 1.3`` floor is this PR's acceptance hard line
    (measured ~1.5-1.6x on the dev container; the margin absorbs machine
    noise).  The prague benchmark's recorded ``numpy_speedup`` stays near
    1.0x by design: its cost is per-packet CC/L4Span python work that the
    engine backend deliberately leaves untouched.
    """
    dense = make_preset("dense-cell")
    spec = dataclasses.replace(
        dense, duration_s=scaled_duration(6.0),
        population=dataclasses.replace(dense.population,
                                       update_interval_s=0.04))
    python_elapsed, python_result = _best_of(
        lambda: run_scenario(_with_engine(spec, "python")), repeats=4)

    numpy_result = benchmark.pedantic(
        lambda: run_scenario(_with_engine(spec, "numpy")),
        rounds=4, iterations=1)
    numpy_elapsed = benchmark.stats.stats.min
    python_eps = python_result.events_processed / python_elapsed
    numpy_eps = numpy_result.events_processed / numpy_elapsed
    speedup = python_elapsed / numpy_elapsed
    attach_rows(
        benchmark, [numpy_result.summary()],
        events=numpy_result.events_processed,
        events_per_sec_best=numpy_eps,
        events_per_sec_numpy=numpy_eps,
        python_events_per_sec=python_eps,
        numpy_speedup=speedup)
    # Static channel: the backend must not change what was simulated.
    assert numpy_result.events_processed == python_result.events_processed
    assert numpy_result.total_goodput_mbps() == \
        python_result.total_goodput_mbps()
    assert speedup >= 1.3


def test_scenario_events_deterministic():
    """The same spec processes the identical event count on repeat runs."""
    first = run_scenario(_prague_config(2.0))
    second = run_scenario(_prague_config(2.0))
    assert first.events_processed == second.events_processed
    assert first.summary() == second.summary()
