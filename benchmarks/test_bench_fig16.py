"""Benchmark regenerating Fig. 16 (L4S/classic flows sharing one DRB)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration
from repro.experiments.fig16_shared_drb import (SHARED_DRB_STRATEGIES,
                                                SharedDrbConfig, run_fig16)


def test_fig16_shared_drb(benchmark):
    config = SharedDrbConfig(duration_s=scaled_duration(6.0))

    def run():
        return run_fig16(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_rows(benchmark, rows)
    assert {row["strategy"] for row in rows} == set(SHARED_DRB_STRATEGIES)
    coupled = next(r for r in rows if r["strategy"] == "l4span")
    # The coupled strategy must keep both flows alive on the shared bearer.
    assert coupled["l4s_tput_mbps"] > 0
    assert coupled["classic_tput_mbps"] > 0
