"""Benchmark regenerating Fig. 17 (RLC queue-length CDFs under L4Span)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration, scaled_ues
from repro.experiments.fig17_queue_cdf import QueueCdfConfig, run_fig17


def test_fig17_queue_cdf(benchmark):
    config = QueueCdfConfig(cc_names=("prague", "cubic"),
                            channels=("static", "mobile"),
                            num_ues=scaled_ues(4),
                            duration_s=scaled_duration(4.0))

    def run():
        return run_fig17(config)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    attach_rows(benchmark, [{k: v for k, v in row.items() if k != "queue_cdf"}
                            for row in rows])
    prague_static = next(r for r in rows if r["cc"] == "prague"
                         and r["channel"] == "static")
    # L4S queues stay small under L4Span (paper: low occupancy, ultra-low delay).
    assert prague_static["queue_summary"]["p90"] < 200
