"""Benchmark regenerating Fig. 2 (motivation: wired vs 5G vs 5G+L4Span)."""

from __future__ import annotations

from benchmarks.conftest import attach_rows, scaled_duration
from repro.experiments.fig02_motivation import Fig2Config, run_fig2


def test_fig02_motivation(benchmark):
    config = Fig2Config(duration_s=scaled_duration(5.0))

    def run():
        return run_fig2(config)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = result.rows()
    attach_rows(benchmark, rows)
    prague_plain = next(r for r in rows if r["panel"] == "5g"
                        and r["cc"] == "prague")
    prague_span = next(r for r in rows if r["panel"] == "5g+l4span"
                       and r["cc"] == "prague")
    # The paper's Fig. 2 contrast: L4Span removes the RAN queueing delay.
    assert prague_span["rtt_ms"] < prague_plain["rtt_ms"]
