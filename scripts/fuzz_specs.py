#!/usr/bin/env python3
"""Bounded fuzz campaign over coupled scenario specs.

Replays :func:`repro.experiments.fuzz.random_spec` over ``--count``
sequential seeds starting at ``--seed`` and checks every invariant the
shard barrier promises (byte/packet conservation, sharded ≡ single loop on
static channels, determinism across repeats, no ``ConservativeSyncError``).
Exit status 1 if any spec violates an invariant; the failing seed is
printed so ``random_spec(random.Random(seed))`` reproduces it exactly.

Usage:
    PYTHONPATH=src python scripts/fuzz_specs.py --count 50 --seed 0
    PYTHONPATH=src python scripts/fuzz_specs.py --count 5 --shards 2 4

The CI ``fuzz-smoke`` job runs the 50-spec fixed-seed campaign — minutes,
not hours, because each drawn spec simulates well under a second.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.fuzz import check_spec, random_spec  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=50,
                        help="number of specs to draw (default 50)")
    parser.add_argument("--seed", type=int, default=0,
                        help="first seed of the sequential range (default 0)")
    parser.add_argument("--shards", type=int, nargs="+", default=[2],
                        help="shard counts each spec is run at (default: 2)")
    parser.add_argument("--duration", type=float, default=0.4,
                        help="simulated seconds per spec (default 0.4)")
    args = parser.parse_args(argv)

    started = time.time()
    failures = 0
    for seed in range(args.seed, args.seed + args.count):
        spec = random_spec(random.Random(seed), duration_s=args.duration)
        violations = check_spec(spec, shard_counts=args.shards)
        if violations:
            failures += 1
            print(f"FAIL seed={seed} ({spec.name}):")
            for reason in violations:
                print(f"  - {reason}")
        else:
            print(f"ok   seed={seed} ({spec.name})")
    elapsed = time.time() - started
    print(f"{args.count} specs, {failures} failing, {elapsed:.1f}s")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
