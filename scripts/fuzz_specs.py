#!/usr/bin/env python3
"""Bounded differential-fuzz campaign over random scenario specs.

Replays :func:`repro.experiments.fuzz.random_spec` over ``--count``
sequential seeds starting at ``--seed`` and checks every invariant suite
(byte/packet conservation, sharded ≡ single loop on static channels,
determinism across repeats and backends, result-document validity, no
``ConservativeSyncError``).  Exit status 1 if any spec violates an
invariant; the failing seed is printed so
``random_spec(random.Random(seed))`` reproduces it exactly.

Two modes:

* the default smoke loop checks seeds sequentially and prints one line
  per seed — the CI ``fuzz-smoke`` job runs the 50-spec fixed-seed form;
* ``--campaign`` fans seeds across worker processes under the
  ``REPRO_CORE_BUDGET`` arbiter, honours a wall-clock budget, and can
  write a JSON campaign report — the nightly job's form.

``--minimize`` shrinks every failing spec with the delta-debugging
minimizer and appends the result to ``--corpus-dir`` (default
``tests/corpus/``), where tier-1 replays it forever after.

Usage:
    PYTHONPATH=src python scripts/fuzz_specs.py --count 50 --seed 0
    PYTHONPATH=src python scripts/fuzz_specs.py --campaign --count 200
    PYTHONPATH=src python scripts/fuzz_specs.py --campaign --count 5000 \\
        --time-budget 3600 --report campaign.json --minimize
"""

from __future__ import annotations

import argparse
import json
import random
import re
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.fuzz import (check_spec, random_spec,  # noqa: E402
                                    run_campaign)

DEFAULT_CORPUS = Path(__file__).resolve().parent.parent / "tests" / "corpus"


def _write_corpus_entry(corpus_dir: Path, seed: int, shard_counts,
                        violations: list[str]) -> Path | None:
    """Minimize the failing seed's spec and persist it as a corpus entry."""
    from repro.experiments.minimize import failure_signature, minimize_spec
    spec = random_spec(random.Random(seed))
    try:
        small = minimize_spec(
            spec, lambda s: check_spec(s, shard_counts=shard_counts))
    except ValueError:
        return None  # not reproducible at corpus shard counts
    corpus_dir.mkdir(parents=True, exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "-", small.name.lower()).strip("-")
    path = corpus_dir / f"seed{seed}-{slug}.json"
    entry = {
        "schema": 1,
        "name": f"{small.name}-seed{seed}",
        "origin": f"fuzz_specs.py seed {seed}; signature "
                  f"{sorted(failure_signature(violations))}",
        "shard_counts": list(shard_counts),
        "spec": small.to_dict(),
    }
    path.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    return path


def _run_smoke(args) -> int:
    started = time.time()
    failures: list[tuple[int, list[str]]] = []
    for seed in range(args.seed, args.seed + args.count):
        spec = random_spec(random.Random(seed), duration_s=args.duration)
        violations = check_spec(spec, shard_counts=args.shards)
        if violations:
            failures.append((seed, violations))
            print(f"FAIL seed={seed} ({spec.name}):")
            for reason in violations:
                print(f"  - {reason}")
        else:
            print(f"ok   seed={seed} ({spec.name})")
    elapsed = time.time() - started
    print(f"{args.count} specs, {len(failures)} failing, {elapsed:.1f}s")
    _minimize_failures(args, failures)
    return 1 if failures else 0


def _run_campaign(args) -> int:
    def progress(record: dict) -> None:
        status = "FAIL" if record["violations"] else "ok  "
        print(f"{status} seed={record['seed']} ({record['name']}, "
              f"{record['elapsed_s']:.1f}s)")
        for reason in record["violations"]:
            print(f"  - {reason}")

    report = run_campaign(
        count=args.count, seed=args.seed, duration_s=args.duration,
        shard_counts=args.shards, workers=args.workers,
        time_budget_s=args.time_budget, progress=progress)
    print(f"{report['seeds_checked']}/{args.count} seeds checked, "
          f"{len(report['failures'])} failing, {report['elapsed_s']:.1f}s, "
          f"{report['workers']} worker(s)"
          + (" [stopped early: time budget]" if report["stopped_early"]
             else ""))
    if args.report:
        report_path = Path(args.report)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(json.dumps(report, indent=2, sort_keys=True)
                               + "\n")
        print(f"report written to {report_path}")
    _minimize_failures(args, [(f["seed"], f["violations"])
                              for f in report["failures"]])
    return 1 if report["failures"] else 0


def _minimize_failures(args, failures: list[tuple[int, list[str]]]) -> None:
    if not args.minimize or not failures:
        return
    corpus_dir = Path(args.corpus_dir)
    for seed, violations in failures:
        path = _write_corpus_entry(corpus_dir, seed, args.shards, violations)
        if path is not None:
            print(f"minimized seed {seed} -> {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--count", type=int, default=50,
                        help="number of specs to draw (default 50)")
    parser.add_argument("--seed", type=int, default=0,
                        help="first seed of the sequential range (default 0)")
    parser.add_argument("--shards", type=int, nargs="+", default=[2],
                        help="shard counts each spec is run at (default: 2)")
    parser.add_argument("--duration", type=float, default=0.4,
                        help="simulated seconds per spec (default 0.4)")
    parser.add_argument("--campaign", action="store_true",
                        help="parallel campaign mode: worker processes under "
                             "the REPRO_CORE_BUDGET arbiter + JSON report")
    parser.add_argument("--workers", type=int, default=None,
                        help="campaign worker processes (default: the core "
                             "budget)")
    parser.add_argument("--time-budget", type=float, default=None,
                        help="stop dispatching new seeds after this many "
                             "wall-clock seconds")
    parser.add_argument("--report", type=str, default=None,
                        help="write the JSON campaign report here "
                             "(--campaign only)")
    parser.add_argument("--minimize", action="store_true",
                        help="shrink every failing spec and append it to the "
                             "corpus directory")
    parser.add_argument("--corpus-dir", type=str, default=str(DEFAULT_CORPUS),
                        help="corpus directory --minimize appends to "
                             "(default: tests/corpus/)")
    args = parser.parse_args(argv)
    if args.campaign:
        return _run_campaign(args)
    return _run_smoke(args)


if __name__ == "__main__":
    sys.exit(main())
