#!/usr/bin/env python3
"""End-to-end smoke test of ``repro serve`` over a real socket.

Boots the service as a subprocess, submits a preset over HTTP, follows
the run to completion, and asserts the service's archived document is
byte-identical to what ``repro scenario --preset ... --json`` prints for
the same spec and seed — the contract docs/service.md promises.  Also
exercises the SSE stream, the archive query route and malformed-request
handling.  Stdlib only; exits non-zero with a diagnostic on any failure.

Usage: PYTHONPATH=src python scripts/service_smoke.py [--preset NAME]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ANNOUNCE = re.compile(r"listening on (http://[^ ]+) \(archive: (.+)\)")


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.11 typing
    print(f"service smoke FAILED: {message}", file=sys.stderr)
    raise SystemExit(1)


def get(url: str, expect: int = 200) -> bytes:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.read()
    except urllib.error.HTTPError as exc:
        if exc.code == expect:
            return exc.read()
        fail(f"GET {url} -> {exc.code}, expected {expect}")


def post_json(url: str, payload, expect: int = 202) -> dict:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            raw, code = response.read(), response.status
    except urllib.error.HTTPError as exc:
        raw, code = exc.read(), exc.code
    if code != expect:
        fail(f"POST {url} -> {code}, expected {expect}: {raw[:300]!r}")
    return json.loads(raw)


def wait_for_announce(process: subprocess.Popen) -> tuple[str, str]:
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            if process.poll() is not None:
                fail(f"serve exited early with {process.returncode}")
            time.sleep(0.05)
            continue
        match = ANNOUNCE.search(line)
        if match:
            return match.group(1), match.group(2)
    fail("serve never announced its address")


def wait_done(base: str, run_id: str) -> dict:
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        envelope = json.loads(get(f"{base}/runs/{run_id}"))
        if envelope["status"] == "done":
            return envelope
        if envelope["status"] == "failed":
            fail(f"run failed: {envelope.get('error')}")
        time.sleep(0.2)
    fail(f"run {run_id} did not finish in time")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", default="coupled-core")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        runs_dir = str(Path(tmp) / "runs")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--runs-dir", runs_dir],
            cwd=REPO, env={**os.environ, "PYTHONPATH": "src"},
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            base, announced_dir = wait_for_announce(process)
            print(f"service up at {base} (archive: {announced_dir})")

            health = json.loads(get(f"{base}/health"))
            if health["status"] != "ok":
                fail(f"health reported {health}")

            # Malformed requests must 400, not crash the service.
            post_json(f"{base}/runs", {"preset": "no-such-preset"},
                      expect=400)
            post_json(f"{base}/runs", {"preset": args.preset,
                                       "overrides": {"bogus": 1}},
                      expect=400)

            accepted = post_json(f"{base}/runs", {"preset": args.preset})
            run_id = accepted["run_id"]
            print(f"submitted {args.preset} as {run_id}")
            wait_done(base, run_id)

            served = get(f"{base}/runs/{run_id}/document").decode("utf-8")
            archived = (Path(runs_dir) / f"{run_id}.json").read_text(
                encoding="utf-8")
            if served != archived:
                fail("served document differs from the archived file")

            # The SSE stream must replay snapshots and end cleanly.
            stream = get(f"{base}/runs/{run_id}/events").decode("utf-8")
            if "event: end" not in stream:
                fail("SSE stream did not terminate with an end event")

            listed = json.loads(get(f"{base}/runs?preset={args.preset}"))
            if not any(entry["run_id"] == run_id
                       for entry in listed["runs"]):
                fail("archive query did not list the finished run")
        finally:
            process.terminate()
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()

        cli = subprocess.run(
            [sys.executable, "-m", "repro", "scenario",
             "--preset", args.preset, "--json"],
            cwd=REPO, env={**os.environ, "PYTHONPATH": "src"},
            capture_output=True, text=True)
        if cli.returncode != 0:
            fail(f"CLI run failed: {cli.stderr[-500:]}")
        if cli.stdout != archived:
            fail("CLI --json output is not byte-identical to the "
                 "service-archived document")

        document = json.loads(archived)
        print(f"OK: service, archive and CLI agree byte-for-byte "
              f"(schema_version={document['schema_version']}, "
              f"{len(archived)} bytes, "
              f"{document['events_processed']} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
