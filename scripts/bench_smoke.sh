#!/usr/bin/env bash
# Run the benchmark suite with pytest-benchmark autosave so successive PRs
# accumulate a comparable JSON trajectory under .benchmarks/.
#
# Usage:
#   scripts/bench_smoke.sh                 # engine + end-to-end scenario (fast)
#   scripts/bench_smoke.sh --full          # every figure/table benchmark
#   REPRO_BENCH_SCALE=2 scripts/bench_smoke.sh --full   # longer runs
#
# Compare against previous runs with:
#   PYTHONPATH=src python -m pytest_benchmark list
#   PYTHONPATH=src python -m pytest_benchmark compare

set -euo pipefail
cd "$(dirname "$0")/.."

TARGET=(benchmarks/test_bench_engine.py benchmarks/test_bench_scenario.py)
if [[ "${1:-}" == "--full" ]]; then
    TARGET=(benchmarks)
    shift
fi

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
exec python -m pytest "${TARGET[@]}" -q \
    --benchmark-autosave \
    --benchmark-storage=.benchmarks \
    --benchmark-columns=min,mean,stddev,rounds \
    "$@"
