#!/usr/bin/env python3
"""Gate benchmark throughput against the committed baseline.

``scripts/bench_smoke.sh`` autosaves pytest-benchmark JSON under
``.benchmarks/``; this script diffs the tracked throughput metrics of the
most recent run against ``benchmarks/baseline.json`` and exits non-zero when
any metric dropped more than the threshold (default 15%) — the CI
``bench-smoke`` job runs it so a silent events/sec regression fails the PR.

Tracked metrics are the ``*_per_sec`` numbers each benchmark attaches to its
record (``extra_info.events_per_sec_best``, or the same key inside
``extra_info.rows``); benchmarks without one fall back to pytest-benchmark's
ops/sec (``1 / stats.min``).

Usage:
    python scripts/bench_compare.py                 # gate against baseline
    python scripts/bench_compare.py --update        # refresh the baseline
    python scripts/bench_compare.py --warn-only     # report, never fail

The ``REPRO_BENCH_WARN_ONLY`` environment variable (any non-empty value) is
the escape hatch for noisy runners: same report, exit 0.  No repro imports —
the script runs on a bare CPython with nothing installed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_STORAGE = REPO_ROOT / ".benchmarks"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"
WARN_ONLY_ENV = "REPRO_BENCH_WARN_ONLY"

#: Version stamped into baselines written by ``--update``; bump when the
#: baseline layout changes so older checkouts reject newer files loudly
#: instead of mis-reading them.
BASELINE_SCHEMA_VERSION = 1

#: Baseline schema versions this script knows how to read.
SUPPORTED_BASELINE_VERSIONS = (1,)

#: extra_info keys treated as throughput metrics (higher is better).
RATE_KEYS = ("events_per_sec_best", "packets_per_sec_best",
             "ue_seconds_per_sec_best", "events_per_sec_numpy")

#: extra_info keys recorded in the baseline for trend inspection but never
#: gated: cross-backend speedup ratios divide two noisy timings, so their
#: run-to-run spread is far wider than the rates themselves (the benchmarks
#: assert their own hard floors where the ISSUE demands one).
INFO_KEYS = ("numpy_speedup", "sync_windows")


def latest_run(storage: Path) -> Path:
    """The most recently written autosaved run JSON under ``storage``."""
    runs = sorted(storage.glob("*/*.json"), key=lambda p: p.stat().st_mtime)
    if not runs:
        raise FileNotFoundError(
            f"no benchmark JSON under {storage}; run scripts/bench_smoke.sh "
            "first")
    return runs[-1]


def extract_metrics(run_file: Path) -> dict[str, float]:
    """``{metric name: throughput}`` for every benchmark in a run file."""
    data = json.loads(run_file.read_text())
    metrics: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name", "?")
        extra = bench.get("extra_info") or {}
        rows = extra.get("rows") or []
        sources = [extra] + [row for row in rows if isinstance(row, dict)]
        tracked = False
        for source in sources:
            for key in RATE_KEYS + INFO_KEYS:
                if isinstance(source.get(key), (int, float)):
                    metrics[f"{name}:{key}"] = float(source[key])
                    tracked = key in RATE_KEYS or tracked
        if not tracked:
            stats = bench.get("stats") or {}
            minimum = stats.get("min")
            if minimum:
                metrics[f"{name}:ops_per_sec"] = 1.0 / float(minimum)
    return metrics


def compare(current: dict[str, float], baseline: dict[str, float],
            threshold: float) -> tuple[list[str], list[str]]:
    """Return ``(regressions, notes)`` comparing current against baseline.

    A baseline metric absent from the current run counts as a regression:
    a renamed or deleted benchmark must force a deliberate ``--update``,
    not silently shrink the gate's coverage.
    """
    regressions, notes = [], []
    for name, base in sorted(baseline.items()):
        value = current.get(name)
        if value is None:
            regressions.append(
                f"GONE {name}: tracked metric missing from this run "
                "(benchmark renamed/removed? refresh with --update)")
            continue
        if name.rsplit(":", 1)[-1] in INFO_KEYS:
            print(f"INF {name}: {value:.2f} vs baseline {base:.2f} "
                  "(informational, not gated)")
            continue
        drop = (base - value) / base if base > 0 else 0.0
        marker = "OK " if drop <= threshold else "REG"
        line = (f"{marker} {name}: {value:,.0f} vs baseline {base:,.0f} "
                f"({-drop:+.1%})")
        print(line)
        if drop > threshold:
            regressions.append(line)
    for name in sorted(set(current) - set(baseline)):
        notes.append(f"not in baseline (run --update to track): {name}")
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff benchmark throughput against the committed "
                    "baseline and fail on regressions.")
    parser.add_argument("--storage", type=Path, default=DEFAULT_STORAGE,
                        help="pytest-benchmark autosave directory")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="maximum tolerated fractional drop (default .15)")
    parser.add_argument("--run", type=Path, default=None,
                        help="specific run JSON (default: newest autosave)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current run")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but always exit 0 "
                             f"(also via ${WARN_ONLY_ENV})")
    args = parser.parse_args(argv)

    run_file = args.run if args.run is not None else latest_run(args.storage)
    current = extract_metrics(run_file)
    print(f"benchmark run: {run_file}")
    if not current:
        print("no tracked metrics found in the run file", file=sys.stderr)
        return 2

    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(
            {"schema_version": BASELINE_SCHEMA_VERSION,
             "threshold": args.threshold,
             "source_run": run_file.name,
             "metrics": {k: round(v, 2) for k, v in sorted(current.items())}},
            indent=2) + "\n")
        print(f"baseline refreshed: {args.baseline} "
              f"({len(current)} metrics)")
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update to create "
              "one", file=sys.stderr)
        return 2
    try:
        baseline_doc = json.loads(args.baseline.read_text())
    except json.JSONDecodeError as error:
        print(f"baseline {args.baseline} is not valid JSON ({error}); "
              "refresh it with --update", file=sys.stderr)
        return 2
    version = baseline_doc.get("schema_version")
    if version is None:
        print(f"baseline {args.baseline} has no 'schema_version' field; it "
              "predates the versioned baseline layout — refresh it with "
              "'python scripts/bench_compare.py --update'", file=sys.stderr)
        return 2
    if version not in SUPPORTED_BASELINE_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_BASELINE_VERSIONS)
        print(f"baseline {args.baseline} has schema_version {version!r}, but "
              f"this checkout only understands: {supported}. Update the "
              "checkout to read newer baselines, or regenerate the baseline "
              "here with --update", file=sys.stderr)
        return 2
    baseline = baseline_doc.get("metrics")
    if not isinstance(baseline, dict) or not baseline:
        print(f"baseline {args.baseline} has no 'metrics' mapping (old or "
              "hand-edited schema?); refresh it with --update",
              file=sys.stderr)
        return 2
    bad = [k for k, v in baseline.items()
           if not isinstance(v, (int, float))]
    if bad:
        print(f"baseline {args.baseline} has non-numeric metrics "
              f"({', '.join(sorted(bad)[:5])}); refresh it with --update",
              file=sys.stderr)
        return 2
    regressions, notes = compare(current, baseline, args.threshold)
    for note in notes:
        print(f"note: {note}")
    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed more than "
              f"{args.threshold:.0%} (or went missing):", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        if args.warn_only or os.environ.get(WARN_ONLY_ENV):
            print("warn-only mode: not failing the build", file=sys.stderr)
            return 0
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
